"""Micro-benchmark: vectorised LabelPick accuracy pruning.

Verifies that the masked-numpy reduction in
:meth:`repro.core.labelpick.LabelPick._accuracy_prune` produces exactly the
survivors/pruned partition of the original per-column Python loop, and times
the vectorised implementation on a paper-scale validation matrix.
"""

from __future__ import annotations

import numpy as np

from repro.core.labelpick import LabelPick
from repro.labeling.lf import ABSTAIN


def _reference_accuracy_prune(valid_label_matrix, valid_labels, threshold):
    """The original per-column loop, kept verbatim as the reference."""
    valid_labels = np.asarray(valid_labels, dtype=int)
    survivors, pruned = [], []
    for j in range(valid_label_matrix.shape[1]):
        outputs = valid_label_matrix[:, j]
        fired = outputs != ABSTAIN
        if not np.any(fired):
            survivors.append(j)
            continue
        accuracy = float(np.mean(outputs[fired] == valid_labels[fired]))
        if accuracy <= threshold:
            pruned.append(j)
        else:
            survivors.append(j)
    return survivors, pruned


def _synthetic_matrix(n_valid: int, n_lfs: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, n_valid)
    matrix = np.full((n_valid, n_lfs), ABSTAIN, dtype=int)
    for j in range(n_lfs):
        if j % 17 == 0:
            continue  # a few never-firing LFs exercise the keep-silent rule
        fire = rng.random(n_valid) < rng.uniform(0.05, 0.8)
        correct = rng.random(n_valid) < rng.uniform(0.3, 0.95)
        matrix[fire & correct, j] = labels[fire & correct]
        matrix[fire & ~correct, j] = 1 - labels[fire & ~correct]
    return matrix, labels


def test_accuracy_prune_vectorized_matches_loop(benchmark):
    """Vectorised pruning is equivalent to the loop and fast at paper scale."""
    labelpick = LabelPick()
    matrix, labels = _synthetic_matrix(n_valid=2500, n_lfs=300)
    threshold = 0.5

    survivors, pruned = benchmark.pedantic(
        labelpick._accuracy_prune, args=(matrix, labels, threshold),
        rounds=5, iterations=3, warmup_rounds=1,
    )
    ref_survivors, ref_pruned = _reference_accuracy_prune(matrix, labels, threshold)

    assert survivors == ref_survivors
    assert pruned == ref_pruned
    assert sorted(survivors + pruned) == list(range(matrix.shape[1]))


def test_accuracy_prune_matches_loop_across_thresholds():
    """Boundary thresholds (<=) and never-firing columns agree with the loop."""
    labelpick = LabelPick()
    for seed in range(3):
        matrix, labels = _synthetic_matrix(n_valid=180, n_lfs=40, seed=seed)
        for threshold in (0.0, 0.25, 0.5, 2 / 3, 1.0):
            assert labelpick._accuracy_prune(matrix, labels, threshold) == (
                _reference_accuracy_prune(matrix, labels, threshold)
            )
