"""Benchmark EXP-T2: regenerate Table 2 (datasets used in the evaluation).

Prints, for every benchmark dataset, the task, the paper's split sizes and
the sizes of the synthetic stand-in generated at the benchmark scale.
"""

from __future__ import annotations

from repro.experiments import table2_dataset_statistics


def test_table2_dataset_statistics(benchmark, bench_protocol, bench_datasets):
    """Generate all benchmark datasets and print the Table 2 statistics."""

    def run():
        return table2_dataset_statistics(
            scale=bench_protocol.dataset_scale, random_state=0, names=bench_datasets
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    header = (f"{'Name':10s} {'Task':26s} {'#Train':>7s} {'#Valid':>7s} {'#Test':>7s}"
              f" {'paper #Train':>13s} {'paper #Valid':>13s} {'paper #Test':>12s}")
    print("\n\nTable 2: Datasets used in Evaluation (synthetic stand-ins)")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['name']:10s} {row['task']:26s} {row['n_train']:7d} "
              f"{row['n_valid']:7d} {row['n_test']:7d} {row['paper_train']:13d} "
              f"{row['paper_valid']:13d} {row['paper_test']:12d}")

    assert len(rows) == len(bench_datasets)
    for row in rows:
        assert row["n_train"] > 0 and row["n_valid"] > 0 and row["n_test"] > 0
        # 80/10/10 split shape.
        total = row["n_train"] + row["n_valid"] + row["n_test"]
        assert row["n_train"] / total > 0.7
