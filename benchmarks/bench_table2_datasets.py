"""Benchmark EXP-T2: regenerate Table 2 (datasets used in the evaluation).

Prints, for every benchmark dataset, the task, the paper's split sizes and
the sizes of the synthetic stand-in generated at the benchmark scale, and
smoke-tests the experiment engine on the cheapest configured dataset: the
parallel (``--workers N``) run must produce the exact ``average_accuracy``
of the serial code path, and a warm-cache rerun must execute zero trials.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import table2_dataset_statistics
from repro.experiments.protocol import run_framework_on_dataset
from repro.runner import last_report


def test_table2_dataset_statistics(benchmark, bench_protocol, bench_datasets):
    """Generate all benchmark datasets and print the Table 2 statistics."""

    def run():
        return table2_dataset_statistics(
            scale=bench_protocol.dataset_scale, random_state=0, names=bench_datasets
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    header = (f"{'Name':10s} {'Task':26s} {'#Train':>7s} {'#Valid':>7s} {'#Test':>7s}"
              f" {'paper #Train':>13s} {'paper #Valid':>13s} {'paper #Test':>12s}")
    print("\n\nTable 2: Datasets used in Evaluation (synthetic stand-ins)")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['name']:10s} {row['task']:26s} {row['n_train']:7d} "
              f"{row['n_valid']:7d} {row['n_test']:7d} {row['paper_train']:13d} "
              f"{row['paper_valid']:13d} {row['paper_test']:12d}")

    assert len(rows) == len(bench_datasets)
    for row in rows:
        assert row["n_train"] > 0 and row["n_valid"] > 0 and row["n_test"] > 0
        # 80/10/10 split shape.
        total = row["n_train"] + row["n_valid"] + row["n_test"]
        assert row["n_train"] / total > 0.7


def test_engine_parallel_matches_serial_with_warm_cache(
    benchmark, bench_protocol, bench_execution, smallest_bench_dataset, tmp_path_factory
):
    """Parallel + cached grid execution is bit-equal to the serial code path."""
    framework = "activedp"
    cache_dir = bench_execution.cache_dir or tmp_path_factory.mktemp("trial-cache")
    # Keep the workers=0 "all cores" sentinel intact; only promote an
    # explicit serial setting to an actually-parallel pool.
    workers = bench_execution.workers
    if workers == 1:
        workers = 2
    parallel = replace(bench_execution, workers=workers, cache_dir=cache_dir)

    def run():
        return run_framework_on_dataset(
            framework, smallest_bench_dataset, bench_protocol, execution=parallel
        )

    cold = benchmark.pedantic(run, rounds=1, iterations=1)
    cold_report = last_report()
    serial = run_framework_on_dataset(framework, smallest_bench_dataset, bench_protocol)
    warm = run_framework_on_dataset(
        framework, smallest_bench_dataset, bench_protocol, execution=parallel
    )
    warm_report = last_report()

    print(f"\n\nEngine smoke on {smallest_bench_dataset!r} "
          f"({parallel.workers} workers, cache at {cache_dir}):")
    print(f"  cold run: {cold_report}; warm rerun: {warm_report}")
    print(f"  average_accuracy serial={serial.average_accuracy:.6f} "
          f"parallel={cold.average_accuracy:.6f} warm={warm.average_accuracy:.6f}")

    assert cold.average_accuracy == serial.average_accuracy
    assert warm.average_accuracy == serial.average_accuracy
    if parallel.use_cache:
        assert warm_report.n_executed == 0
        assert warm_report.n_cached == warm_report.n_trials
