"""Micro-benchmark: the PR 5 contention drain against both broker backends.

Races the same worker-thread fleet over the same task set once per backend
(the filesystem spool and the SQLite queue) and records what each backend
spends per executed trial:

* **spool** — directory listings and failed rename attempts (the PR 5
  contention currency: every wasted rename is a claim race lost on the
  shared filesystem);
* **sqlite** — write transactions per claim (there are no rename races to
  lose; contention shows up as bounded write-lock waits, so the interesting
  number is how many lock holds a trial costs).

No trials are executed — claims are completed immediately — so the numbers
isolate pure protocol cost.  Both drains must execute every task exactly
once; the SQLite drain additionally asserts a generous
transactions-per-claim ceiling so a regression that starts paying a
transaction per *candidate* (rather than per batch/completion) fails loudly.
Headline numbers are merged into ``BENCH_core.json`` under
``broker_backends``.

Environment knobs:

* ``REPRO_BROKER_BENCH_WORKERS``  racing worker threads (default 8)
* ``REPRO_BROKER_BENCH_TASKS``    tasks to drain (default 200)
* ``REPRO_BROKER_BENCH_DATASETS`` dataset shards tasks spread over (default 8)
* ``REPRO_BROKER_BENCH_BATCH``    claim-batch size (default 16)
* ``REPRO_BROKER_BENCH_MAX_TX_PER_CLAIM``
                                  ceiling on SQLite write transactions per
                                  claim (default 3.0)
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.experiments import EvaluationProtocol
from repro.runner import BROKER_BACKENDS, TrialSpec, create_broker

N_WORKERS = int(os.environ.get("REPRO_BROKER_BENCH_WORKERS", 8))
N_TASKS = int(os.environ.get("REPRO_BROKER_BENCH_TASKS", 200))
N_DATASETS = int(os.environ.get("REPRO_BROKER_BENCH_DATASETS", 8))
CLAIM_BATCH = int(os.environ.get("REPRO_BROKER_BENCH_BATCH", 16))
MAX_TX_PER_CLAIM = float(os.environ.get("REPRO_BROKER_BENCH_MAX_TX_PER_CLAIM", 3.0))

_PROTOCOL = EvaluationProtocol(n_iterations=1, eval_every=1, n_seeds=1, dataset_scale=0.1)


def _specs(n_tasks: int, n_datasets: int) -> list[TrialSpec]:
    # The trials are never executed, so the dataset names only need to be
    # distinct shard labels, not registered corpora.
    return [
        TrialSpec(
            framework="uncertainty",
            dataset=f"corpus-{i % n_datasets}",
            seed=i,
            protocol=_PROTOCOL,
        )
        for i in range(n_tasks)
    ]


@dataclass
class BackendDrain:
    """Aggregated protocol cost of one racing drain on one backend."""

    backend: str
    wall_seconds: float
    claims: int
    batches: int
    claimed_keys: list[str]
    stats: dict  # summed per-worker stat counters, backend-specific keys

    def per_trial(self, count: float) -> float:
        """*count* normalised per executed (claimed) trial."""
        return count / max(self.claims, 1)


def _drain(backend: str, location, specs, n_workers: int, claim_batch: int) -> BackendDrain:
    """Race *n_workers* threads over one shared queue until it is empty."""
    submitter = create_broker(backend, location)
    assert submitter.enqueue_batch(specs) == len(specs)
    total = len(specs)
    # One broker per worker, exactly as real daemons hold one each — the
    # per-instance stats then sum into fleet totals.
    brokers = [create_broker(backend, location) for _ in range(n_workers)]
    barrier = threading.Barrier(n_workers)
    claimed: list[list[str]] = [[] for _ in range(n_workers)]
    done = threading.Event()

    def work(index: int) -> None:
        broker = brokers[index]
        barrier.wait()
        while not done.is_set():
            # An empty sweep is idle polling, not drain cost: a real worker
            # paces it with poll_interval regardless of backend, so it must
            # not dilute the per-executed-trial comparison.
            before = dict(vars(broker.stats))
            leases = broker.lease_batch(f"bench-{index}", limit=claim_batch)
            if not leases:
                broker.stats.__dict__.update(before)
                return
            for lease in leases:
                claimed[index].append(lease.key)
                broker.complete(lease)
            if sum(len(keys) for keys in claimed) >= total:
                done.set()
                return

    started = time.perf_counter()
    threads = [threading.Thread(target=work, args=(i,)) for i in range(n_workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads), f"{backend} drain wedged"
    wall = time.perf_counter() - started

    totals: dict[str, float] = {}
    for broker in brokers:
        for name, value in vars(broker.stats).items():
            totals[name] = totals.get(name, 0) + value
    return BackendDrain(
        backend=backend,
        wall_seconds=wall,
        claims=int(totals.get("claims", 0)),
        batches=int(totals.get("batches", 0)),
        claimed_keys=[key for per_worker in claimed for key in per_worker],
        stats=totals,
    )


def _report(result: BackendDrain) -> None:
    extra = ""
    if result.backend == "spool":
        extra = (
            f"listings/trial={result.per_trial(result.stats['listings']):.3f}  "
            f"failed_renames/trial={result.per_trial(result.stats['failed_renames']):.3f}"
        )
    elif result.backend == "sqlite":
        extra = (
            f"tx/claim={result.per_trial(result.stats['transactions']):.3f}  "
            f"queries={int(result.stats['queries'])}"
        )
    print(
        f"  {result.backend:8s} wall={result.wall_seconds:6.2f}s  "
        f"claims={result.claims:4d}  batches={result.batches:4d}  {extra}"
    )


def test_backends_drain_exactly_once_with_bounded_protocol_cost(tmp_path, bench_record):
    """Both backends drain the contention scenario exactly once; SQLite stays
    under the transactions-per-claim ceiling (default 8 workers x 200 tasks)."""
    specs = _specs(N_TASKS, N_DATASETS)
    expected = sorted(spec.key for spec in specs)

    results = {
        backend: _drain(
            backend, tmp_path / backend, specs, N_WORKERS, CLAIM_BATCH
        )
        for backend in BROKER_BACKENDS
    }
    print(f"\nbroker backends @ {N_WORKERS} workers x {N_TASKS} tasks:")
    for result in results.values():
        _report(result)

    headline: dict = {"n_workers": N_WORKERS, "n_tasks": N_TASKS, "claim_batch": CLAIM_BATCH}
    for backend, result in results.items():
        entry = {
            "wall_seconds": result.wall_seconds,
            "claims": result.claims,
            "batches": result.batches,
        }
        if backend == "spool":
            entry["listings_per_trial"] = result.per_trial(result.stats["listings"])
            entry["failed_renames_per_trial"] = result.per_trial(
                result.stats["failed_renames"]
            )
        if backend == "sqlite":
            entry["transactions_per_claim"] = result.per_trial(
                result.stats["transactions"]
            )
        headline[backend] = entry
    bench_record("broker_backends", headline)

    # Correctness first: every backend executes every task exactly once.
    for backend, result in results.items():
        assert sorted(result.claimed_keys) == expected, (
            f"{backend} drain lost or duplicated tasks"
        )
    # SQLite spends a bounded number of write-lock holds per trial: one
    # claim transaction amortised over the batch plus one completion each.
    tx_per_claim = results["sqlite"].per_trial(results["sqlite"].stats["transactions"])
    assert tx_per_claim <= MAX_TX_PER_CLAIM, (
        f"sqlite spent {tx_per_claim:.2f} transactions/claim "
        f"(ceiling {MAX_TX_PER_CLAIM}) — claims are no longer batched"
    )
