"""Benchmark EXP-T4: regenerate Table 4 (ActiveDP with different sample selectors).

Runs ActiveDP with the five samplers of the paper — passive, uncertainty
sampling (US), learning-active-learning (LAL), select-by-expected-utility
(SEU) and the ADP sampler — on every benchmark dataset and prints the
Table 4 layout.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_table4_samplers
from repro.experiments.reporting import format_result_table


def test_table4_sampler_study(benchmark, bench_protocol, bench_datasets, bench_execution):
    """Run the sampler grid and print the Table 4 layout."""

    def run():
        return run_table4_samplers(bench_protocol, datasets=bench_datasets, execution=bench_execution)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n\nTable 4: Performance of ActiveDP with different sample selectors")
    print(format_result_table(results, row_label="Sampler"))

    means = {
        sampler: np.mean([r.average_accuracy for r in per_dataset.values()])
        for sampler, per_dataset in results.items()
    }
    print("\nMean over datasets:")
    for sampler, mean in means.items():
        print(f"  {sampler:8s} {mean:.4f}")
    print("(paper: the ADP sampler wins on 7 of 8 datasets)")

    # Shape check: ADP stays competitive with the alternative samplers.
    assert means["ADP"] >= min(means.values()) - 0.02
    for sampler, mean in means.items():
        assert 0.4 <= mean <= 1.0, f"{sampler} produced implausible accuracy {mean}"
