"""Shared configuration for the benchmark suite.

Every benchmark regenerates one artefact of the paper's evaluation section
(Table 2-5, Figure 3).  The defaults are scaled down so the whole suite runs
in minutes on one machine; three environment variables restore larger (up to
paper-scale) protocols:

* ``REPRO_BENCH_SCALE``       synthetic dataset scale factor (default 0.3)
* ``REPRO_BENCH_ITERATIONS``  labelling budget per run (default 20; paper 300)
* ``REPRO_BENCH_SEEDS``       repetitions per configuration (default 1; paper 5)
* ``REPRO_BENCH_DATASETS``    comma-separated dataset subset (default: all 8)
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import dataset_names
from repro.experiments import EvaluationProtocol


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_protocol() -> EvaluationProtocol:
    """Evaluation protocol used by all benchmarks (scaled via env vars)."""
    iterations = _env_int("REPRO_BENCH_ITERATIONS", 20)
    return EvaluationProtocol(
        n_iterations=iterations,
        eval_every=max(iterations // 4, 1),
        n_seeds=_env_int("REPRO_BENCH_SEEDS", 1),
        dataset_scale=_env_float("REPRO_BENCH_SCALE", 0.3),
        base_seed=0,
    )


@pytest.fixture(scope="session")
def bench_datasets() -> list[str]:
    """Datasets covered by the benchmarks (all eight of Table 2 by default)."""
    override = os.environ.get("REPRO_BENCH_DATASETS")
    if override:
        return [name.strip() for name in override.split(",") if name.strip()]
    return dataset_names()
