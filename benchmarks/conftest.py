"""Shared configuration for the benchmark suite.

Every benchmark regenerates one artefact of the paper's evaluation section
(Table 2-5, Figure 3).  The defaults are scaled down so the whole suite runs
in minutes on one machine; three environment variables restore larger (up to
paper-scale) protocols:

* ``REPRO_BENCH_SCALE``       synthetic dataset scale factor (default 0.3)
* ``REPRO_BENCH_ITERATIONS``  labelling budget per run (default 20; paper 300)
* ``REPRO_BENCH_SEEDS``       repetitions per configuration (default 1; paper 5)
* ``REPRO_BENCH_DATASETS``    comma-separated dataset subset (default: all 8)

Execution is routed through the experiment engine; the ``--workers``,
``--cache-dir`` and ``--no-cache`` command-line options (registered in the
root ``conftest.py``, with ``REPRO_BENCH_WORKERS`` / ``REPRO_BENCH_CACHE_DIR``
/ ``REPRO_BENCH_NO_CACHE`` fallbacks) control parallelism and trial-result
caching for every benchmark.  ``--distributed`` + ``--spool-dir``
(``REPRO_BENCH_DISTRIBUTED`` / ``REPRO_BENCH_SPOOL_DIR``) instead hand the
grid to externally started ``python -m repro.runner.worker`` daemons sharing
the spool and cache directories.

``bench_paper_scale.py`` additionally understands ``REPRO_PAPER_BENCH_FULL``
/ ``REPRO_PAPER_BENCH_ITERATIONS`` / ``REPRO_PAPER_BENCH_SEEDS`` /
``REPRO_PAPER_BENCH_SCALE`` to grow its scaled-down warm-vs-cold comparison
back to the verbatim ``EvaluationProtocol.paper()`` protocol.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import DATASET_PROFILES, dataset_names
from repro.experiments import EvaluationProtocol
from repro.runner import ExecutionConfig


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_protocol() -> EvaluationProtocol:
    """Evaluation protocol used by all benchmarks (scaled via env vars)."""
    iterations = _env_int("REPRO_BENCH_ITERATIONS", 20)
    return EvaluationProtocol(
        n_iterations=iterations,
        eval_every=max(iterations // 4, 1),
        n_seeds=_env_int("REPRO_BENCH_SEEDS", 1),
        dataset_scale=_env_float("REPRO_BENCH_SCALE", 0.3),
        base_seed=0,
    )


@pytest.fixture(scope="session")
def bench_datasets() -> list[str]:
    """Datasets covered by the benchmarks (all eight of Table 2 by default)."""
    override = os.environ.get("REPRO_BENCH_DATASETS")
    if override:
        return [name.strip() for name in override.split(",") if name.strip()]
    return dataset_names()


@pytest.fixture(scope="session")
def bench_execution(request) -> ExecutionConfig:
    """Engine execution configuration from CLI options / environment.

    With ``--distributed`` (or ``REPRO_BENCH_DISTRIBUTED=1``) the grid is
    spooled to externally started ``python -m repro.runner.worker`` daemons
    via ``--spool-dir`` / ``REPRO_BENCH_SPOOL_DIR``; otherwise trials run in
    a local process pool sized by ``--workers``.
    """
    workers = request.config.getoption("--workers")
    if workers is None:
        workers = _env_int("REPRO_BENCH_WORKERS", 1)
    cache_dir = request.config.getoption("--cache-dir") or os.environ.get(
        "REPRO_BENCH_CACHE_DIR"
    )
    no_cache = request.config.getoption("--no-cache") or bool(
        int(os.environ.get("REPRO_BENCH_NO_CACHE", "0"))
    )
    distributed = request.config.getoption("--distributed") or bool(
        int(os.environ.get("REPRO_BENCH_DISTRIBUTED", "0"))
    )
    if distributed:
        spool_dir = request.config.getoption("--spool-dir") or os.environ.get(
            "REPRO_BENCH_SPOOL_DIR"
        )
        if not spool_dir or not cache_dir or no_cache:
            raise pytest.UsageError(
                "--distributed needs --spool-dir and an enabled --cache-dir "
                "(the shared cache carries worker results back)"
            )
        return ExecutionConfig(
            mode="distributed", spool_dir=spool_dir, cache_dir=cache_dir
        )
    return ExecutionConfig(workers=workers, cache_dir=cache_dir, use_cache=not no_cache)


@pytest.fixture(scope="session")
def smallest_bench_dataset(bench_datasets) -> str:
    """The cheapest configured dataset (by synthetic corpus size)."""
    return min(bench_datasets, key=lambda name: DATASET_PROFILES[name].default_size)


@pytest.fixture(scope="session")
def bench_record():
    """Headline-number recorder writing the repo-root ``BENCH_core.json``.

    ``bench_record(name, values)`` merges *values* under the *name* key (see
    ``benchmarks/record.py``); ``REPRO_BENCH_RECORD_FILE`` redirects the
    output file.
    """
    import record

    return record.record
