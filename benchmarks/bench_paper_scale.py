"""Benchmark EXP-PS: paper-scale protocol runs with warm-started refits.

Runs the same ActiveDP grid through the experiment engine once per warm-start
variant — all knobs off (the historical cold-start behaviour), then
incrementally enabling intersection-mapped label-model warm starts,
incremental LabelPick (glasso resumed from the previous precision estimate)
and AL-model warm starts, then adaptive early stopping on top of all three
(the ``adaptive`` variant, today's default configuration) — and reports
wall-clock, total EM iterations and the *warm-refit rate* (fraction of
post-first fits that were warm-started), asserting the headline metric stays
within tolerance, that warm starts actually engage, and that the adaptive
variant cuts EM work below the cold fixed-budget baseline outright.

Scaled down by default so it completes in about a minute; environment
variables restore the paper's protocol:

* ``REPRO_PAPER_BENCH_FULL=1``        run ``EvaluationProtocol.paper()``
  verbatim (300 iterations x 5 seeds, full-size corpora);
* ``REPRO_PAPER_BENCH_ITERATIONS``    labelling budget (default 30);
* ``REPRO_PAPER_BENCH_SEEDS``         repetitions (default 1);
* ``REPRO_PAPER_BENCH_SCALE``         dataset scale factor (default 0.3);
* ``REPRO_PAPER_BENCH_MIN_WARM_RATE`` floor asserted on the all-warm
  variant's label-model warm-refit rate (default 0.5; CI uses it to guard
  against silent regressions to cold starts).

The engine's ``--workers`` / ``--cache-dir`` / ``--no-cache`` options apply
as in every other benchmark (each variant hashes to distinct cache entries
through its ``pipeline_kwargs``), as does ``--distributed --spool-dir DIR``
to fan the grid out over ``python -m repro.runner.worker`` daemons —
useful for the full ``REPRO_PAPER_BENCH_FULL=1`` protocol, which is exactly
the paper-scale workload the distributed backend exists for.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import EvaluationProtocol
from repro.runner.engine import GridJob, run_experiment_grid

#: Headline-metric tolerance between warm- and cold-start runs.  Warm starts
#: change the optimisation trajectories, not the models, so the average test
#: accuracy must agree to within a few points.
ACCURACY_TOLERANCE = 0.05

#: The warm-start grid: each variant toggles the three ActiveDPConfig knobs.
#: The warm-vs-cold iteration thresholds below are calibrated for the
#: historical fixed-budget stopping rule, so every warm-start variant pins
#: ``adaptive_early_stop=False``; the ``adaptive`` variant then layers the
#: new default (relative-loss early stopping) on top of all warm starts and
#: must beat the cold fixed-budget baseline outright.
VARIANTS = {
    "cold": {
        "warm_start_label_model": False,
        "warm_start_labelpick": False,
        "warm_start_al_model": False,
        "adaptive_early_stop": False,
    },
    "warm-lm": {
        "warm_start_label_model": True,
        "warm_start_labelpick": False,
        "warm_start_al_model": False,
        "adaptive_early_stop": False,
    },
    "warm-lm+lp": {
        "warm_start_label_model": True,
        "warm_start_labelpick": True,
        "warm_start_al_model": False,
        "adaptive_early_stop": False,
    },
    "warm-all": {
        "warm_start_label_model": True,
        "warm_start_labelpick": True,
        "warm_start_al_model": True,
        "adaptive_early_stop": False,
    },
    "adaptive": {
        "warm_start_label_model": True,
        "warm_start_labelpick": True,
        "warm_start_al_model": True,
        "adaptive_early_stop": True,
    },
}

#: Slack factor on each warm variant's EM-iteration total relative to the
#: cold baseline (see the in-test comment); the adaptive variant must *cut*
#: EM work, not just match it.
EM_ITERATION_SLACK = {
    "warm-lm": 1.05,
    "warm-lm+lp": 1.25,
    "warm-all": 1.25,
    "adaptive": 1.0,
}


@pytest.fixture(scope="module")
def paper_protocol() -> EvaluationProtocol:
    """The paper protocol, scaled down unless REPRO_PAPER_BENCH_FULL=1."""
    if os.environ.get("REPRO_PAPER_BENCH_FULL") == "1":
        return EvaluationProtocol.paper()
    iterations = int(os.environ.get("REPRO_PAPER_BENCH_ITERATIONS", 30))
    return EvaluationProtocol.paper(
        n_iterations=iterations,
        eval_every=max(iterations // 3, 1),
        n_seeds=int(os.environ.get("REPRO_PAPER_BENCH_SEEDS", 1)),
        dataset_scale=float(os.environ.get("REPRO_PAPER_BENCH_SCALE", 0.3)),
    )


def _final_records(results):
    """The last iteration record of every trial in a grid result dict."""
    for result in results.values():
        for history in result.histories:
            if history.records:
                yield history.records[-1]


def _total_em_iterations(results) -> int:
    """Sum the final cumulative EM-iteration counters across all trials."""
    return sum(
        record.lm_em_iterations
        for record in _final_records(results)
        if record.lm_em_iterations is not None
    )


def _warm_rates(results) -> dict[str, tuple[float, int]]:
    """``(warm-refit rate, post-first fits)`` per model family.

    The rate is warm fits / post-first fits: the first fit of a run is
    necessarily cold, so it is excluded from the denominator — a rate of
    1.0 means *every* refit after the first was warm-started.  The
    denominator is returned too so callers can skip rate assertions for
    families that never refit (e.g. glasso on very short protocols).
    """
    totals = {"lm": [0, 0], "al": [0, 0], "glasso": [0, 0]}
    for record in _final_records(results):
        for family in totals:
            fits = getattr(record, f"{family}_fits")
            warm = getattr(record, f"{family}_warm_fits")
            if fits is None or warm is None:
                continue
            totals[family][0] += warm
            totals[family][1] += max(fits - 1, 0)
    return {
        family: ((warm / post_first if post_first else 0.0), post_first)
        for family, (warm, post_first) in totals.items()
    }


def test_paper_scale_warm_vs_cold(
    benchmark, paper_protocol, smallest_bench_dataset, bench_execution, bench_record
):
    """Warm-started refits must cut EM work without moving the headline metric."""

    def run():
        results = {}
        timings = {}
        for variant, knobs in VARIANTS.items():
            jobs = [
                GridJob(
                    key=(variant, smallest_bench_dataset),
                    framework="activedp",
                    dataset=smallest_bench_dataset,
                    pipeline_kwargs={"config_overrides": dict(knobs)},
                )
            ]
            start = time.perf_counter()
            results[variant] = run_experiment_grid(
                jobs, paper_protocol, bench_execution
            )
            timings[variant] = time.perf_counter() - start
        return results, timings

    results, timings = benchmark.pedantic(run, rounds=1, iterations=1)

    summary = {}
    for variant in VARIANTS:
        cell = results[variant][(variant, smallest_bench_dataset)]
        summary[variant] = {
            "accuracy": cell.average_accuracy,
            "em_iterations": _total_em_iterations(results[variant]),
            "rates": _warm_rates(results[variant]),
            "seconds": timings[variant],
        }

    print(
        f"\n\nPaper-scale protocol on {smallest_bench_dataset!r} "
        f"({paper_protocol.n_iterations} iterations x {paper_protocol.n_seeds} seed(s)):"
    )
    for variant, row in summary.items():
        rates = row["rates"]
        print(
            f"  {variant:10s} avg_acc={row['accuracy']:.4f} "
            f"em_iterations={row['em_iterations']:6d} "
            f"warm_rate(lm/glasso/al)={rates['lm'][0]:.2f}/"
            f"{rates['glasso'][0]:.2f}/{rates['al'][0]:.2f} "
            f"wall={row['seconds']:.2f}s"
        )

    bench_record(
        "paper_scale_warm_vs_cold",
        {
            "dataset": smallest_bench_dataset,
            "n_iterations": paper_protocol.n_iterations,
            "n_seeds": paper_protocol.n_seeds,
            "variants": {
                variant: {
                    "accuracy": row["accuracy"],
                    "em_iterations": row["em_iterations"],
                    "wall_seconds": row["seconds"],
                    "lm_warm_rate": row["rates"]["lm"][0],
                    "glasso_warm_rate": row["rates"]["glasso"][0],
                    "al_warm_rate": row["rates"]["al"][0],
                }
                for variant, row in summary.items()
            },
        },
    )

    # The headline metric must agree within tolerance across every variant.
    # EM-iteration totals are not a strict per-fit ordering: an
    # intersection-mapped seed can occasionally start farther from the new
    # optimum than the cold init, and the labelpick/AL knobs change the run
    # trajectory up to solver tolerance — so every warm variant gets a small
    # slack factor rather than a hard <= (measured headroom is ~0.7x).
    for variant in VARIANTS:
        if variant == "cold":
            continue
        assert (
            abs(summary[variant]["accuracy"] - summary["cold"]["accuracy"])
            <= ACCURACY_TOLERANCE
        )
        assert (
            summary[variant]["em_iterations"]
            <= EM_ITERATION_SLACK[variant] * summary["cold"]["em_iterations"]
        )

    # With all knobs off, nothing may warm-start; with them on, warm refits
    # must actually engage (> 0 guards CI against silent cold-start
    # regressions; the env floor pins the measured rate).  Families that
    # never refit on very short protocols (post-first fits = 0) are skipped.
    cold_rates = summary["cold"]["rates"]
    assert all(rate == 0.0 for rate, _ in cold_rates.values())
    all_rates = summary["warm-all"]["rates"]
    for family in ("lm", "glasso", "al"):
        rate, post_first = all_rates[family]
        if post_first:
            assert rate > 0.0
    min_warm_rate = float(os.environ.get("REPRO_PAPER_BENCH_MIN_WARM_RATE", 0.5))
    lm_rate, lm_post_first = all_rates["lm"]
    if lm_post_first:
        assert lm_rate >= min_warm_rate
