"""Benchmark EXP-PS: paper-scale protocol runs with warm-started label-model refits.

Runs the same ActiveDP grid twice through the experiment engine — once with
``warm_start_label_model=False`` (the historical cold-start-EM behaviour)
and once with warm starts enabled — and reports wall-clock plus the total
number of EM iterations spent on label-model refits, asserting the headline
metric stays within tolerance.

Scaled down by default so it completes in about a minute; environment
variables restore the paper's protocol:

* ``REPRO_PAPER_BENCH_FULL=1``        run ``EvaluationProtocol.paper()``
  verbatim (300 iterations x 5 seeds, full-size corpora);
* ``REPRO_PAPER_BENCH_ITERATIONS``    labelling budget (default 30);
* ``REPRO_PAPER_BENCH_SEEDS``         repetitions (default 1);
* ``REPRO_PAPER_BENCH_SCALE``         dataset scale factor (default 0.3).

The engine's ``--workers`` / ``--cache-dir`` / ``--no-cache`` options apply
as in every other benchmark (warm and cold variants hash to distinct cache
entries through their ``pipeline_kwargs``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import EvaluationProtocol
from repro.runner.engine import GridJob, run_experiment_grid

#: Headline-metric tolerance between warm- and cold-start runs.  Warm starts
#: change the EM trajectory, not the model, so the average test accuracy must
#: agree to within a few points.
ACCURACY_TOLERANCE = 0.05


@pytest.fixture(scope="module")
def paper_protocol() -> EvaluationProtocol:
    """The paper protocol, scaled down unless REPRO_PAPER_BENCH_FULL=1."""
    if os.environ.get("REPRO_PAPER_BENCH_FULL") == "1":
        return EvaluationProtocol.paper()
    iterations = int(os.environ.get("REPRO_PAPER_BENCH_ITERATIONS", 30))
    return EvaluationProtocol.paper(
        n_iterations=iterations,
        eval_every=max(iterations // 3, 1),
        n_seeds=int(os.environ.get("REPRO_PAPER_BENCH_SEEDS", 1)),
        dataset_scale=float(os.environ.get("REPRO_PAPER_BENCH_SCALE", 0.3)),
    )


def _total_em_iterations(results) -> int:
    """Sum the final cumulative EM-iteration counters across all trials."""
    total = 0
    for result in results.values():
        for history in result.histories:
            counters = [
                record.lm_em_iterations
                for record in history.records
                if record.lm_em_iterations is not None
            ]
            if counters:
                total += counters[-1]
    return total


def test_paper_scale_warm_vs_cold(
    benchmark, paper_protocol, smallest_bench_dataset, bench_execution
):
    """Warm-started refits must cut EM work without moving the headline metric."""
    variants = {"cold": False, "warm": True}

    def run():
        results = {}
        timings = {}
        for variant, warm in variants.items():
            jobs = [
                GridJob(
                    key=(variant, smallest_bench_dataset),
                    framework="activedp",
                    dataset=smallest_bench_dataset,
                    pipeline_kwargs={
                        "config_overrides": {"warm_start_label_model": warm}
                    },
                )
            ]
            start = time.perf_counter()
            results[variant] = run_experiment_grid(
                jobs, paper_protocol, bench_execution
            )
            timings[variant] = time.perf_counter() - start
        return results, timings

    results, timings = benchmark.pedantic(run, rounds=1, iterations=1)

    summary = {}
    for variant in variants:
        cell = results[variant][(variant, smallest_bench_dataset)]
        summary[variant] = {
            "accuracy": cell.average_accuracy,
            "em_iterations": _total_em_iterations(results[variant]),
            "seconds": timings[variant],
        }

    print(
        f"\n\nPaper-scale protocol on {smallest_bench_dataset!r} "
        f"({paper_protocol.n_iterations} iterations x {paper_protocol.n_seeds} seed(s)):"
    )
    for variant, row in summary.items():
        print(
            f"  {variant:5s} avg_acc={row['accuracy']:.4f} "
            f"em_iterations={row['em_iterations']:6d} "
            f"wall={row['seconds']:.2f}s"
        )

    # Warm starts must not spend more EM iterations than cold starts, and the
    # headline metric must agree within tolerance.
    assert summary["warm"]["em_iterations"] <= summary["cold"]["em_iterations"]
    assert (
        abs(summary["warm"]["accuracy"] - summary["cold"]["accuracy"])
        <= ACCURACY_TOLERANCE
    )
