"""Benchmark EXP-F3: regenerate Figure 3 (end-to-end performance comparison).

Runs ActiveDP, Nemo, IWS, Revising LF and uncertainty sampling on every
benchmark dataset under the evaluation protocol, prints the per-dataset
performance curves and the average-accuracy table, and reports the average
improvement of ActiveDP over each baseline (the numbers quoted in
Section 4.2 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_figure3
from repro.experiments.figure3 import FIGURE3_FRAMEWORKS
from repro.experiments.reporting import format_curve_series, format_result_table
from repro.runner import last_report


def test_figure3_end_to_end_comparison(benchmark, bench_protocol, bench_datasets, bench_execution):
    """Run the full framework x dataset comparison and print Figure 3's content."""

    def run():
        return run_figure3(bench_protocol, datasets=bench_datasets, execution=bench_execution)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n\nEngine: {last_report()}")
    print("\nFigure 3: downstream test-accuracy curves (mean over seeds)")
    for dataset, per_framework in outcome.results.items():
        print(f"\n  [{dataset}]")
        for result in per_framework.values():
            print("    " + format_curve_series(result))

    table = {
        framework: {
            dataset: per_framework[framework]
            for dataset, per_framework in outcome.results.items()
            if framework in per_framework
        }
        for framework in FIGURE3_FRAMEWORKS
    }
    print("\nAverage test accuracy during the run (area under the curve):")
    print(format_result_table(table, row_label="Framework"))

    print("\nActiveDP improvement over baselines (paper: Nemo +4.4%, IWS +13.5%, "
          "RLF +2.6%, US +6.5%):")
    for baseline in ["nemo", "iws", "revising_lf", "uncertainty"]:
        delta = outcome.improvement_over(baseline)
        print(f"  over {baseline:12s}: {delta:+.4f}")

    # Shape checks: every framework produced valid accuracies, and ActiveDP is
    # competitive on average (>= the mean baseline minus a small tolerance).
    activedp_mean = outcome.average_accuracy("activedp")
    assert 0.4 <= activedp_mean <= 1.0
    baseline_means = [
        outcome.average_accuracy(name)
        for name in ["nemo", "iws", "revising_lf", "uncertainty"]
    ]
    assert activedp_mean >= np.mean(baseline_means) - 0.05
