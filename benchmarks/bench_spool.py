"""Micro-benchmark: spool-broker contention — sharded+batched vs flat layout.

Drains the same task set twice with racing worker threads and compares the
spool round-trips the two layouts spend per executed trial:

* **flat baseline** (the pre-sharding layout): every task directly under
  ``tasks/``, every worker scanning the same sorted listing and claiming one
  task per scan — all workers race the lowest-key task, so claims burn
  failed renames and every single lease costs a directory listing;
* **sharded + batched**: tasks sharded by dataset, workers claiming
  ``claim_batch`` tasks per shard listing in randomised shard/scan order
  with affinity to the previously fruitful shard.

No trials are executed — claims are completed immediately — so the numbers
isolate pure spool-protocol cost.  The comparison asserts the headline
contention fix: at the default 8 workers x 200 tasks the sharded+batched
layout spends **>=5x fewer failed rename attempts** and **>=4x fewer
directory listings** per executed trial.  A second, sharded-only smoke test
bounds renames-per-claim for CI (2 workers there; see the workflow).

Environment knobs:

* ``REPRO_SPOOL_BENCH_WORKERS``  racing worker threads (default 8)
* ``REPRO_SPOOL_BENCH_TASKS``    tasks to drain (default 200)
* ``REPRO_SPOOL_BENCH_DATASETS`` dataset shards the tasks spread over (default 8)
* ``REPRO_SPOOL_BENCH_BATCH``    claim-batch size for the sharded run (default 16)
* ``REPRO_SPOOL_BENCH_MAX_RENAMES_PER_CLAIM``
                                 smoke-test ceiling on sharded
                                 renames-per-claim (default 2.0)
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from repro.experiments import EvaluationProtocol
from repro.runner import SpoolBroker, TrialSpec

N_WORKERS = int(os.environ.get("REPRO_SPOOL_BENCH_WORKERS", 8))
N_TASKS = int(os.environ.get("REPRO_SPOOL_BENCH_TASKS", 200))
N_DATASETS = int(os.environ.get("REPRO_SPOOL_BENCH_DATASETS", 8))
CLAIM_BATCH = int(os.environ.get("REPRO_SPOOL_BENCH_BATCH", 16))
MAX_RENAMES_PER_CLAIM = float(
    os.environ.get("REPRO_SPOOL_BENCH_MAX_RENAMES_PER_CLAIM", 2.0)
)

_PROTOCOL = EvaluationProtocol(n_iterations=1, eval_every=1, n_seeds=1, dataset_scale=0.1)


def _specs(n_tasks: int, n_datasets: int) -> list[TrialSpec]:
    # The trials are never executed, so the dataset names only need to be
    # distinct shard labels, not registered corpora.
    return [
        TrialSpec(
            framework="uncertainty",
            dataset=f"corpus-{i % n_datasets}",
            seed=i,
            protocol=_PROTOCOL,
        )
        for i in range(n_tasks)
    ]


@dataclass
class DrainResult:
    """Aggregated spool round-trips of one racing drain."""

    claims: int
    failed_renames: int
    listings: int
    claimed_keys: list[str]

    def per_trial(self, count: int) -> float:
        """*count* normalised per executed (claimed) trial."""
        return count / max(self.claims, 1)


def _drain(spool, specs, n_workers, shard_by, scan_order, claim_batch) -> DrainResult:
    """Race *n_workers* threads over one spool until it is empty."""
    submitter = SpoolBroker(spool, shard_by=shard_by)
    for spec in specs:
        assert submitter.enqueue(spec)
    total = len(specs)
    brokers = [
        SpoolBroker(spool, shard_by=shard_by, scan_order=scan_order)
        for _ in range(n_workers)
    ]
    barrier = threading.Barrier(n_workers)
    claimed: list[list[str]] = [[] for _ in range(n_workers)]
    done = threading.Event()

    def work(index: int) -> None:
        broker = brokers[index]
        barrier.wait()
        while not done.is_set():
            before = broker.stats.listings
            leases = broker.lease_batch(f"bench-{index}", limit=claim_batch)
            if not leases:
                # An empty sweep is idle polling, not drain cost: a real
                # worker paces it with poll_interval regardless of layout,
                # so it must not dilute the per-executed-trial comparison.
                broker.stats.listings = before
                return
            for lease in leases:
                claimed[index].append(lease.key)
                broker.complete(lease)
            if sum(len(c) for c in claimed) >= total:
                # All tasks claimed: signal the fleet so nobody burns a
                # final full-spool scan just to discover emptiness.
                done.set()
                return

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n_workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads), "drain wedged"
    return DrainResult(
        claims=sum(broker.stats.claims for broker in brokers),
        failed_renames=sum(broker.stats.failed_renames for broker in brokers),
        listings=sum(broker.stats.listings for broker in brokers),
        claimed_keys=[key for per_worker in claimed for key in per_worker],
    )


def _report(label: str, result: DrainResult) -> None:
    print(
        f"  {label:16s} claims={result.claims:4d}  "
        f"failed_renames={result.failed_renames:5d} "
        f"({result.per_trial(result.failed_renames):.3f}/trial)  "
        f"listings={result.listings:5d} "
        f"({result.per_trial(result.listings):.3f}/trial)"
    )


def test_sharded_batched_spool_cuts_contention(tmp_path, bench_record):
    """Sharded+batched claims beat the flat layout >=5x on failed renames
    and >=4x on listings per executed trial (8 workers x 200 tasks default)."""
    specs = _specs(N_TASKS, N_DATASETS)
    expected = sorted(spec.key for spec in specs)

    flat = _drain(
        tmp_path / "flat", specs, N_WORKERS,
        shard_by="none", scan_order="sorted", claim_batch=1,
    )
    sharded = _drain(
        tmp_path / "sharded", specs, N_WORKERS,
        shard_by="dataset", scan_order="random", claim_batch=CLAIM_BATCH,
    )
    print(f"\nspool contention @ {N_WORKERS} workers x {N_TASKS} tasks:")
    _report("flat (PR 4)", flat)
    _report("sharded+batched", sharded)

    bench_record(
        "spool_contention",
        {
            "n_workers": N_WORKERS,
            "n_tasks": N_TASKS,
            "flat_failed_renames_per_trial": flat.per_trial(flat.failed_renames),
            "flat_listings_per_trial": flat.per_trial(flat.listings),
            "sharded_failed_renames_per_trial": sharded.per_trial(
                sharded.failed_renames
            ),
            "sharded_listings_per_trial": sharded.per_trial(sharded.listings),
        },
    )

    # Correctness first: both drains execute every task exactly once.
    assert sorted(flat.claimed_keys) == expected
    assert sorted(sharded.claimed_keys) == expected
    if N_WORKERS != 8 or N_TASKS != 200:
        # The fixed >=5x/>=4x bounds are calibrated for the default
        # 8 workers x 200 tasks geometry (less contention at smaller
        # scale shrinks the flat baseline's waste, not the fix's win);
        # with the env knobs changed, report the numbers without judging.
        print("  (ratio thresholds skipped: calibrated for 8 workers x 200 tasks)")
        return
    # The headline contention fix, per executed trial.
    assert flat.per_trial(flat.failed_renames) >= 5 * sharded.per_trial(
        max(sharded.failed_renames, 1)
    ), "sharding+batching no longer cuts failed claim renames >=5x"
    assert flat.per_trial(flat.listings) >= 4 * sharded.per_trial(sharded.listings), (
        "batch claims no longer cut directory listings >=4x"
    )


def test_sharded_spool_renames_per_claim_bounded(tmp_path):
    """CI contention smoke: a sharded+batched drain stays under a generous
    renames-per-claim ceiling — a regression that re-serialises workers onto
    one listing fails loudly here."""
    specs = _specs(N_TASKS, N_DATASETS)
    sharded = _drain(
        tmp_path / "sharded", specs, N_WORKERS,
        shard_by="dataset", scan_order="random", claim_batch=CLAIM_BATCH,
    )
    assert sorted(sharded.claimed_keys) == sorted(spec.key for spec in specs)
    renames_per_claim = sharded.per_trial(sharded.failed_renames) + 1.0
    print(
        f"\nsharded spool smoke @ {N_WORKERS} workers x {N_TASKS} tasks: "
        f"renames/claim={renames_per_claim:.3f} (ceiling {MAX_RENAMES_PER_CLAIM})"
    )
    assert renames_per_claim <= MAX_RENAMES_PER_CLAIM