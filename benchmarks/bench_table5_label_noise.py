"""Benchmark EXP-T5: regenerate Table 5 (ActiveDP under simulated label noise).

Runs ActiveDP with a noisy simulated user at 0 %, 5 %, 10 % and 15 % noise on
every benchmark dataset and prints the Table 5 layout.  The paper reports an
average degradation of 1.1 / 1.6 / 2.7 accuracy points at 5 / 10 / 15 % noise.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_table5_label_noise
from repro.experiments.noise import TABLE5_NOISE_RATES
from repro.experiments.reporting import format_result_table


def test_table5_label_noise_study(benchmark, bench_protocol, bench_datasets, bench_execution):
    """Run the noise grid and print the Table 5 layout."""

    def run():
        return run_table5_label_noise(bench_protocol, datasets=bench_datasets, execution=bench_execution)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    printable = {f"{rate:.0%} noise": per_dataset for rate, per_dataset in results.items()}
    print("\n\nTable 5: Performance of ActiveDP with simulated label-noise rates")
    print(format_result_table(printable, row_label="Label noise"))

    means = {
        rate: np.mean([r.average_accuracy for r in per_dataset.values()])
        for rate, per_dataset in results.items()
    }
    print("\nMean over datasets:")
    for rate, mean in means.items():
        print(f"  {rate:4.0%} {mean:.4f}  (degradation vs clean: {means[0.0] - mean:+.4f})")
    print("(paper: average degradation 1.1% / 1.6% / 2.7% at 5/10/15% noise)")

    # Shape checks: the clean run is the best (within tolerance) and even the
    # noisiest setting stays far above chance.
    noisiest = max(TABLE5_NOISE_RATES)
    assert means[0.0] >= means[noisiest] - 0.03
    assert means[noisiest] > 0.5
