"""Persist headline benchmark numbers to the repo-root ``BENCH_core.json``.

Every benchmark prints its summary to the pytest log, where it scrolls away.
:func:`record` additionally merges the headline numbers — engine wall-clock,
EM iteration totals, spool rename rates — into a single JSON file at the
repository root, keyed by benchmark name, so consecutive runs build up a
comparable record the repo can version.

The file is read-modify-written atomically (temp file + ``os.replace``) and
unknown keys are preserved, so benchmarks can update their own entry without
clobbering each other's.  ``REPRO_BENCH_RECORD_FILE`` redirects the output
(CI points it at a workspace artefact; tests point it at ``tmp_path``).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

#: Environment variable redirecting the record file away from the repo root.
BENCH_RECORD_ENV_VAR = "REPRO_BENCH_RECORD_FILE"

#: Default location: ``BENCH_core.json`` next to the repository's ``conftest.py``.
DEFAULT_BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def bench_file() -> Path:
    """The record file currently in effect (env override or the default)."""
    override = os.environ.get(BENCH_RECORD_ENV_VAR, "").strip()
    return Path(override) if override else DEFAULT_BENCH_FILE


def _jsonable(value):
    """Coerce numpy scalars / paths / tuples into plain JSON values."""
    if isinstance(value, dict):
        return {str(key): _jsonable(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(entry) for entry in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def record(benchmark: str, values: dict, path: Path | None = None) -> Path:
    """Merge *values* under the *benchmark* key of the record file.

    Returns the path written.  The existing file's other entries survive; a
    corrupt or missing file is replaced rather than raising, so one bad run
    can never wedge the whole benchmark suite.
    """
    target = Path(path) if path is not None else bench_file()
    existing: dict = {}
    try:
        loaded = json.loads(target.read_text())
        if isinstance(loaded, dict):
            existing = loaded
    except (OSError, ValueError):
        pass
    existing[str(benchmark)] = _jsonable(values)

    target.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", dir=target.parent, prefix=target.name + ".", delete=False
    )
    try:
        with handle:
            json.dump(existing, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(handle.name, target)
    except BaseException:
        os.unlink(handle.name)
        raise
    return target
