"""Persist headline benchmark numbers to the repo-root ``BENCH_core.json``.

Every benchmark prints its summary to the pytest log, where it scrolls away.
:func:`record` additionally merges the headline numbers — engine wall-clock,
EM iteration totals, spool rename rates — into a single JSON file at the
repository root, keyed by benchmark name, so consecutive runs build up a
comparable record the repo can version.

The file is read-modify-written atomically (temp file + ``os.replace``) and
unknown keys are preserved, so benchmarks can update their own entry without
clobbering each other's.  ``REPRO_BENCH_RECORD_FILE`` redirects the output
(CI points it at a workspace artefact; tests point it at ``tmp_path``).

``BENCH_core.json`` is last-run-wins per benchmark; the *trajectory* across
runs lives in the run-history database (``BENCH_history.sqlite3``, an
append-only :meth:`~repro.runner.results.RunHistoryDB.record_benchmark`
table).  :func:`record` feeds both, so every benchmark's headline numbers
become a timestamped row queryable via ``python -m repro.runner.query
--db BENCH_history.sqlite3 --benchmarks`` and comparable against the
committed JSON with ``--trajectory-diff``.  ``REPRO_BENCH_DB`` redirects
the trajectory database the same way the record file is redirected.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path

#: Environment variable redirecting the record file away from the repo root.
BENCH_RECORD_ENV_VAR = "REPRO_BENCH_RECORD_FILE"

#: Environment variable redirecting the benchmark-trajectory database.
BENCH_DB_ENV_VAR = "REPRO_BENCH_DB"

#: Default location: ``BENCH_core.json`` next to the repository's ``conftest.py``.
DEFAULT_BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: Default trajectory database, next to the record file (gitignored).
DEFAULT_BENCH_DB = DEFAULT_BENCH_FILE.with_name("BENCH_history.sqlite3")


def bench_file() -> Path:
    """The record file currently in effect (env override or the default)."""
    override = os.environ.get(BENCH_RECORD_ENV_VAR, "").strip()
    return Path(override) if override else DEFAULT_BENCH_FILE


def bench_db() -> Path:
    """The trajectory database currently in effect (env override or default)."""
    override = os.environ.get(BENCH_DB_ENV_VAR, "").strip()
    return Path(override) if override else DEFAULT_BENCH_DB


def _jsonable(value):
    """Coerce numpy scalars / paths / tuples into plain JSON values."""
    if isinstance(value, dict):
        return {str(key): _jsonable(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(entry) for entry in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def record(benchmark: str, values: dict, path: Path | None = None) -> Path:
    """Merge *values* under the *benchmark* key of the record file.

    Returns the path written.  The existing file's other entries survive; a
    corrupt or missing file is replaced rather than raising, so one bad run
    can never wedge the whole benchmark suite.
    """
    target = Path(path) if path is not None else bench_file()
    record_trial_index(benchmark, values)
    existing: dict = {}
    try:
        loaded = json.loads(target.read_text())
        if isinstance(loaded, dict):
            existing = loaded
    except (OSError, ValueError):
        pass
    existing[str(benchmark)] = _jsonable(values)

    target.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", dir=target.parent, prefix=target.name + ".", delete=False
    )
    try:
        with handle:
            json.dump(existing, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(handle.name, target)
    except BaseException:
        os.unlink(handle.name)
        raise
    return target


def record_trial_index(
    benchmark: str, values: dict, db_path: Path | None = None
) -> Path | None:
    """Append *values* as a timestamped trajectory row for *benchmark*.

    Unlike :func:`record`'s JSON file this is append-only — every call adds
    a ``benchmark_runs`` row to the run-history database, so consecutive
    runs build a queryable performance trajectory instead of overwriting
    each other.  Returns the database path, or ``None`` if the write
    failed: the trajectory is best-effort observability and must never
    fail a benchmark that just spent minutes producing its numbers.
    """
    from repro.runner.results import RunHistoryDB

    target = Path(db_path) if db_path is not None else bench_db()
    try:
        db = RunHistoryDB(target)
        try:
            db.record_benchmark(str(benchmark), _jsonable(values))
        finally:
            db.close()
    except Exception as error:  # pragma: no cover - depends on disk state
        print(
            f"[bench] warning: could not record trajectory row for "
            f"{benchmark!r} in {target}: {error}",
            file=sys.stderr,
        )
        return None
    return target
