"""Benchmark NUM: the numeric core at paper scale (backends + early stopping).

Two claims of the pluggable-backend work are pinned here on a paper-scale
synthetic label matrix (8192 instances x 40 LFs by default):

1. **Backend equivalence** — fitting either EM label model on the JAX
   backend produces the same parameters and posteriors as the numpy
   reference to float64 tolerance (skipped when jax is not installed; the
   numpy path needs nothing).
2. **Adaptive early stopping** — with ``early_stop=True`` a warm-started
   refit converges in a handful of EM iterations where the fixed-budget
   comparator (``tol=0``: the historical criterion disabled, the full
   ``max_iter`` spent) burns its whole budget, at identical headline
   accuracy.

Headline numbers (iteration counts, wall-clock, agreement) are merged into
the repo-root ``BENCH_core.json`` via ``benchmarks/record.py``.  Environment
knobs:

* ``REPRO_NUMERICS_BENCH_INSTANCES``  synthetic corpus size (default 8192)
* ``REPRO_NUMERICS_BENCH_LFS``        LF count (default 40)
"""

from __future__ import annotations

import importlib.util
import os
import time

import numpy as np
import pytest

from repro.label_models import GenerativeLabelModel, MeTaLLabelModel
from repro.labeling.lf import ABSTAIN

N_INSTANCES = int(os.environ.get("REPRO_NUMERICS_BENCH_INSTANCES", 8192))
N_LFS = int(os.environ.get("REPRO_NUMERICS_BENCH_LFS", 40))
N_CLASSES = 2

HAS_JAX = importlib.util.find_spec("jax") is not None

MODELS = {
    "generative": GenerativeLabelModel,
    "metal": MeTaLLabelModel,
}


def _synthetic_corpus(
    n_instances: int, n_lfs: int, n_classes: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """A label matrix from LFs with heterogeneous accuracy and propensity."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_classes, size=n_instances)
    accuracies = rng.uniform(0.6, 0.9, size=n_lfs)
    propensities = rng.uniform(0.2, 0.5, size=n_lfs)
    fired = rng.random((n_instances, n_lfs)) < propensities
    correct = rng.random((n_instances, n_lfs)) < accuracies
    offsets = rng.integers(1, n_classes, size=(n_instances, n_lfs), endpoint=True)
    wrong = (labels[:, None] + offsets) % n_classes
    votes = np.where(correct, labels[:, None], wrong)
    return np.where(fired, votes, ABSTAIN), labels


@pytest.fixture(scope="module")
def corpus() -> tuple[np.ndarray, np.ndarray]:
    return _synthetic_corpus(N_INSTANCES, N_LFS, N_CLASSES)


def _accuracy(model, matrix: np.ndarray, labels: np.ndarray) -> float:
    predictions = np.argmax(model.predict_proba(matrix), axis=1)
    return float(np.mean(predictions == labels))


@pytest.mark.skipif(not HAS_JAX, reason="jax not installed (numpy path needs nothing)")
@pytest.mark.parametrize("name", sorted(MODELS))
def test_numpy_vs_jax_equivalence_at_paper_scale(corpus, name):
    """The jit-compiled JAX fit agrees with the numpy reference at float64."""
    matrix, _ = corpus
    fits = {}
    for backend in ("numpy", "jax"):
        model = MODELS[name](n_classes=N_CLASSES, backend=backend)
        start = time.perf_counter()
        model.fit(matrix)
        seconds = time.perf_counter() - start
        fits[backend] = (model, seconds)
        print(f"\n{name} on {backend}: n_iter={model.n_iter_} wall={seconds:.2f}s")

    reference, _ = fits["numpy"]
    candidate, _ = fits["jax"]
    np.testing.assert_allclose(
        candidate.predict_proba(matrix),
        reference.predict_proba(matrix),
        rtol=1e-7,
        atol=1e-9,
    )
    if name == "generative":
        np.testing.assert_allclose(
            candidate.cpts_, reference.cpts_, rtol=1e-7, atol=1e-9
        )
    else:
        np.testing.assert_allclose(
            candidate.accuracies_, reference.accuracies_, rtol=1e-7, atol=1e-9
        )
        np.testing.assert_allclose(
            candidate.propensities_, reference.propensities_, rtol=1e-7, atol=1e-9
        )


def test_early_stop_cuts_warm_refit_iterations(corpus, bench_record):
    """A warm refit under early stopping beats the fixed budget it replaces.

    The comparator is a *true* fixed budget — ``tol=0`` disables the
    historical responsibility-change criterion entirely, so the fit spends
    all of ``max_iter`` — which is what "fixed EM budget" means once the
    convergence check cannot fire.  Early stopping must cut the warm
    refit's iterations by at least 4x without moving headline accuracy.
    """
    matrix, labels = corpus
    summary = {"n_instances": N_INSTANCES, "n_lfs": N_LFS}
    for name, cls in sorted(MODELS.items()):
        # A previous fit on all-but-one LF column seeds the refit, the
        # interactive framework's steady state (one new LF per iteration).
        seed_model = cls(n_classes=N_CLASSES)
        seed_model.fit(matrix[:, :-1])
        warm = seed_model.export_warm_start(list(range(N_LFS - 1)) + [-1])

        variants = {}
        for variant, kwargs in {
            "fixed": {"tol": 0.0},
            "early_stop": {"early_stop": True},
        }.items():
            model = cls(n_classes=N_CLASSES, **kwargs)
            start = time.perf_counter()
            model.fit(matrix, warm_start=warm)
            variants[variant] = {
                "n_iter": model.n_iter_,
                "converged": model.converged_,
                "accuracy": _accuracy(model, matrix, labels),
                "wall_seconds": time.perf_counter() - start,
            }

        fixed, early = variants["fixed"], variants["early_stop"]
        print(
            f"\n{name} warm refit: fixed={fixed['n_iter']} iterations "
            f"({fixed['wall_seconds']:.2f}s) vs early-stop={early['n_iter']} "
            f"({early['wall_seconds']:.2f}s), "
            f"accuracy {fixed['accuracy']:.4f} vs {early['accuracy']:.4f}"
        )
        assert not fixed["converged"]
        assert early["converged"]
        assert early["n_iter"] * 4 <= fixed["n_iter"]
        assert abs(early["accuracy"] - fixed["accuracy"]) <= 1e-3
        summary[name] = variants

    bench_record("numerics_early_stop", summary)
