"""Benchmark EXP-T3: regenerate Table 3 (ablation study of LabelPick and ConFusion).

Compares four ActiveDP variants — Baseline (neither technique), LabelPick
only, ConFusion only and full ActiveDP — on every benchmark dataset and
prints the average downstream test accuracy per variant, matching the row
structure of Table 3.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_table3_ablation
from repro.experiments.reporting import format_result_table


def test_table3_ablation_study(benchmark, bench_protocol, bench_datasets, bench_execution):
    """Run the ablation grid and print the Table 3 layout."""

    def run():
        return run_table3_ablation(bench_protocol, datasets=bench_datasets, execution=bench_execution)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n\nTable 3: Performance of Ablated Versions of ActiveDP")
    print(format_result_table(results, row_label="Method"))

    means = {
        variant: np.mean([r.average_accuracy for r in per_dataset.values()])
        for variant, per_dataset in results.items()
    }
    print("\nMean over datasets:")
    for variant, mean in means.items():
        print(f"  {variant:10s} {mean:.4f}")
    print("(paper: ActiveDP > ConFusion > LabelPick > Baseline on average)")

    # Shape check: the full method is at least as good (within tolerance) as
    # the ablated baseline on average across datasets.
    assert means["ActiveDP"] >= means["Baseline"] - 0.03
    for variant, mean in means.items():
        assert 0.4 <= mean <= 1.0, f"{variant} produced implausible accuracy {mean}"
