"""The stdlib HTTP layer: routes, CLI entry point, graceful drain.

``python -m repro.serving.server --spool DIR --cache-dir DIR`` starts the
always-on labeling service over an existing worker fleet (spawn workers
with ``python -m repro.runner.worker`` or the supervisor; this process
never executes trials itself).  The server is a
:class:`http.server.ThreadingHTTPServer` — one daemon thread per request —
delegating every route to the HTTP-independent
:class:`~repro.serving.service.LabelingService` and rendering its
``(status, payload, headers)`` answers through
:func:`~repro.serving.schemas.canonical_json`, so responses are
byte-stable across processes.

Routes
======

==========  ===============================  =====================================
``POST``    ``/label``                       submit a label request (200/202/429)
``GET``     ``/label/<key>``                 poll a job by content key
``GET``     ``/sessions``                    list sessions
``POST``    ``/sessions``                    open an interactive session
``POST``    ``/sessions/<id>/lfs``           stream one LF into a session
``GET``     ``/sessions/<id>/labels``        the session's current labels
``POST``    ``/sessions/<id>/evict``         force-suspend a session to disk
``DELETE``  ``/sessions/<id>``               close a session
``GET``     ``/healthz``                     liveness (503 while draining)
``GET``     ``/stats``                       counters for ops and tests
==========  ===============================  =====================================

SIGINT/SIGTERM trigger a graceful drain: new work is refused with 503,
pending jobs get a grace period to finish, live sessions are suspended to
disk, and the process exits 0.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.runner.brokers import BROKER_BACKENDS, DEFAULT_LEASE_TTL
from repro.runner.results import RESULT_STORE_BACKENDS
from repro.serving.schemas import canonical_json
from repro.serving.service import LabelingService

#: Maximum accepted request-body size; a labeling request is a dataset
#: name and an LF list, so anything near this is malformed or hostile.
MAX_BODY_BYTES = 4 * 1024 * 1024


class LabelingRequestHandler(BaseHTTPRequestHandler):
    """Translate HTTP requests into :class:`LabelingService` calls.

    The handler owns no state: the service lives on the server object
    (``self.server.service``), and every response body is rendered with
    :func:`canonical_json` so identical payloads are identical bytes.
    """

    protocol_version = "HTTP/1.1"
    server_version = "repro-labeling"

    # Quiet by default: per-request lines go through log_message, which the
    # CLI's --quiet suppresses entirely.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Per-request log line (suppressed when the server is quiet)."""
        if not getattr(self.server, "quiet", False):
            sys.stderr.write(
                "%s - %s\n" % (self.address_string(), format % args)
            )

    @property
    def service(self) -> LabelingService:
        """The service instance the owning server was built around."""
        return self.server.service

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        """Route GET requests."""
        parts = [part for part in self.path.split("?", 1)[0].split("/") if part]
        if parts == ["healthz"]:
            self._respond(*self.service.healthz())
        elif parts == ["stats"]:
            self._respond(*self.service.stats())
        elif parts == ["sessions"]:
            self._respond(*self.service.list_sessions())
        elif len(parts) == 2 and parts[0] == "label":
            self._respond(*self.service.status(parts[1]))
        elif len(parts) == 3 and parts[0] == "sessions" and parts[2] == "labels":
            self._respond(*self.service.session_labels(parts[1]))
        else:
            self._respond(404, {"error": f"no route for GET {self.path}"}, {})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        """Route POST requests."""
        parts = [part for part in self.path.split("?", 1)[0].split("/") if part]
        if parts == ["label"]:
            body, error = self._read_json()
            self._respond(*(error or self.service.submit(body)))
        elif parts == ["sessions"]:
            body, error = self._read_json()
            self._respond(*(error or self.service.create_session(body)))
        elif len(parts) == 3 and parts[0] == "sessions" and parts[2] == "lfs":
            body, error = self._read_json()
            self._respond(*(error or self.service.session_add_lf(parts[1], body)))
        elif len(parts) == 3 and parts[0] == "sessions" and parts[2] == "evict":
            self._respond(*self.service.session_evict(parts[1]))
        else:
            self._respond(404, {"error": f"no route for POST {self.path}"}, {})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib casing
        """Route DELETE requests."""
        parts = [part for part in self.path.split("?", 1)[0].split("/") if part]
        if len(parts) == 2 and parts[0] == "sessions":
            self._respond(*self.service.session_delete(parts[1]))
        else:
            self._respond(404, {"error": f"no route for DELETE {self.path}"}, {})

    def _read_json(self):
        """Parse the request body as JSON; returns ``(body, error_response)``."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            return None, (413, {"error": "request body too large or unsized"}, {})
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8") or "null"), None
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return None, (400, {"error": f"invalid JSON body: {error}"}, {})

    def _respond(self, status: int, payload: dict, headers: dict) -> None:
        """Send one canonical-JSON response."""
        body = canonical_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


class LabelingServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` carrying the service for its handlers."""

    daemon_threads = True

    def __init__(self, address, service: LabelingService, quiet: bool = False):
        super().__init__(address, LabelingRequestHandler)
        self.service = service
        self.quiet = quiet


def serve(
    service: LabelingService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = False,
) -> LabelingServer:
    """Bind a :class:`LabelingServer` (port 0 = ephemeral); does not block.

    The caller runs ``server.serve_forever()`` (or a thread does, in
    tests) and is responsible for ``server.shutdown()``.
    """
    return LabelingServer((host, port), service, quiet=quiet)


def build_parser() -> argparse.ArgumentParser:
    """CLI for ``python -m repro.serving.server``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.server",
        description="Always-on labeling service over a repro worker fleet.",
    )
    parser.add_argument("--spool", required=True, help="broker location shared with workers")
    parser.add_argument("--cache-dir", required=True, help="result-store root shared with workers")
    parser.add_argument("--broker", default="spool", choices=list(BROKER_BACKENDS))
    parser.add_argument("--results", default="pickle", choices=list(RESULT_STORE_BACKENDS))
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 binds an ephemeral port")
    parser.add_argument("--lease-ttl", type=float, default=DEFAULT_LEASE_TTL)
    parser.add_argument("--max-inflight", type=int, default=8)
    parser.add_argument("--retry-after", type=float, default=1.0)
    parser.add_argument("--max-sessions", type=int, default=8)
    parser.add_argument("--session-dir", default=None)
    parser.add_argument("--poll-interval", type=float, default=0.2)
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        help="seconds pending jobs get to finish on SIGINT/SIGTERM")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: serve until SIGINT/SIGTERM, then drain and exit 0.

    Prints ``serving http://HOST:PORT`` on stdout once bound (flushed), so
    examples and smoke tests can parse the ephemeral address.
    """
    args = build_parser().parse_args(argv)
    service = LabelingService(
        args.spool,
        args.cache_dir,
        broker=args.broker,
        results=args.results,
        lease_ttl=args.lease_ttl,
        max_inflight=args.max_inflight,
        retry_after=args.retry_after,
        max_sessions=args.max_sessions,
        session_dir=args.session_dir,
        poll_interval=args.poll_interval,
    )
    server = serve(service, host=args.host, port=args.port, quiet=args.quiet)
    host, port = server.server_address[:2]
    print(f"serving http://{host}:{port}", flush=True)

    stop = threading.Event()

    def _signal_drain(signum, frame):
        # Only flag here: drain touches locks and must not run in signal
        # context while a request thread holds them.
        stop.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGINT, _signal_drain)
    signal.signal(signal.SIGTERM, _signal_drain)

    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        summary = service.drain(grace=args.drain_grace)
        server.server_close()
        if not args.quiet:
            print(
                "drained"
                f" pending={summary['pending']}"
                f" suspended_sessions={summary['suspended']}",
                flush=True,
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
