"""Interactive labeling sessions: live ``TrainingState`` with LRU eviction.

A *session* is the interactive counterpart of a batch label request: the
client opens one against a dataset, then streams LFs in one at a time and
reads back labels/diagnostics after each — exactly the workflow the paper's
interactive loop simulates, but driven by a real user over HTTP.

Each session holds a live :class:`~repro.core.framework.ActiveDP` whose
mutable run state is a :class:`~repro.core.state.TrainingState` — and that
state is *designed* to be snapshotted.  The :class:`SessionManager` exploits
it for capacity management: when more sessions exist than ``max_live``, the
least-recently-used idle session is suspended to disk (``snapshot()`` →
pickle), and the next request against it transparently resumes — the
dataset is regenerated deterministically from the session's seed and the
state is restored, so an evicted-then-resumed session produces labels
identical to an uninterrupted one (the round-trip suite pins this at the
service boundary).

Concurrency: one request at a time per session (a session is one user's
mutable state, not a shared resource).  A second concurrent request gets
:class:`SessionBusyError` — HTTP 429 — instead of a lock queue.
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
import pickle
import threading
import uuid
from pathlib import Path

from repro.baselines.lfset import export_labeling_artifacts
from repro.core.config import ActiveDPConfig
from repro.core.framework import ActiveDP
from repro.datasets import load_dataset
from repro.labeling.wire import lf_from_wire
from repro.runner.results import atomic_write_bytes
from repro.utils.rng import ensure_rng


class UnknownSessionError(KeyError):
    """No session with the given id exists (rendered as HTTP 404)."""


class SessionBusyError(RuntimeError):
    """The session is serving another request (rendered as HTTP 429)."""


class LabelingSession:
    """One user's live labeling run against one dataset.

    Parameters
    ----------
    session_id:
        Identifier the manager filed this session under.
    dataset:
        Dataset registry name; regenerated deterministically from *seed*
        and *scale*, which is what makes disk eviction cheap — only the
        run state is persisted, never the corpus.
    seed:
        Seed for dataset generation and the framework.
    scale:
        Dataset scale factor.
    config_overrides:
        Plain-JSON :class:`ActiveDPConfig` field overrides.
    end_model_C:
        Inverse regularisation of the end model in label payloads.
    """

    def __init__(
        self,
        session_id: str,
        dataset: str,
        seed: int = 0,
        scale: float = 1.0,
        config_overrides: dict | None = None,
        end_model_C: float = 1.0,
    ):
        self.session_id = session_id
        self.dataset = dataset
        self.seed = int(seed)
        self.scale = float(scale)
        self.config_overrides = dict(config_overrides) if config_overrides else None
        self.end_model_C = float(end_model_C)

        self.split = load_dataset(dataset, scale=self.scale, random_state=self.seed)
        config = ActiveDPConfig.for_dataset_kind(self.split.kind)
        if self.config_overrides:
            config = dataclasses.replace(config, **self.config_overrides)
        rng = ensure_rng(self.seed)
        self.framework = ActiveDP(
            self.split.train,
            self.split.valid,
            config,
            random_state=int(rng.integers(2**31 - 1)),
        )

    @property
    def meta(self) -> dict:
        """Everything needed to rebuild this session's immutable parts."""
        return {
            "session_id": self.session_id,
            "dataset": self.dataset,
            "seed": self.seed,
            "scale": self.scale,
            "config_overrides": self.config_overrides,
            "end_model_C": self.end_model_C,
        }

    def add_lf(self, wire_lf: dict) -> dict:
        """Add one wire-schema LF and refit; returns the step diagnostics.

        Duplicate LFs (already streamed into this session) are reported,
        not re-added — the same guard the interactive framework applies to
        a simulated user repeating itself.
        """
        lf = lf_from_wire(wire_lf)
        duplicate = lf in self.framework.lfs
        if not duplicate:
            self.framework.add_lf(lf)
            self.framework.refit()
        state = self.framework.state
        return {
            "session": self.session_id,
            "lf_name": lf.name,
            "duplicate": duplicate,
            "n_lfs": len(state.lfs),
            "n_selected_lfs": len(state.selection.selected_indices),
            "threshold": state.threshold,
        }

    def label_payload(self) -> dict:
        """Current labels/diagnostics/predictions (the session's product).

        The artifact body is built by the same
        :func:`~repro.baselines.lfset.export_labeling_artifacts` the batch
        replay pipeline uses, so streaming N LFs and replaying the same N
        LFs report identical artifacts.
        """
        payload = export_labeling_artifacts(
            self.framework, self.split, end_model_C=self.end_model_C
        )
        payload["session"] = self.session_id
        payload["dataset"] = self.dataset
        payload["n_lfs"] = len(self.framework.lfs)
        return payload

    def info(self) -> dict:
        """Session metadata plus current LF count (the ``GET`` view)."""
        return {**self.meta, "n_lfs": len(self.framework.lfs)}

    # -- suspend/resume ----------------------------------------------------

    def suspended_payload(self) -> bytes:
        """Pickled ``{meta, state}`` — everything eviction persists."""
        return pickle.dumps({"meta": self.meta, "state": self.framework.snapshot()})

    @classmethod
    def resume(cls, payload: bytes) -> "LabelingSession":
        """Rebuild a session from :meth:`suspended_payload` bytes.

        The dataset is regenerated from the persisted seed/scale (fully
        deterministic) and the pickled :class:`TrainingState` — including
        its RNG — replaces the fresh one, so the resumed session continues
        exactly where the evicted one stopped.
        """
        suspended = pickle.loads(payload)
        session = cls(**suspended["meta"])
        session.framework.restore(suspended["state"], copy=False)
        return session


@dataclasses.dataclass
class _SessionEntry:
    """Manager-internal record: the live session (or its eviction metadata)."""

    meta: dict
    session: LabelingSession | None
    lock: threading.Lock
    last_used: int


class SessionManager:
    """Track sessions, enforce per-session concurrency, evict LRU to disk.

    Parameters
    ----------
    session_dir:
        Directory suspended sessions are pickled into
        (``<id>.session.pkl``); created on first eviction.
    max_live:
        Maximum sessions held in memory; beyond it the least-recently-used
        idle session is suspended to disk.  Suspended sessions still count
        as *existing* — any request against them resumes transparently.
    """

    #: Shared state the lock-discipline checker holds to `with self._lock:`.
    _GUARDED_BY_LOCK = ("_entries", "_clock", "_created", "_evictions", "_resumes")

    def __init__(self, session_dir: str | Path, max_live: int = 8):
        if max_live < 1:
            raise ValueError("max_live must be at least 1")
        self.session_dir = Path(session_dir)
        self.max_live = int(max_live)
        self._lock = threading.Lock()
        self._entries: dict[str, _SessionEntry] = {}
        self._clock = itertools.count(1)
        self._created = 0
        self._evictions = 0
        self._resumes = 0

    # -- lifecycle ---------------------------------------------------------

    def create(
        self,
        dataset: str,
        seed: int = 0,
        scale: float = 1.0,
        config_overrides: dict | None = None,
        end_model_C: float = 1.0,
    ) -> dict:
        """Open a new session; returns its :meth:`LabelingSession.info` view."""
        session_id = uuid.uuid4().hex[:16]
        session = LabelingSession(
            session_id,
            dataset,
            seed=seed,
            scale=scale,
            config_overrides=config_overrides,
            end_model_C=end_model_C,
        )
        with self._lock:
            self._entries[session_id] = _SessionEntry(
                meta=session.meta,
                session=session,
                lock=threading.Lock(),
                last_used=next(self._clock),
            )
            self._created += 1
            self._evict_over_capacity()
        return session.info()

    @contextlib.contextmanager
    def acquire(self, session_id: str):
        """Exclusive access to one session, resuming it from disk if evicted.

        Raises :class:`UnknownSessionError` for ids that never existed (or
        were deleted) and :class:`SessionBusyError` when another request
        holds the session — the per-session concurrency limit is exactly
        one, surfaced as 429 rather than queued.
        """
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is None:
                raise UnknownSessionError(session_id)
            if not entry.lock.acquire(blocking=False):
                raise SessionBusyError(session_id)
        try:
            if entry.session is None:
                # Resume outside the manager lock: dataset regeneration is
                # the expensive part and must not serialise other sessions.
                entry.session = LabelingSession.resume(
                    self._suspension_path(session_id).read_bytes()
                )
                with self._lock:
                    self._resumes += 1
            with self._lock:
                entry.last_used = next(self._clock)
                self._evict_over_capacity()
            yield entry.session
        finally:
            entry.lock.release()

    def evict(self, session_id: str) -> dict:
        """Explicitly suspend one session to disk (idempotent).

        The suspend half of the suspend-resume contract, exposed as its own
        endpoint so clients (and the round-trip tests) can force the
        eviction path deterministically.
        """
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is None:
                raise UnknownSessionError(session_id)
            if not entry.lock.acquire(blocking=False):
                raise SessionBusyError(session_id)
            try:
                evicted = self._evict_entry(session_id, entry)
            finally:
                entry.lock.release()
        return {"session": session_id, "evicted": evicted}

    def delete(self, session_id: str) -> dict:
        """Close a session and remove any suspended payload on disk."""
        with self._lock:
            entry = self._entries.pop(session_id, None)
            if entry is None:
                raise UnknownSessionError(session_id)
            if not entry.lock.acquire(blocking=False):
                # Put it back: a request is mid-flight on this session.
                self._entries[session_id] = entry
                raise SessionBusyError(session_id)
            entry.lock.release()
        self._suspension_path(session_id).unlink(missing_ok=True)
        return {"session": session_id, "deleted": True}

    # -- introspection -----------------------------------------------------

    def list(self) -> list[dict]:
        """Every session's id, dataset and residency (live or suspended)."""
        with self._lock:
            return [
                {
                    "session": session_id,
                    "dataset": entry.meta["dataset"],
                    "live": entry.session is not None,
                }
                for session_id, entry in sorted(self._entries.items())
            ]

    def stats(self) -> dict:
        """Counter snapshot for ``/stats``."""
        with self._lock:
            live = sum(1 for entry in self._entries.values() if entry.session is not None)
            return {
                "sessions": len(self._entries),
                "live": live,
                "suspended": len(self._entries) - live,
                "max_live": self.max_live,
                "created": self._created,
                "evictions": self._evictions,
                "resumes": self._resumes,
            }

    def suspend_all(self) -> int:
        """Evict every idle live session (drain path); returns how many."""
        suspended = 0
        with self._lock:
            for session_id, entry in self._entries.items():
                if entry.session is None or not entry.lock.acquire(blocking=False):
                    continue
                try:
                    suspended += int(self._evict_entry(session_id, entry))
                finally:
                    entry.lock.release()
        return suspended

    # -- internals ---------------------------------------------------------

    def _suspension_path(self, session_id: str) -> Path:
        return self.session_dir / f"{session_id}.session.pkl"

    def _evict_entry(self, session_id: str, entry: _SessionEntry) -> bool:  # repro: locked
        # Caller holds both the manager lock and the entry lock.
        if entry.session is None:
            return False
        self.session_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(
            self._suspension_path(session_id), entry.session.suspended_payload()
        )
        entry.session = None
        self._evictions += 1
        return True

    def _evict_over_capacity(self) -> None:  # repro: locked
        # Caller holds the manager lock.  Oldest-first so the LRU session
        # pays the suspend; busy sessions (entry lock held) are skipped —
        # eviction never yanks state out from under a live request.
        live = [
            (entry.last_used, session_id, entry)
            for session_id, entry in self._entries.items()
            if entry.session is not None
        ]
        if len(live) <= self.max_live:
            return
        live.sort()
        excess = len(live) - self.max_live
        for _, session_id, entry in live:
            if excess <= 0:
                break
            if not entry.lock.acquire(blocking=False):
                continue
            try:
                if self._evict_entry(session_id, entry):
                    excess -= 1
            finally:
                entry.lock.release()
