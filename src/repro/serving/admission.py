"""Request admission: the in-flight cap behind 429 + Retry-After.

The broker queue is unbounded by design (a batch submitter wants its whole
grid enqueued); a service does not — unbounded admission turns a traffic
spike into an unbounded backlog with unbounded latency.  The
:class:`AdmissionController` is the service's one gate: at most
``max_inflight`` label jobs may be executing/queued on the fleet at once,
and everything beyond that is rejected *immediately* with HTTP 429 and a
``Retry-After`` hint rather than queued invisibly.

Warm requests (served straight from the result store) never pass through
the gate — admission protects fleet capacity, not cache reads.  The
controller is plain thread-safe counters; it never blocks.
"""

from __future__ import annotations

import threading


class AdmissionController:
    """Bounded in-flight admission with rejection counters.

    Parameters
    ----------
    max_inflight:
        Hard cap on concurrently admitted (not yet completed) jobs.
    retry_after:
        Seconds clients are told to wait before retrying a rejected
        request (the ``Retry-After`` response header).
    """

    #: Shared state the lock-discipline checker holds to `with self._lock:`.
    _GUARDED_BY_LOCK = (
        "_inflight",
        "_peak_inflight",
        "_admitted",
        "_rejected",
        "_completed",
    )

    def __init__(self, max_inflight: int = 8, retry_after: float = 1.0):
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if retry_after <= 0:
            raise ValueError("retry_after must be positive")
        self.max_inflight = int(max_inflight)
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._inflight = 0
        self._peak_inflight = 0
        self._admitted = 0
        self._rejected = 0
        self._completed = 0

    def try_acquire(self) -> bool:
        """Admit one job if capacity allows; never blocks.

        Returns ``True`` (capacity consumed — the caller owes exactly one
        :meth:`release`) or ``False`` (over the cap; the caller answers
        429 with :attr:`retry_after`).
        """
        with self._lock:
            if self._inflight >= self.max_inflight:
                self._rejected += 1
                return False
            self._inflight += 1
            self._admitted += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)
            return True

    def release(self) -> None:
        """Return one admitted job's capacity (on completion or failure)."""
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("release() without a matching try_acquire()")
            self._inflight -= 1
            self._completed += 1

    @property
    def inflight(self) -> int:
        """Jobs currently holding admission capacity."""
        with self._lock:
            return self._inflight

    def snapshot(self) -> dict:
        """Counter snapshot for ``/stats`` (and the stress-test assertions)."""
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "peak_inflight": self._peak_inflight,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "completed": self._completed,
                "retry_after": self.retry_after,
            }
