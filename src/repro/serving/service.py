"""The HTTP-independent service core: jobs, cache short-circuits, watcher.

:class:`LabelingService` is everything the serving layer does *except*
HTTP: it owns a :class:`~repro.runner.brokers.Broker` (cold requests become
content-keyed :class:`~repro.runner.spec.TrialSpec`\\ s enqueued to the
worker fleet), a :class:`~repro.runner.results.ResultStore` (warm requests
short-circuit straight to the stored history), an
:class:`~repro.serving.admission.AdmissionController` (bounded in-flight)
and a :class:`~repro.serving.sessions.SessionManager` (interactive
sessions).  A background watcher thread completes pending jobs as their
results land, polices expired worker leases, surfaces worker failures and
re-enqueues lost tasks.

Every public request method returns ``(http_status, payload, headers)`` so
the stdlib HTTP layer (:mod:`repro.serving.server`) is a thin translation
shim — and so the whole request surface is testable without a socket.

Dedup layers, cheapest first:

1. *coalescing* — a request whose key is already pending joins that job
   (no new enqueue, no admission charge);
2. *warm hit* — the result store already holds the key: answered
   immediately (HTTP 200), bypassing admission entirely;
3. *index hit* — an :class:`~repro.runner.results.IndexedResultStore`'s
   :class:`~repro.runner.results.history_db.RunHistoryDB` knows the key
   even though the blob read missed (e.g. the blob is still landing): the
   job is registered pending *without* an enqueue — an indexed key is
   never re-executed;
4. *broker idempotency* — even an enqueued duplicate key is a no-op at
   the queue.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.runner.brokers import DEFAULT_LEASE_TTL, create_broker
from repro.runner.results import create_result_store
from repro.runner.spec import TrialSpec
from repro.serving.admission import AdmissionController
from repro.serving.schemas import RequestError, label_payload, parse_label_request
from repro.serving.sessions import (
    SessionBusyError,
    SessionManager,
    UnknownSessionError,
)

#: How many watcher ticks between self-heal re-enqueue sweeps.  Failures
#: are checked every tick; re-enqueueing less often keeps the common path
#: cheap and — because ``enqueue`` clears a task's failure log when it
#: actually rewrites — guarantees a failure is observed before any retry
#: could mask it.
REQUEUE_EVERY_TICKS = 10


class _Job:
    """One pending/terminal label job (service-internal)."""

    __slots__ = ("spec", "status", "error", "admitted", "enqueued")

    def __init__(self, spec: TrialSpec, admitted: bool, enqueued: bool):
        self.spec = spec
        self.status = "pending"
        self.error: dict | None = None
        self.admitted = admitted
        self.enqueued = enqueued


class LabelingService:
    """Session-based labeling over the worker fleet, minus the HTTP.

    Parameters
    ----------
    spool_dir:
        Broker location shared with the worker fleet (spool directory, or
        the directory holding ``broker.sqlite3`` for the SQLite backend).
    cache_dir:
        Result-store root shared with the worker fleet.
    broker:
        Broker backend name (``"spool"`` or ``"sqlite"``).
    results:
        Result-store backend name (``"pickle"`` or ``"indexed"``).
    lease_ttl:
        Worker lease TTL passed to the broker; the watcher re-offers
        leases older than this.
    max_inflight / retry_after:
        :class:`AdmissionController` knobs (the 429 + ``Retry-After``
        behaviour).
    max_sessions:
        Live-session cap before LRU eviction to disk.
    session_dir:
        Where suspended sessions are pickled; defaults to
        ``<cache_dir>/sessions``.
    poll_interval:
        Watcher tick period in seconds.
    """

    #: Shared state the lock-discipline checker holds to `with self._lock:`
    #: (the watcher thread and request threads race on all of these).
    _GUARDED_BY_LOCK = ("_jobs", "_counters", "_tick", "_draining")

    def __init__(
        self,
        spool_dir: str | Path,
        cache_dir: str | Path,
        broker: str = "spool",
        results: str = "pickle",
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_inflight: int = 8,
        retry_after: float = 1.0,
        max_sessions: int = 8,
        session_dir: str | Path | None = None,
        poll_interval: float = 0.2,
    ):
        self.broker = create_broker(broker, spool_dir, lease_ttl=lease_ttl)
        self.store = create_result_store(results, cache_dir)
        self.admission = AdmissionController(
            max_inflight=max_inflight, retry_after=retry_after
        )
        if session_dir is None:
            session_dir = Path(cache_dir) / "sessions"
        self.sessions = SessionManager(session_dir, max_live=max_sessions)
        self.poll_interval = float(poll_interval)

        self._lock = threading.Lock()
        self._jobs: dict[str, _Job] = {}
        self._counters = {
            "submitted": 0,
            "warm_hits": 0,
            "coalesced": 0,
            "index_hits": 0,
            "enqueued": 0,
            "requeues": 0,
            "completed": 0,
            "failed": 0,
        }
        self._tick = 0
        self._draining = False
        self._stop = threading.Event()
        self._watcher = threading.Thread(
            target=self._watch_loop, name="serving-watcher", daemon=True
        )
        self._watcher.start()

    # -- label requests ----------------------------------------------------

    def submit(self, body: dict) -> tuple[int, dict, dict]:
        """Handle ``POST /label``: dedup, cache, admit, enqueue.

        Returns 200 with the full label payload on a warm hit, 202 with
        the job key while the fleet computes, 429 over the in-flight cap,
        400 on a malformed body and 503 while draining.
        """
        with self._lock:
            draining = self._draining
        if draining:
            return 503, {"error": "service is draining"}, {}
        try:
            spec = parse_label_request(body)
        except RequestError as error:
            return 400, {"error": str(error)}, {}
        key = spec.key

        with self._lock:
            self._counters["submitted"] += 1

        # The store probe comes before the coalesce check: once a result
        # has landed, a repeat must be a warm hit even if the watcher has
        # not ticked the pending job to done yet.
        history = self.store.get(spec)
        if history is not None:
            self._finish(key, "done")
            with self._lock:
                self._counters["warm_hits"] += 1
            return 200, label_payload(spec, history), {}

        with self._lock:
            job = self._jobs.get(key)
            if job is not None and job.status == "pending":
                self._counters["coalesced"] += 1
                return 202, {"key": key, "status": "pending", "coalesced": True}, {}

        if self._index_knows(key):
            # The run-history index has this key even though the blob read
            # missed (it may still be landing): register the job and let the
            # watcher pick the result up — never re-execute an indexed key.
            with self._lock:
                self._counters["index_hits"] += 1
                self._jobs[key] = _Job(spec, admitted=False, enqueued=False)
            return 202, {"key": key, "status": "pending", "indexed": True}, {}

        if not self.admission.try_acquire():
            retry_after = self.admission.retry_after
            payload = {
                "error": "label queue at capacity",
                "retry_after": retry_after,
            }
            return 429, payload, {"Retry-After": f"{retry_after:g}"}

        written = self.broker.enqueue(spec)
        with self._lock:
            if written:
                self._counters["enqueued"] += 1
            self._jobs[key] = _Job(spec, admitted=True, enqueued=True)
        return 202, {"key": key, "status": "pending"}, {}

    def status(self, key: str) -> tuple[int, dict, dict]:
        """Handle ``GET /label/<key>``: poll one job (or probe the store).

        200 with the label payload when done, 202 while pending, 500 with
        the worker's failure log when failed, 404 for unknown keys.
        """
        with self._lock:
            job = self._jobs.get(key)
        if job is None:
            history = self.store.get(key)
            if history is None:
                return 404, {"key": key, "error": "unknown label key"}, {}
            return 200, self._payload_for_key(key, history), {}
        if job.status == "failed":
            return 500, {"key": key, "status": "failed", "error": job.error}, {}
        history = self.store.get(job.spec)
        if history is None:
            return 202, {"key": key, "status": "pending"}, {}
        return 200, label_payload(job.spec, history), {}

    # -- sessions ----------------------------------------------------------

    def create_session(self, body: dict) -> tuple[int, dict, dict]:
        """Handle ``POST /sessions``: open an interactive session (201)."""
        with self._lock:
            draining = self._draining
        if draining:
            return 503, {"error": "service is draining"}, {}
        if not isinstance(body, dict):
            return 400, {"error": "request body must be a JSON object"}, {}
        dataset = body.get("dataset")
        if not dataset or not isinstance(dataset, str):
            return 400, {"error": "'dataset' must be a non-empty dataset name"}, {}
        unknown = set(body) - {
            "dataset", "seed", "scale", "config_overrides", "end_model_C",
        }
        if unknown:
            return 400, {"error": f"unknown session field(s): {sorted(unknown)}"}, {}
        config_overrides = body.get("config_overrides")
        if config_overrides is not None and not isinstance(config_overrides, dict):
            return 400, {"error": "'config_overrides' must be an object when given"}, {}
        try:
            info = self.sessions.create(
                dataset,
                seed=int(body.get("seed", 0)),
                scale=float(body.get("scale", 1.0)),
                config_overrides=config_overrides,
                end_model_C=float(body.get("end_model_C", 1.0)),
            )
        except (KeyError, TypeError, ValueError) as error:
            return 400, {"error": str(error)}, {}
        return 201, info, {}

    def session_add_lf(self, session_id: str, body: dict) -> tuple[int, dict, dict]:
        """Handle ``POST /sessions/<id>/lfs``: stream one LF in, refit."""
        return self._with_session(
            session_id, lambda session: session.add_lf(body)
        )

    def session_labels(self, session_id: str) -> tuple[int, dict, dict]:
        """Handle ``GET /sessions/<id>/labels``: the session's current product."""
        return self._with_session(session_id, lambda session: session.label_payload())

    def session_evict(self, session_id: str) -> tuple[int, dict, dict]:
        """Handle ``POST /sessions/<id>/evict``: force-suspend to disk."""
        return self._session_call(lambda: self.sessions.evict(session_id))

    def session_delete(self, session_id: str) -> tuple[int, dict, dict]:
        """Handle ``DELETE /sessions/<id>``: close and forget the session."""
        return self._session_call(lambda: self.sessions.delete(session_id))

    def list_sessions(self) -> tuple[int, dict, dict]:
        """Handle ``GET /sessions``: id/dataset/residency of every session."""
        return 200, {"sessions": self.sessions.list()}, {}

    # -- introspection and lifecycle ---------------------------------------

    def healthz(self) -> tuple[int, dict, dict]:
        """Handle ``GET /healthz``: liveness plus the draining flag."""
        with self._lock:
            draining = self._draining
        status = "draining" if draining else "ok"
        return (503 if draining else 200), {"status": status}, {}

    def stats(self) -> tuple[int, dict, dict]:
        """Handle ``GET /stats``: every counter the tests assert on."""
        with self._lock:
            counters = dict(self._counters)
            draining = self._draining
            jobs = {"pending": 0, "done": 0, "failed": 0}
            for job in self._jobs.values():
                jobs[job.status] += 1
        payload = {
            "requests": counters,
            "jobs": jobs,
            "admission": self.admission.snapshot(),
            "sessions": self.sessions.stats(),
            "broker": self.broker.counts(),
            "results_stored": len(self.store),
            "draining": draining,
        }
        return 200, payload, {}

    def drain(self, grace: float = 30.0) -> dict:
        """Graceful shutdown: refuse new work, let pending jobs finish.

        Stops admitting (`submit`/`create_session` answer 503), waits up to
        *grace* seconds for pending jobs to reach a terminal state, stops
        the watcher and suspends every live session to disk — so a restart
        resumes sessions instead of losing them.  Idempotent.
        """
        with self._lock:
            self._draining = True
        deadline = threading.Event()
        waited = 0.0
        while waited < grace:
            self._watch_once()
            with self._lock:
                if not any(job.status == "pending" for job in self._jobs.values()):
                    break
            deadline.wait(self.poll_interval)
            waited += self.poll_interval
        self._stop.set()
        self._watcher.join(timeout=5.0)
        suspended = self.sessions.suspend_all()
        with self._lock:
            pending = sum(1 for job in self._jobs.values() if job.status == "pending")
        return {"drained": pending == 0, "pending": pending, "suspended": suspended}

    def close(self) -> None:
        """Stop the watcher without draining (test teardown)."""
        with self._lock:
            self._draining = True
        self._stop.set()
        self._watcher.join(timeout=5.0)

    # -- internals ---------------------------------------------------------

    def _with_session(self, session_id: str, fn) -> tuple[int, dict, dict]:
        """Run *fn* with the exclusively-acquired session, mapped to HTTP."""

        def call():
            with self.sessions.acquire(session_id) as session:
                return fn(session)

        return self._session_call(call)

    def _session_call(self, call) -> tuple[int, dict, dict]:
        """Map session-layer exceptions to their HTTP renderings."""
        try:
            return 200, call(), {}
        except UnknownSessionError as error:
            return 404, {"error": f"unknown session: {error.args[0]}"}, {}
        except SessionBusyError as error:
            retry_after = self.admission.retry_after
            payload = {
                "error": f"session busy: {error.args[0]}",
                "retry_after": retry_after,
            }
            return 429, payload, {"Retry-After": f"{retry_after:g}"}
        except RequestError as error:
            return 400, {"error": str(error)}, {}
        except (TypeError, ValueError) as error:
            return 400, {"error": str(error)}, {}

    def _index_knows(self, key: str) -> bool:
        """Whether the result store's run-history index has this key."""
        db = getattr(self.store, "db", None)
        if db is None:
            return False
        return bool(db.query(where=f"key = '{key}'", limit=1))

    def _payload_for_key(self, key: str, history) -> dict:
        """A label payload for a raw key (store probe; no spec in hand).

        Field-identical to :func:`label_payload` because every spec field
        the payload carries is also materialised on the stored history.
        """
        return {
            "key": key,
            "framework": history.framework,
            "dataset": history.dataset,
            "seed": history.seed,
            "status": "done",
            "n_iterations": history.n_iterations,
            "evaluation_points": [
                [iteration, accuracy]
                for iteration, accuracy in history.evaluation_points()
            ],
            "average_test_accuracy": history.average_test_accuracy(),
            "final_test_accuracy": history.final_test_accuracy(),
            "artifacts": history.artifacts,
        }

    def _watch_loop(self) -> None:
        """Watcher thread body: tick until stopped."""
        while not self._stop.wait(self.poll_interval):
            try:
                self._watch_once()
            except Exception:  # noqa: BLE001 - the watcher must survive ticks
                # A transient backend error (e.g. a locked SQLite file)
                # must not kill job completion; the next tick retries.
                continue

    def _watch_once(self) -> None:
        """One watcher tick: complete, police leases, surface failures, heal."""
        with self._lock:
            pending = {
                key: job for key, job in self._jobs.items() if job.status == "pending"
            }
        if not pending:
            return

        present = self.store.keys_present(pending)
        for key in present:
            self._finish(key, "done")
        remaining = [key for key in pending if key not in present]
        if not remaining:
            return

        # Re-offer tasks whose worker died mid-lease, then surface failures
        # *before* any re-enqueue: enqueue clears a task's failure log when
        # it actually rewrites, so checking failures first prevents an
        # infinite execute/fail/requeue loop.
        self.broker.release_expired(keys=remaining)
        for key in remaining:
            failure = self.broker.failure_for(key)
            if failure is not None:
                self._finish(key, "failed", error=failure)

        with self._lock:
            self._tick += 1
            if self._tick % REQUEUE_EVERY_TICKS != 0:
                return
            lost = [
                job.spec
                for key, job in self._jobs.items()
                if job.status == "pending" and job.enqueued
            ]
        for spec in lost:
            # Idempotent: a no-op while the task is queued or leased; an
            # actual rewrite means the task vanished (e.g. a spool wiped
            # mid-run) and this is the self-heal.
            if self.broker.enqueue(spec):
                with self._lock:
                    self._counters["requeues"] += 1

    def _finish(self, key: str, status: str, error: dict | None = None) -> None:
        """Move one job to a terminal state exactly once."""
        with self._lock:
            job = self._jobs.get(key)
            if job is None or job.status != "pending":
                return
            job.status = status
            job.error = error
            self._counters["completed" if status == "done" else "failed"] += 1
            admitted, job.admitted = job.admitted, False
        if admitted:
            self.admission.release()
