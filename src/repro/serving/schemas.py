"""JSON wire schemas: label requests in, canonical label payloads out.

A label request names a dataset, an LF list (:mod:`repro.labeling.wire`
dicts) and a few protocol knobs; :func:`parse_label_request` canonicalises
it into an ordinary content-hashed :class:`~repro.runner.spec.TrialSpec`
for the ``lfset`` replay pipeline.  Everything the worker fleet needs is in
the spec, and everything the client gets back is derived from the stored
:class:`~repro.core.results.RunHistory` by :func:`label_payload` — so a
service response is byte-identical to what a direct engine run of the same
spec would produce (:func:`canonical_json` pins the encoding).
"""

from __future__ import annotations

import json

from repro.core.results import RunHistory
from repro.experiments.protocol import EvaluationProtocol
from repro.labeling.wire import WireFormatError, canonical_wire_lfs
from repro.runner.spec import TrialSpec


class RequestError(ValueError):
    """A request body the service must reject (rendered as HTTP 400)."""


def parse_label_request(body: dict) -> TrialSpec:
    """Canonicalise a label-request body into a content-hashed trial spec.

    Required fields: ``dataset`` (registry name) and ``lfs`` (non-empty
    list of wire-schema LF dicts).  Optional: ``seed`` (default 0),
    ``scale`` (dataset scale, default 1.0), ``eval_every`` (default: one
    evaluation at the end), ``end_model_C`` (default 1.0) and
    ``config_overrides`` (plain-JSON ActiveDP config fields).  Equivalent
    requests normalise to identical specs and therefore share one content
    key — the dedup/cache unit of the whole serving path.

    Raises :class:`RequestError` on anything malformed; the trial itself is
    *not* validated against the dataset registry here (an unknown dataset
    fails on the worker and surfaces as a job failure).
    """
    if not isinstance(body, dict):
        raise RequestError(f"request body must be a JSON object, got {type(body).__name__}")
    dataset = body.get("dataset")
    if not dataset or not isinstance(dataset, str):
        raise RequestError("'dataset' must be a non-empty dataset name")
    lfs = body.get("lfs")
    if not isinstance(lfs, list) or not lfs:
        raise RequestError("'lfs' must be a non-empty list of LF objects")
    try:
        canonical_lfs = canonical_wire_lfs(lfs)
    except WireFormatError as error:
        raise RequestError(str(error)) from error
    try:
        seed = int(body.get("seed", 0))
        scale = float(body.get("scale", 1.0))
        eval_every = int(body.get("eval_every", len(canonical_lfs)))
        end_model_C = float(body.get("end_model_C", 1.0))
    except (TypeError, ValueError) as error:
        raise RequestError(f"invalid numeric field: {error}") from error
    config_overrides = body.get("config_overrides")
    if config_overrides is not None and not isinstance(config_overrides, dict):
        raise RequestError("'config_overrides' must be an object when given")
    known = {
        "dataset", "lfs", "seed", "scale", "eval_every", "end_model_C",
        "config_overrides",
    }
    unknown = set(body) - known
    if unknown:
        raise RequestError(f"unknown request field(s): {sorted(unknown)}")
    try:
        protocol = EvaluationProtocol(
            n_iterations=len(canonical_lfs),
            eval_every=max(1, min(eval_every, len(canonical_lfs))),
            n_seeds=1,
            dataset_scale=scale,
            end_model_C=end_model_C,
        )
        pipeline_kwargs = {"lfs": canonical_lfs, "end_model_C": end_model_C}
        if config_overrides:
            pipeline_kwargs["config_overrides"] = config_overrides
        return TrialSpec(
            framework="lfset",
            dataset=dataset,
            seed=seed,
            protocol=protocol,
            pipeline_kwargs=pipeline_kwargs,
        )
    except ValueError as error:
        raise RequestError(str(error)) from error


def label_payload(spec: TrialSpec, history: RunHistory) -> dict:
    """The canonical response payload for a completed label request.

    Deterministically derived from the spec and its stored history — the
    serving layer and a direct :func:`~repro.runner.executor.run_trial`
    produce identical payloads for identical specs, which the end-to-end
    suite pins byte-for-byte via :func:`canonical_json`.
    """
    return {
        "key": spec.key,
        "framework": spec.framework,
        "dataset": spec.dataset,
        "seed": spec.seed,
        "status": "done",
        "n_iterations": history.n_iterations,
        "evaluation_points": [
            [iteration, accuracy] for iteration, accuracy in history.evaluation_points()
        ],
        "average_test_accuracy": history.average_test_accuracy(),
        "final_test_accuracy": history.final_test_accuracy(),
        "artifacts": history.artifacts,
    }


def canonical_json(payload) -> bytes:
    """The service's one JSON encoding: sorted keys, compact separators.

    Responses rendered through this are stable across processes and
    platforms, so byte-identity assertions (cold vs warm, served vs direct
    engine run) are meaningful.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
