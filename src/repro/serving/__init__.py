"""The always-on labeling service: HTTP serving over the worker fleet.

The batch engine answers "run this grid"; this package answers "label this
dataset with these LFs, now" — as a long-running service:

* :mod:`~repro.serving.schemas` — the JSON wire contract: label requests
  content-keyed into ordinary :class:`~repro.runner.spec.TrialSpec`\\ s and
  trial histories rendered into canonical response payloads;
* :mod:`~repro.serving.admission` — request admission: the in-flight cap
  behind 429 + ``Retry-After`` responses;
* :mod:`~repro.serving.sessions` — interactive sessions holding a live
  :class:`~repro.core.state.TrainingState` so users stream LFs one at a
  time, with LRU eviction of idle sessions to disk (``snapshot()`` /
  ``restore()`` give suspend-resume);
* :mod:`~repro.serving.service` — the HTTP-independent core: warm requests
  short-circuit through the :class:`~repro.runner.results.ResultStore`,
  cold requests are enqueued through the
  :class:`~repro.runner.brokers.Broker` to the worker fleet, and a watcher
  thread completes jobs as results land;
* :mod:`~repro.serving.server` — the stdlib HTTP layer
  (``python -m repro.serving.server --spool DIR --cache-dir DIR``) with
  ``/healthz`` + ``/stats`` and graceful drain on SIGINT.

See ``docs/serving.md`` for the endpoint table and the session lifecycle.
"""

from repro.serving.admission import AdmissionController
from repro.serving.schemas import (
    RequestError,
    canonical_json,
    label_payload,
    parse_label_request,
)
from repro.serving.service import LabelingService
from repro.serving.sessions import (
    LabelingSession,
    SessionBusyError,
    SessionManager,
    UnknownSessionError,
)

__all__ = [
    "AdmissionController",
    "LabelingService",
    "LabelingSession",
    "RequestError",
    "SessionBusyError",
    "SessionManager",
    "UnknownSessionError",
    "canonical_json",
    "label_payload",
    "parse_label_request",
]
