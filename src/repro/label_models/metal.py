"""MeTaL-style label model: accuracy/propensity parameterisation fitted by EM.

The paper uses MeTaL [Ratner et al. 2019] as its label model.  MeTaL
parameterises every LF by class-conditional accuracy parameters under a
conditional-independence assumption and recovers them from the observed
label-matrix statistics (via a matrix-completion view of the inverse
covariance), with the class balance supplied as a prior.  This reproduction
keeps the same model family with an explicit, tied parameterisation per LF
*j* and class *y*:

    P(W_j fires        | Y = y) = propensity_j[y]
    P(W_j = y  | fires, Y = y)  = accuracy_j
    P(W_j = y' | fires, Y = y)  = (1 - accuracy_j) / (C - 1),  y' != y

and fits ``accuracy_j`` (clamped to the better-than-random range) and the
class-conditional propensities by expectation-maximisation with the class
balance held fixed.  Two properties matter for faithfulness to the paper's
pipeline:

* the per-LF **accuracy** is a single scalar the aggregation weighs votes by,
  exactly the quantity MeTaL estimates and the paper reasons about; and
* the **class-conditional propensity** captures that unipolar LFs (keyword
  LFs that only ever vote one class) carry signal in *whether they fire*,
  which keeps the estimator identifiable where a fired-votes-only likelihood
  would collapse.

Compared with :class:`~repro.label_models.generative.GenerativeLabelModel`
(a free Dawid-Skene CPT per LF), this model is more constrained — one
accuracy scalar instead of a full confusion row — which is the practical
difference between MeTaL-style and Snorkel-v0.9-style aggregation.
"""

from __future__ import annotations

import numpy as np

from repro.label_models.base import BaseLabelModel, LabelModelWarmStart
from repro.labeling.lf import ABSTAIN
from repro.numerics import RelativeLossStop, get_backend
from repro.numerics.em import (
    column_bucket,
    metal_masks,
    metal_posterior,
    metal_step_fn,
    pad_columns,
)
from repro.utils.rng import RandomState, ensure_rng


class MeTaLLabelModel(BaseLabelModel):
    """Accuracy-parameterised label model fitted by EM.

    Parameters
    ----------
    n_classes:
        Number of classes.
    max_iter:
        Maximum EM iterations.
    tol:
        Convergence threshold on the mean absolute change in responsibilities.
    smoothing:
        Laplace pseudo-count used in the M-step ratios.
    prior_accuracy:
        Initial accuracy for every LF (the data-programming better-than-random
        prior).
    accuracy_bounds:
        Clamp on the estimated accuracies; the lower bound above ``1/C``
        keeps every vote weakly informative in its stated direction.
    class_balance:
        Fixed class prior; ``None`` means uniform (MeTaL's default when the
        balance is unknown).
    random_state:
        Seed for the initialisation jitter.
    backend:
        Array-backend name for the EM inner loop (``None`` resolves through
        ``REPRO_BACKEND`` to the numpy reference backend; see
        :mod:`repro.numerics`).
    early_stop:
        Replace the absolute responsibility-change criterion with adaptive
        early stopping on the *relative* change of the mean per-instance
        negative log-likelihood.  ``False`` (default) keeps the historical
        semantics exactly.
    early_stop_rtol:
        Relative loss-change threshold of the early-stop rule.
    """

    def __init__(
        self,
        n_classes: int = 2,
        max_iter: int = 100,
        tol: float = 1e-5,
        smoothing: float = 1.0,
        prior_accuracy: float = 0.7,
        accuracy_bounds: tuple[float, float] = (0.55, 0.98),
        class_balance: np.ndarray | None = None,
        random_state: RandomState = 0,
        backend: str | None = None,
        early_stop: bool = False,
        early_stop_rtol: float = 1e-5,
    ):
        super().__init__(n_classes=n_classes)
        if not 0.5 < prior_accuracy < 1.0:
            raise ValueError("prior_accuracy must be in (0.5, 1.0)")
        low, high = accuracy_bounds
        if not 0.0 < low < high <= 1.0:
            raise ValueError("accuracy_bounds must satisfy 0 < low < high <= 1")
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.prior_accuracy = prior_accuracy
        self.accuracy_bounds = (float(low), float(high))
        self.random_state = random_state
        self.backend = backend
        self.early_stop = early_stop
        self.early_stop_rtol = early_stop_rtol
        if class_balance is not None:
            class_balance = np.asarray(class_balance, dtype=float)
            if class_balance.shape != (n_classes,):
                raise ValueError("class_balance must have shape (n_classes,)")
            if np.any(class_balance <= 0):
                raise ValueError("class_balance entries must be positive")
            class_balance = class_balance / class_balance.sum()
        self.class_balance = class_balance

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        label_matrix: np.ndarray,
        warm_start: LabelModelWarmStart | None = None,
        **kwargs,
    ) -> "MeTaLLabelModel":
        """Estimate per-LF accuracies and class-conditional propensities by EM.

        ``warm_start`` (a previous fit's :meth:`export_warm_start`) seeds the
        accuracies/propensities of every column the payload's map covers and
        the initial responsibilities are the posterior under those carried
        parameters; columns new to this fit keep the cold prior-accuracy /
        marginal-firing initialisation.  An inapplicable payload falls back
        to the cold jittered-majority-vote start.
        """
        matrix = self._validate_matrix(label_matrix)
        n_instances, n_lfs = matrix.shape
        self.n_lfs_ = n_lfs
        self.class_priors_ = (
            self.class_balance
            if self.class_balance is not None
            else np.full(self.n_classes, 1.0 / self.n_classes)
        )
        if n_lfs == 0 or n_instances == 0:
            self.accuracies_ = np.zeros(0)
            self.propensities_ = np.zeros((0, self.n_classes))
            self.n_iter_ = 0
            self.converged_ = True
            self.final_loss_ = None
            self.warm_started_ = False
            return self

        self.accuracies_ = np.full(n_lfs, self.prior_accuracy)
        marginal_fire = np.clip(np.mean(matrix != ABSTAIN, axis=0), 1e-3, 1.0)
        self.propensities_ = np.tile(marginal_fire[:, None], (1, self.n_classes))

        responsibilities = None
        applicable = self._check_warm_start(warm_start, n_lfs)
        if applicable is not None:
            params, column_map = applicable
            carried_acc = np.asarray(params.get("accuracies", np.empty(0)), dtype=float)
            carried_prop = np.asarray(
                params.get("propensities", np.empty((0, 0))), dtype=float
            )
            if (
                carried_acc.ndim == 1
                and carried_prop.shape == (carried_acc.shape[0], self.n_classes)
            ):
                mapped = column_map >= 0
                self.accuracies_[mapped] = carried_acc[column_map[mapped]]
                self.propensities_[mapped] = carried_prop[column_map[mapped]]
                responsibilities = self._posterior(matrix)
        self.warm_started_ = responsibilities is not None
        warm_reference = responsibilities is not None
        if responsibilities is None:
            rng = ensure_rng(self.random_state)
            responsibilities = self._initial_responsibilities(matrix, rng)

        backend = get_backend(self.backend)
        fired, not_fired, vote_masks, vote_index = metal_masks(
            matrix, self.n_classes, ABSTAIN
        )
        never_fired = ~(matrix != ABSTAIN).any(axis=0)
        if backend.jit_enabled:
            # Pad the LF axis to a power-of-two bucket so the jitted step
            # keeps its compiled trace as the refit loop adds columns.
            # Padded columns never fire and never vote: their fired/vote
            # masks are zero, not_fired must be zero too (an all-ones pad
            # would inject phantom propensity mass into the E-step), and
            # never_fired=True pins their accuracy at the prior.
            bucket = column_bucket(n_lfs)
            fired = pad_columns(fired, bucket)
            not_fired = pad_columns(not_fired, bucket)
            vote_masks = pad_columns(vote_masks, bucket)
            vote_index = pad_columns(vote_index, bucket)
            never_fired = np.pad(
                never_fired, (0, bucket - n_lfs), constant_values=True
            )
        step = metal_step_fn(backend, self.n_classes)
        xp = backend.xp
        fired = backend.asarray(fired)
        not_fired = backend.asarray(not_fired)
        vote_masks = backend.asarray(vote_masks)
        vote_index = backend.asarray(vote_index, dtype=int)
        never_fired = backend.asarray(never_fired, dtype=bool)
        responsibilities = backend.asarray(responsibilities)
        log_priors = backend.asarray(np.log(np.clip(self.class_priors_, 1e-12, 1.0)))
        low, high = self.accuracy_bounds

        # A warm initialisation is already a model posterior, so it is a valid
        # convergence reference: a refit of an (almost) converged model can
        # stop after a single EM iteration.  The cold jittered-majority-vote
        # start is not a posterior, hence previous=None there.
        previous = responsibilities if warm_reference else None
        stopper = RelativeLossStop(self.early_stop_rtol) if self.early_stop else None

        accuracies = propensities = None
        self.n_iter_ = 0
        self.converged_ = False
        self.final_loss_ = None
        for iteration in range(1, self.max_iter + 1):
            accuracies, propensities, responsibilities, loss = step(
                fired, not_fired, vote_masks, vote_index, never_fired,
                responsibilities, log_priors, self.smoothing,
                self.prior_accuracy, low, high,
            )
            self.n_iter_ = iteration
            self.final_loss_ = float(loss)
            if stopper is not None:
                if stopper.update(self.final_loss_):
                    self.converged_ = True
                    break
            else:
                if previous is not None:
                    change = float(xp.mean(xp.abs(responsibilities - previous)))
                    if change < self.tol:
                        self.converged_ = True
                        break
                previous = responsibilities
        self.accuracies_ = backend.to_numpy(accuracies)[:n_lfs]
        self.propensities_ = backend.to_numpy(propensities)[:n_lfs]
        return self

    # -------------------------------------------------------------- predict
    def predict_proba(self, label_matrix: np.ndarray) -> np.ndarray:
        """Posterior class probabilities under the fitted parameters."""
        if not hasattr(self, "accuracies_"):
            raise RuntimeError("MeTaLLabelModel is not fitted yet; call fit() first")
        matrix = self._validate_matrix(label_matrix)
        if matrix.shape[1] != self.n_lfs_:
            raise ValueError(
                f"label_matrix has {matrix.shape[1]} LF columns, model was "
                f"fitted with {self.n_lfs_}"
            )
        if self.n_lfs_ == 0:
            return self._prior_proba(matrix.shape[0])
        proba = self._posterior(matrix)
        # No LF fired: the posterior is the class prior, not blanket 1/C —
        # a configured non-uniform class_balance must survive the fallback.
        uncovered = ~np.any(matrix != ABSTAIN, axis=1)
        proba[uncovered] = self.class_priors_
        return proba

    # ------------------------------------------------------------- internals
    def _initial_responsibilities(
        self, matrix: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        counts = np.zeros((matrix.shape[0], self.n_classes))
        for cls in range(self.n_classes):
            counts[:, cls] = np.sum(matrix == cls, axis=1)
        counts += 0.5 + 0.05 * rng.random(counts.shape)
        return counts / counts.sum(axis=1, keepdims=True)

    def _posterior(self, matrix: np.ndarray) -> np.ndarray:
        """E-step under the fitted parameters (shared with the fit loop's step)."""
        return metal_posterior(
            matrix,
            ABSTAIN,
            self.accuracies_,
            self.propensities_,
            self.class_priors_,
            self.n_classes,
        )

    def _m_step(self, matrix: np.ndarray, responsibilities: np.ndarray) -> None:
        """M-step: re-estimate accuracies (clamped) and class-conditional propensities.

        Vectorised over LFs: the fired-vote masses are one ``(k, n) @ (n, C)``
        matmul and the agreement weights one ``take_along_axis`` gather.
        """
        low, high = self.accuracy_bounds
        fired = matrix != ABSTAIN
        fired_f = fired.astype(float)
        class_mass = responsibilities.sum(axis=0) + 1e-12
        fired_mass = fired_f.T @ responsibilities
        self.propensities_ = np.clip(
            (fired_mass + self.smoothing * 0.1)
            / (class_mass[None, :] + self.smoothing * 0.2),
            1e-4,
            1.0 - 1e-4,
        )
        # responsibilities[i, votes[i, j]] for every (instance, LF) pair; the
        # clip only feeds abstains a valid index, their weight is masked out.
        agree_weight = np.take_along_axis(
            responsibilities, np.clip(matrix, 0, None), axis=1
        )
        expected_correct = (fired_f * agree_weight).sum(axis=0)
        total = fired_mass.sum(axis=1)
        accuracy = np.clip(
            (expected_correct + self.smoothing * self.prior_accuracy)
            / (total + self.smoothing),
            low,
            high,
        )
        # LFs that never fire carry no evidence; keep the prior accuracy.
        accuracy[~fired.any(axis=0)] = self.prior_accuracy
        self.accuracies_ = accuracy

    def _warm_start_params(self) -> dict | None:
        if not hasattr(self, "accuracies_") or self.accuracies_.shape[0] == 0:
            return None
        return {
            "accuracies": self.accuracies_.copy(),
            "propensities": self.propensities_.copy(),
        }
