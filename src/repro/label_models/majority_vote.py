"""Majority-vote label model.

The simplest aggregator: each instance's probabilistic label is the
(normalised, Laplace-smoothed) histogram of the non-abstaining LF votes.
Serves as a baseline label model and as a fallback when too few LFs exist to
fit a parametric model.
"""

from __future__ import annotations

import numpy as np

from repro.label_models.base import BaseLabelModel
from repro.labeling.lf import ABSTAIN


class MajorityVoteLabelModel(BaseLabelModel):
    """Probabilistic majority vote over non-abstaining LFs.

    Parameters
    ----------
    n_classes:
        Number of classes in the task.
    smoothing:
        Pseudo-count added to every class before normalising, so ties and
        single-vote instances keep calibrated (non-degenerate) probabilities.
    """

    def __init__(self, n_classes: int = 2, smoothing: float = 0.5):
        super().__init__(n_classes=n_classes)
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.smoothing = smoothing

    def fit(self, label_matrix: np.ndarray, **kwargs) -> "MajorityVoteLabelModel":
        """Majority vote has no parameters; fitting only validates the matrix."""
        self._validate_matrix(label_matrix)
        return self

    def predict_proba(self, label_matrix: np.ndarray) -> np.ndarray:
        """Return the smoothed vote histogram for every instance."""
        matrix = self._validate_matrix(label_matrix)
        n_instances = matrix.shape[0]
        proba = np.full((n_instances, self.n_classes), self.smoothing)
        for cls in range(self.n_classes):
            proba[:, cls] += np.sum(matrix == cls, axis=1) if matrix.shape[1] else 0.0
        proba /= proba.sum(axis=1, keepdims=True)
        # Fully-abstained rows get the uniform distribution explicitly.
        if matrix.shape[1]:
            uncovered = ~np.any(matrix != ABSTAIN, axis=1)
        else:
            uncovered = np.ones(n_instances, dtype=bool)
        proba[uncovered] = 1.0 / self.n_classes
        return proba
