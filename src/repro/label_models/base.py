"""Common interface for label models, including the warm-start refit contract.

Interactive frameworks refit their label model every time the selected LF
subset changes.  Because the label matrix only ever gains columns, the
previous fit is an excellent EM initialiser for the next one; the
:class:`LabelModelWarmStart` payload carries a fitted model's parameters
(plus a column map aligning them with the new matrix) into the next
``fit(matrix, warm_start=...)`` call.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.labeling.lf import ABSTAIN


@dataclass(frozen=True)
class LabelModelWarmStart:
    """Fitted parameters exported from one fit to seed the next.

    Attributes
    ----------
    model:
        Class name of the exporting model.  A consuming model silently
        ignores payloads from a different model family (falling back to a
        cold start) so callers can swap label models mid-run.
    n_classes:
        Class count the parameters were fitted for.
    params:
        Model-specific parameter arrays (CPTs, accuracies, propensities...).
    column_map:
        For each column of the *new* label matrix, the column index in the
        exporting fit it corresponds to, or ``-1`` for a brand-new LF.
        ``None`` means the identity map (same columns, same order).
    """

    model: str
    n_classes: int
    params: dict
    column_map: np.ndarray | None = None


class BaseLabelModel(abc.ABC):
    """Aggregates a label matrix into probabilistic labels.

    All label models share the convention that an instance on which *every*
    LF abstains receives the class prior (uniform unless a ``class_balance``
    was configured); the caller (ConFusion, or the coverage mask) decides
    whether such instances are used at all.
    """

    def __init__(self, n_classes: int = 2):
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self.n_classes = n_classes

    @abc.abstractmethod
    def fit(
        self,
        label_matrix: np.ndarray,
        warm_start: LabelModelWarmStart | None = None,
        **kwargs,
    ) -> "BaseLabelModel":
        """Estimate model parameters from the label matrix.

        ``warm_start`` optionally seeds the optimisation with a previous
        fit's exported parameters (:meth:`export_warm_start`); models without
        iteratively fitted parameters may ignore it.  An inapplicable payload
        (different model family or class count) must degrade to a cold start,
        never raise.
        """

    def export_warm_start(
        self, column_map: np.ndarray | list[int] | None = None
    ) -> LabelModelWarmStart | None:
        """Export this fit's parameters as a warm start for a future fit.

        ``column_map`` aligns the future matrix's columns with this fit's
        (``-1`` marks columns this fit has no parameters for).  Returns
        ``None`` for models that have nothing to warm-start from.
        """
        params = self._warm_start_params()
        if params is None:
            return None
        if column_map is not None:
            column_map = np.asarray(column_map, dtype=int)
        return LabelModelWarmStart(
            model=type(self).__name__,
            n_classes=self.n_classes,
            params=params,
            column_map=column_map,
        )

    def _warm_start_params(self) -> dict | None:
        """Model-specific parameter export; ``None`` when unfitted/stateless."""
        return None

    def _check_warm_start(
        self, warm_start: LabelModelWarmStart | None, n_lfs: int
    ) -> tuple[dict, np.ndarray] | None:
        """Validate a warm-start payload against this model and matrix width.

        Returns ``(params, column_map)`` with the column map normalised to an
        integer array of length *n_lfs*, or ``None`` when the payload is
        missing or inapplicable (wrong model family, wrong class count, map
        of the wrong length, or out-of-range source columns).
        """
        if warm_start is None:
            return None
        if (
            warm_start.model != type(self).__name__
            or warm_start.n_classes != self.n_classes
            or not warm_start.params
        ):
            return None
        column_map = warm_start.column_map
        if column_map is None:
            column_map = np.arange(n_lfs)
        else:
            column_map = np.asarray(column_map, dtype=int)
        if column_map.shape != (n_lfs,):
            return None
        n_source = self._warm_start_source_width(warm_start.params)
        if n_source is None or np.any(column_map >= n_source):
            return None
        if not np.any(column_map >= 0):
            return None
        return warm_start.params, column_map

    @staticmethod
    def _warm_start_source_width(params: dict) -> int | None:
        """Number of LF columns the exported parameters describe."""
        for value in params.values():
            value = np.asarray(value)
            if value.ndim >= 1:
                return value.shape[0]
        return None

    @abc.abstractmethod
    def predict_proba(self, label_matrix: np.ndarray) -> np.ndarray:
        """Return ``(n_instances, n_classes)`` probabilistic labels."""

    def predict(self, label_matrix: np.ndarray, abstain_uncovered: bool = False) -> np.ndarray:
        """Return hard labels; optionally abstain on fully-uncovered rows."""
        label_matrix = self._validate_matrix(label_matrix)
        proba = self.predict_proba(label_matrix)
        labels = np.argmax(proba, axis=1)
        if abstain_uncovered:
            uncovered = ~np.any(label_matrix != ABSTAIN, axis=1) if label_matrix.shape[1] else np.ones(len(labels), dtype=bool)
            labels = labels.copy()
            labels[uncovered] = ABSTAIN
        return labels

    # -------------------------------------------------------------- helpers
    def _validate_matrix(self, label_matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(label_matrix, dtype=int)
        if matrix.ndim != 2:
            raise ValueError("label_matrix must be 2-dimensional")
        valid = (matrix == ABSTAIN) | ((matrix >= 0) & (matrix < self.n_classes))
        if not np.all(valid):
            raise ValueError(
                "label_matrix contains labels outside "
                f"[0, {self.n_classes}) and != ABSTAIN"
            )
        return matrix

    def _uniform(self, n_instances: int) -> np.ndarray:
        return np.full((n_instances, self.n_classes), 1.0 / self.n_classes)

    def _prior_proba(self, n_instances: int) -> np.ndarray:
        """Rows of the fitted class prior — the fallback for uncovered instances.

        Uniform when no ``class_balance`` was configured, so the historical
        ``1/C`` fill is unchanged in the default configuration.
        """
        priors = getattr(self, "class_priors_", None)
        if priors is None:
            return self._uniform(n_instances)
        return np.tile(np.asarray(priors, dtype=float), (n_instances, 1))
