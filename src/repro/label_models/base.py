"""Common interface for label models."""

from __future__ import annotations

import abc

import numpy as np

from repro.labeling.lf import ABSTAIN


class BaseLabelModel(abc.ABC):
    """Aggregates a label matrix into probabilistic labels.

    All label models share the convention that an instance on which *every*
    LF abstains receives the uniform distribution; the caller (ConFusion, or
    the coverage mask) decides whether such instances are used at all.
    """

    def __init__(self, n_classes: int = 2):
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self.n_classes = n_classes

    @abc.abstractmethod
    def fit(self, label_matrix: np.ndarray, **kwargs) -> "BaseLabelModel":
        """Estimate model parameters from the label matrix."""

    @abc.abstractmethod
    def predict_proba(self, label_matrix: np.ndarray) -> np.ndarray:
        """Return ``(n_instances, n_classes)`` probabilistic labels."""

    def predict(self, label_matrix: np.ndarray, abstain_uncovered: bool = False) -> np.ndarray:
        """Return hard labels; optionally abstain on fully-uncovered rows."""
        label_matrix = self._validate_matrix(label_matrix)
        proba = self.predict_proba(label_matrix)
        labels = np.argmax(proba, axis=1)
        if abstain_uncovered:
            uncovered = ~np.any(label_matrix != ABSTAIN, axis=1) if label_matrix.shape[1] else np.ones(len(labels), dtype=bool)
            labels = labels.copy()
            labels[uncovered] = ABSTAIN
        return labels

    # -------------------------------------------------------------- helpers
    def _validate_matrix(self, label_matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(label_matrix, dtype=int)
        if matrix.ndim != 2:
            raise ValueError("label_matrix must be 2-dimensional")
        valid = (matrix == ABSTAIN) | ((matrix >= 0) & (matrix < self.n_classes))
        if not np.all(valid):
            raise ValueError(
                "label_matrix contains labels outside "
                f"[0, {self.n_classes}) and != ABSTAIN"
            )
        return matrix

    def _uniform(self, n_instances: int) -> np.ndarray:
        return np.full((n_instances, self.n_classes), 1.0 / self.n_classes)
