"""Generative label model: Dawid-Skene-style EM with an abstain outcome.

Each LF *j* is modelled by a full conditional probability table over its
possible outputs (abstain or one of the C classes) given the true label:

    theta_j[y, v] = P(W_ij = v | Y_i = y),   v in {abstain, 0, ..., C-1}

and the class balance P(Y) is held fixed (uniform by default, or provided by
the caller).  EM alternates between computing posterior class
responsibilities for every instance and re-estimating the CPTs from those
responsibilities with Laplace smoothing.

Modelling the *abstain* outcome explicitly matters for data programming with
unipolar LFs (e.g. keyword LFs that only ever vote for one class): whether
such an LF fires at all is informative about the label, and ignoring
abstentions makes the likelihood degenerate (a "every instance belongs to one
class and the other class's LFs are liars" solution explains fired votes
better than the truth).  Holding the class balance fixed removes the
remaining label-switching symmetry.
"""

from __future__ import annotations

import numpy as np

from repro.label_models.base import BaseLabelModel, LabelModelWarmStart
from repro.labeling.lf import ABSTAIN
from repro.numerics import RelativeLossStop, get_backend
from repro.numerics.em import (
    column_bucket,
    generative_masks,
    generative_posterior,
    generative_step_fn,
    pad_columns,
)
from repro.utils.rng import RandomState, ensure_rng


class GenerativeLabelModel(BaseLabelModel):
    """EM-trained Dawid-Skene label model with abstain-aware CPTs.

    Parameters
    ----------
    n_classes:
        Number of classes.
    max_iter:
        Maximum EM iterations.
    tol:
        Convergence threshold on the mean absolute change in responsibilities
        (the historical fixed-budget criterion; only consulted when
        ``early_stop`` is off).
    smoothing:
        Laplace pseudo-count used in every M-step ratio.
    class_balance:
        Fixed class prior; ``None`` means uniform.
    random_state:
        Seed for the small responsibility jitter used at initialisation.
    backend:
        Array-backend name for the EM inner loop (``None`` resolves through
        ``REPRO_BACKEND`` to the numpy reference backend; see
        :mod:`repro.numerics`).
    early_stop:
        Replace the absolute responsibility-change criterion with adaptive
        early stopping on the *relative* change of the mean per-instance
        negative log-likelihood — a size-independent rule under which
        warm-started refits converge in a couple of iterations.  ``False``
        (default) keeps the historical semantics exactly.
    early_stop_rtol:
        Relative loss-change threshold of the early-stop rule.
    """

    def __init__(
        self,
        n_classes: int = 2,
        max_iter: int = 100,
        tol: float = 1e-5,
        smoothing: float = 1.0,
        class_balance: np.ndarray | None = None,
        random_state: RandomState = 0,
        backend: str | None = None,
        early_stop: bool = False,
        early_stop_rtol: float = 1e-5,
    ):
        super().__init__(n_classes=n_classes)
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.random_state = random_state
        self.backend = backend
        self.early_stop = early_stop
        self.early_stop_rtol = early_stop_rtol
        if class_balance is not None:
            class_balance = np.asarray(class_balance, dtype=float)
            if class_balance.shape != (n_classes,):
                raise ValueError("class_balance must have shape (n_classes,)")
            if np.any(class_balance <= 0):
                raise ValueError("class_balance entries must be positive")
            class_balance = class_balance / class_balance.sum()
        self.class_balance = class_balance

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        label_matrix: np.ndarray,
        warm_start: LabelModelWarmStart | None = None,
        **kwargs,
    ) -> "GenerativeLabelModel":
        """Run EM to estimate the per-LF conditional probability tables.

        ``warm_start`` (a previous fit's :meth:`export_warm_start`) seeds the
        initial responsibilities from the carried CPTs of every column the
        payload's map covers; columns new to this fit receive their CPTs from
        the first M-step under those responsibilities.  An inapplicable
        payload falls back to the cold jittered-majority-vote start.
        """
        matrix = self._validate_matrix(label_matrix)
        n_instances, n_lfs = matrix.shape

        self.class_priors_ = (
            self.class_balance
            if self.class_balance is not None
            else np.full(self.n_classes, 1.0 / self.n_classes)
        )
        if n_lfs == 0 or n_instances == 0:
            self.cpts_ = np.zeros((n_lfs, self.n_classes, self.n_classes + 1))
            self.n_iter_ = 0
            self.converged_ = True
            self.final_loss_ = None
            self.warm_started_ = False
            return self

        # Outcome encoding: column 0 = abstain, column 1+c = vote for class c.
        outcomes = self._encode(matrix)

        responsibilities = None
        applicable = self._check_warm_start(warm_start, n_lfs)
        if applicable is not None:
            params, column_map = applicable
            carried = np.asarray(params.get("cpts", np.empty((0,))), dtype=float)
            if carried.ndim == 3 and carried.shape[1:] == (
                self.n_classes,
                self.n_classes + 1,
            ):
                mapped = column_map >= 0
                responsibilities = self._posterior(
                    outcomes[:, mapped], carried[column_map[mapped]]
                )
        self.warm_started_ = responsibilities is not None
        if responsibilities is None:
            rng = ensure_rng(self.random_state)
            cold_start = self._initial_responsibilities(matrix, rng)
            responsibilities, warm_reference = cold_start, False
        else:
            warm_reference = True

        backend = get_backend(self.backend)
        n_outcomes = self.n_classes + 1
        masks = generative_masks(outcomes, n_outcomes)
        if backend.jit_enabled:
            # Pad the LF axis to a power-of-two bucket so the jitted step
            # keeps its compiled trace as the refit loop adds columns; the
            # padded columns are all-zero in every mask and contribute
            # nothing to either EM step.
            masks = pad_columns(masks, column_bucket(n_lfs))
        step = generative_step_fn(backend, n_outcomes)
        xp = backend.xp
        masks = backend.asarray(masks)
        responsibilities = backend.asarray(responsibilities)
        log_priors = backend.asarray(np.log(np.clip(self.class_priors_, 1e-12, 1.0)))

        # A warm initialisation is already a model posterior, so it is a valid
        # convergence reference: a refit of an (almost) converged model can
        # stop after a single EM iteration.  The cold jittered-majority-vote
        # start is not a posterior, hence previous=None there.
        previous = responsibilities if warm_reference else None
        stopper = RelativeLossStop(self.early_stop_rtol) if self.early_stop else None

        cpts = None
        self.n_iter_ = 0
        self.converged_ = False
        self.final_loss_ = None
        for iteration in range(1, self.max_iter + 1):
            cpts, responsibilities, loss = step(
                masks, responsibilities, log_priors, self.smoothing
            )
            self.n_iter_ = iteration
            self.final_loss_ = float(loss)
            if stopper is not None:
                if stopper.update(self.final_loss_):
                    self.converged_ = True
                    break
            else:
                if previous is not None:
                    change = float(xp.mean(xp.abs(responsibilities - previous)))
                    if change < self.tol:
                        self.converged_ = True
                        break
                previous = responsibilities
        self.cpts_ = backend.to_numpy(cpts)[:n_lfs]
        return self

    # -------------------------------------------------------------- predict
    def predict_proba(self, label_matrix: np.ndarray) -> np.ndarray:
        """Posterior class probabilities under the fitted CPTs."""
        if not hasattr(self, "cpts_"):
            raise RuntimeError("GenerativeLabelModel is not fitted yet; call fit() first")
        matrix = self._validate_matrix(label_matrix)
        if matrix.shape[1] != self.cpts_.shape[0]:
            raise ValueError(
                f"label_matrix has {matrix.shape[1]} LF columns, model was "
                f"fitted with {self.cpts_.shape[0]}"
            )
        if matrix.shape[1] == 0:
            return self._prior_proba(matrix.shape[0])
        proba = self._posterior(self._encode(matrix), self.cpts_)
        # No LF fired: the posterior is the class prior, not blanket 1/C —
        # a configured non-uniform class_balance must survive the fallback.
        uncovered = ~np.any(matrix != ABSTAIN, axis=1)
        proba[uncovered] = self.class_priors_
        return proba

    # -------------------------------------------------- derived diagnostics
    @property
    def accuracies_(self) -> np.ndarray:
        """Per-LF accuracy conditional on firing, derived from the CPTs."""
        if not hasattr(self, "cpts_"):
            raise RuntimeError("GenerativeLabelModel is not fitted yet; call fit() first")
        classes = np.arange(self.n_classes)
        correct = self.cpts_[:, classes, 1 + classes] @ self.class_priors_
        fired = (1.0 - self.cpts_[:, :, 0]) @ self.class_priors_
        return np.where(fired > 0, correct / np.where(fired > 0, fired, 1.0), 0.5)

    @property
    def propensities_(self) -> np.ndarray:
        """Per-LF marginal firing probability, derived from the CPTs."""
        if not hasattr(self, "cpts_"):
            raise RuntimeError("GenerativeLabelModel is not fitted yet; call fit() first")
        fire = 1.0 - self.cpts_[:, :, 0]
        return fire @ self.class_priors_

    # ------------------------------------------------------------- internals
    def _encode(self, matrix: np.ndarray) -> np.ndarray:
        """Map votes to outcome indices: abstain -> 0, class c -> 1 + c."""
        return np.where(matrix == ABSTAIN, 0, matrix + 1)

    def _initial_responsibilities(
        self, matrix: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n_instances = matrix.shape[0]
        counts = np.zeros((n_instances, self.n_classes))
        for cls in range(self.n_classes):
            counts[:, cls] = np.sum(matrix == cls, axis=1)
        counts += 0.5 + 0.05 * rng.random(counts.shape)
        return counts / counts.sum(axis=1, keepdims=True)

    def _m_step(self, outcomes: np.ndarray, responsibilities: np.ndarray) -> np.ndarray:
        """Responsibility-weighted outcome counts, one matmul per outcome.

        The per-LF Python loop is replaced with ``n_classes + 1`` BLAS calls
        of shape ``(n_lfs, n) @ (n, n_classes)`` — one EM iteration is plain
        O(n * k * C) numpy work.
        """
        n_outcomes = self.n_classes + 1
        masks = generative_masks(outcomes, n_outcomes)
        cpts = np.stack(
            [masks[outcome].T @ responsibilities for outcome in range(n_outcomes)],
            axis=2,
        )
        cpts += self.smoothing
        cpts /= cpts.sum(axis=2, keepdims=True)
        return cpts

    def _posterior(self, outcomes: np.ndarray, cpts: np.ndarray) -> np.ndarray:
        """E-step under the given CPTs (shared with the fit loop's step)."""
        return generative_posterior(outcomes, cpts, self.class_priors_)

    def _warm_start_params(self) -> dict | None:
        if not hasattr(self, "cpts_") or self.cpts_.shape[0] == 0:
            return None
        return {"cpts": self.cpts_.copy()}
