"""Label models: aggregate noisy LF outputs into probabilistic labels.

The paper uses MeTaL [Ratner et al. 2019] as the label model; this package
provides an equivalent accuracy-parameterised model plus two simpler
alternatives (majority vote and an EM-trained generative model) so that the
label-model choice can itself be ablated.
"""

from repro.label_models.base import BaseLabelModel, LabelModelWarmStart
from repro.label_models.majority_vote import MajorityVoteLabelModel
from repro.label_models.generative import GenerativeLabelModel
from repro.label_models.metal import MeTaLLabelModel

__all__ = [
    "BaseLabelModel",
    "EM_LABEL_MODELS",
    "LabelModelWarmStart",
    "MajorityVoteLabelModel",
    "GenerativeLabelModel",
    "MeTaLLabelModel",
    "get_label_model",
]

_REGISTRY = {
    "majority_vote": MajorityVoteLabelModel,
    "generative": GenerativeLabelModel,
    "metal": MeTaLLabelModel,
}

#: Registry names of the EM-fitted models — the ones that accept the
#: ``backend`` / ``early_stop`` numeric-core knobs (majority vote has no
#: numeric inner loop to configure).
EM_LABEL_MODELS = frozenset({"generative", "metal"})


def get_label_model(name: str, **kwargs) -> BaseLabelModel:
    """Instantiate a label model by registry name.

    Valid names: ``"majority_vote"``, ``"generative"``, ``"metal"``.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown label model {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
