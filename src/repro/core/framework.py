"""The ActiveDP interactive framework (paper Section 3.1).

Training phase (one :meth:`ActiveDP.step` per iteration):

1. the ADP sampler picks a query instance from the unlabeled pool;
2. the user designs an LF based on the query instance;
3. the LF joins the collected set ``Lambda_t`` and its output on the query
   instance becomes a pseudo-label;
4. LabelPick selects a helpful LF subset ``Lambda*_t``; the label model is
   trained on the corresponding columns of the label matrix;
5. the active-learning model is trained on the pseudo-labelled subset.

Inference phase (:meth:`ActiveDP.aggregate_labels`): ConFusion tunes a
confidence threshold on the validation set and combines the two models'
predictions into training labels with high accuracy and coverage, which are
then used to train the downstream model.

All mutable run state lives in a :class:`~repro.core.state.TrainingState`
(label matrices grown incrementally, model caches guarded by dirty flags),
so a run can be snapshotted/resumed and :meth:`refit` only re-runs the
stages whose inputs actually changed since the previous refit.
"""

from __future__ import annotations

import numpy as np

from repro.active_learning import ADPSampler, BaseSampler, QueryContext, get_sampler
from repro.core.config import ActiveDPConfig
from repro.core.confusion import AggregatedLabels, ConFusion
from repro.core.labelpick import LabelPick, LabelPickResult
from repro.core.pseudo_labels import PseudoLabeledSet
from repro.core.results import IterationRecord
from repro.core.state import TrainingState
from repro.labeling.lf import ABSTAIN, LabelFunction
from repro.label_models import EM_LABEL_MODELS, get_label_model
from repro.models.logistic_regression import LogisticRegression
from repro.models.metrics import accuracy_score
from repro.utils.rng import RandomState, ensure_rng


class ActiveDP:
    """Interactive labelling framework bridging active learning and data programming.

    Parameters
    ----------
    train:
        Unlabeled training pool (its ground-truth labels are read only by the
        simulated user and by diagnostic metrics, never by the framework).
    valid:
        Holdout validation split with labels, used for LabelPick's accuracy
        pruning and ConFusion's threshold tuning.
    config:
        Hyper-parameters; ``None`` uses :class:`ActiveDPConfig` defaults.
    random_state:
        Seed or generator for the sampler's tie-breaking.
    """

    def __init__(
        self,
        train,
        valid,
        config: ActiveDPConfig | None = None,
        random_state: RandomState = None,
    ):
        self.train = train
        self.valid = valid
        self.config = config or ActiveDPConfig()
        self.n_classes = train.n_classes

        self.sampler = self._build_sampler(self.config)
        self.labelpick = LabelPick(
            glasso_alpha=self.config.glasso_alpha,
            min_queries=self.config.min_labelpick_queries,
            accuracy_threshold=self.config.accuracy_threshold,
            backend=self.config.backend,
            early_stop=self.config.adaptive_early_stop,
        )
        self.confusion = ConFusion()

        self.state = TrainingState.initial(train, valid, ensure_rng(random_state))

    # ----------------------------------------------------- state accessors
    @property
    def rng(self) -> np.random.Generator:
        return self.state.rng

    # Thin pass-throughs so existing callers (and tests) keep reading the
    # run state through the framework object.
    @property
    def lfs(self) -> list[LabelFunction]:
        return self.state.lfs

    @property
    def pseudo(self) -> PseudoLabeledSet:
        return self.state.pseudo

    @property
    def queried(self) -> list[int]:
        return self.state.queried

    @queried.setter
    def queried(self, value: list[int]) -> None:
        self.state.queried = list(value)

    @property
    def selection(self) -> LabelPickResult:
        return self.state.selection

    @selection.setter
    def selection(self, value: LabelPickResult) -> None:
        self.state.selection = value

    @property
    def label_model(self):
        return self.state.label_model

    @property
    def al_model(self):
        return self.state.al_model

    @property
    def threshold(self) -> float | None:
        return self.state.threshold

    @property
    def iteration(self) -> int:
        return self.state.iteration

    @iteration.setter
    def iteration(self, value: int) -> None:
        self.state.iteration = int(value)

    @property
    def _train_matrix(self) -> np.ndarray:
        return self.state.train_matrix.matrix

    @property
    def _valid_matrix(self) -> np.ndarray:
        return self.state.valid_matrix.matrix

    @property
    def _lm_proba_train(self) -> np.ndarray | None:
        return self.state.lm_proba_train

    @property
    def _lm_proba_valid(self) -> np.ndarray | None:
        return self.state.lm_proba_valid

    @property
    def _al_proba_train(self) -> np.ndarray | None:
        return self.state.al_proba_train

    @property
    def _al_proba_valid(self) -> np.ndarray | None:
        return self.state.al_proba_valid

    # ------------------------------------------------------ snapshot/resume
    def snapshot(self) -> TrainingState:
        """Deep copy of the run state, suitable for forking or persisting."""
        return self.state.snapshot()

    def restore(self, state: TrainingState, copy: bool = True) -> None:
        """Resume from a previously captured :meth:`snapshot`.

        With ``copy=True`` (default) the framework works on its own copy so
        the caller's snapshot stays pristine.
        """
        self.state = state.snapshot() if copy else state

    # ------------------------------------------------------------- training
    def step(self, user) -> IterationRecord:
        """Run one training-phase iteration with the given *user*.

        The user object must expose ``design_lf(query_index)`` returning a
        :class:`~repro.labeling.LabelFunction` or ``None``.
        """
        state = self.state
        query_index = self.select_query()
        state.queried.append(query_index)

        lf = user.design_lf(query_index)
        pseudo_label = ABSTAIN
        if lf is not None and lf not in state.lfs:
            pseudo_label = self.add_lf(lf, query_index)
        elif lf is not None:
            # Duplicate LF: still record the pseudo-label for the query.
            pseudo_label = self._record_pseudo_label(lf, query_index)

        if state.iteration % self.config.retrain_every == 0:
            self.refit()

        record = IterationRecord(
            iteration=state.iteration,
            query_index=query_index,
            lf_name=lf.name if lf is not None else None,
            pseudo_label=int(pseudo_label),
            n_lfs=len(state.lfs),
            n_selected_lfs=len(state.selection.selected_indices),
            threshold=state.threshold,
            **state.fit_counters(),
        )
        state.iteration += 1
        return record

    def run(self, user, n_iterations: int) -> list[IterationRecord]:
        """Run *n_iterations* training iterations and return their records."""
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        return [self.step(user) for _ in range(n_iterations)]

    def select_query(self) -> int:
        """Use the configured sampler to pick the next query instance."""
        state = self.state
        candidates = np.setdiff1d(
            np.arange(len(self.train)), np.asarray(state.queried, dtype=int)
        )
        if candidates.size == 0:
            raise RuntimeError("the entire training pool has already been queried")
        context = QueryContext(
            dataset=self.train,
            candidates=candidates,
            al_proba=state.al_proba_train,
            lm_proba=state.lm_proba_train,
            queried_indices=np.asarray(state.queried, dtype=int),
            queried_labels=self._queried_pseudo_labels(),
            iteration=state.iteration,
            rng=self.rng,
        )
        return self.sampler.select(context)

    def add_lf(self, lf: LabelFunction, query_index: int | None = None) -> int:
        """Add a user-returned LF to ``Lambda_t`` (and record its pseudo-label).

        Returns the pseudo-label recorded for *query_index* (:data:`ABSTAIN`
        when no query index is given or the LF abstains on its own query
        instance).
        """
        state = self.state
        state.lfs.append(lf)
        train_column = state.train_matrix.append(lf)
        state.valid_matrix.append(lf)
        state.mark_lf_added()
        if query_index is None:
            return ABSTAIN
        return self._record_pseudo_label(lf, query_index, column=train_column)

    def refit(self, force: bool = False) -> None:
        """Re-run LabelPick and retrain whichever models have stale inputs.

        The dirty flags on :class:`TrainingState` track whether the LF set or
        the pseudo-labelled set changed since the last refit; stages whose
        inputs are unchanged keep their (deterministic) fitted models and
        cached predictions.  ``force=True`` reruns every stage regardless —
        except that with ``warm_start_label_model`` enabled a label-model fit
        whose selection (and therefore input matrix) is unchanged reuses the
        carried converged fit instead of re-running EM over it.
        """
        state = self.state
        lfs_dirty = force or state.lfs_dirty
        pseudo_dirty = force or state.pseudo_dirty

        selection_changed = False
        if lfs_dirty or pseudo_dirty:
            previous = list(state.selection.selected_indices)
            self._run_labelpick()
            selection_changed = previous != list(state.selection.selected_indices)

        # Columns are append-only, so an unchanged selection means the label
        # model's input matrix is bit-identical and the fit can be skipped.
        lm_changed = False
        if force or selection_changed:
            self._fit_label_model()
            lm_changed = True

        al_changed = False
        if pseudo_dirty:
            self._fit_al_model()
            al_changed = True

        if lm_changed or al_changed:
            self._tune_threshold()

        state.clear_dirty()

    # ------------------------------------------------------------ inference
    def aggregate_labels(self) -> AggregatedLabels:
        """ConFusion aggregation of the training pool (Eq. 1).

        Depending on the configuration's ablation switches this degrades to
        label-model-only labels (``use_confusion=False``) or AL-model-only
        labels (no LFs collected yet).

        Aggregation always reflects *all* collected LFs and pseudo-labels:
        with ``retrain_every > 1`` the models may be stale between training
        refits, so any dirty state is flushed (a regular :meth:`refit`)
        before aggregating.  With ``retrain_every=1`` the state is never
        dirty here and behaviour is unchanged.  Note that the flush updates
        the live state, so with sparse retraining an evaluation point acts
        as an extra retrain boundary — subsequent query selection sees the
        refreshed models (deterministic per protocol; the eval cadence is
        part of the trial description).
        """
        state = self.state
        if state.lfs_dirty or state.pseudo_dirty:
            self.refit()
        n_train = len(self.train)
        lm_proba = state.lm_proba_train
        al_proba = state.al_proba_train
        lm_covered = self._lm_covered(self._train_matrix)

        if lm_proba is None and al_proba is None:
            uniform = np.full((n_train, self.n_classes), 1.0 / self.n_classes)
            return AggregatedLabels(
                labels=np.full(n_train, ABSTAIN, dtype=int),
                proba=uniform,
                accepted=np.zeros(n_train, dtype=bool),
                source=np.full(n_train, "rejected", dtype=object),
                threshold=1.0,
            )

        if not self.config.use_confusion or al_proba is None:
            # Label-model-only aggregation (Baseline / LabelPick ablations).
            proba = lm_proba if lm_proba is not None else np.full(
                (n_train, self.n_classes), 1.0 / self.n_classes
            )
            accepted = lm_covered.copy()
            labels = np.full(n_train, ABSTAIN, dtype=int)
            labels[accepted] = np.argmax(proba[accepted], axis=1)
            source = np.where(accepted, "lm", "rejected").astype(object)
            return AggregatedLabels(labels, proba, accepted, source, threshold=1.0)

        if lm_proba is None:
            # Reachable only when no label model exists (empty selection), so
            # there is no fitted class prior to fall back to; the covered mask
            # is all-False then and these rows are never adopted anyway.
            lm_proba = np.full((n_train, self.n_classes), 1.0 / self.n_classes)

        threshold = state.threshold if state.threshold is not None else 1.0
        return self.confusion.aggregate(al_proba, lm_proba, lm_covered, threshold)

    def generate_labels(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(indices, hard_labels, soft_labels)`` for downstream training."""
        aggregated = self.aggregate_labels()
        indices = np.flatnonzero(aggregated.accepted)
        return indices, aggregated.labels[indices], aggregated.proba[indices]

    def train_end_model(self, C: float = 1.0, max_iter: int = 200) -> LogisticRegression | None:
        """Train the downstream logistic-regression model on the aggregated labels."""
        indices, labels, _ = self.generate_labels()
        if len(indices) == 0:
            return None
        model = LogisticRegression(C=C, max_iter=max_iter, n_classes=self.n_classes)
        model.fit(self.train.features[indices], labels)
        return model

    def evaluate_end_model(self, test, C: float = 1.0) -> float:
        """Train the end model and return its accuracy on the *test* split."""
        model = self.train_end_model(C=C)
        if model is None:
            # No labels yet: fall back to majority-class accuracy.
            majority = int(np.argmax(np.bincount(self.valid.labels, minlength=self.n_classes)))
            return accuracy_score(test.labels, np.full(len(test), majority))
        return float(model.score(test.features, test.labels))

    # ----------------------------------------------------------- diagnostics
    def label_quality(self) -> dict:
        """Accuracy/coverage of the aggregated training labels (uses ground truth)."""
        aggregated = self.aggregate_labels()
        accepted = aggregated.accepted
        if not np.any(accepted):
            return {"coverage": 0.0, "accuracy": 0.0}
        accuracy = accuracy_score(
            self.train.labels[accepted], aggregated.labels[accepted]
        )
        return {"coverage": aggregated.coverage, "accuracy": accuracy}

    @property
    def selected_lfs(self) -> list[LabelFunction]:
        """The LF subset currently selected by LabelPick."""
        return self.state.selection.select(self.state.lfs)

    # ------------------------------------------------------------- internals
    def _build_sampler(self, config: ActiveDPConfig) -> BaseSampler:
        if isinstance(config.sampler, BaseSampler):
            return config.sampler
        name = str(config.sampler).lower()
        kwargs = dict(config.sampler_kwargs)
        if name == "adp" and "alpha" not in kwargs:
            kwargs["alpha"] = config.alpha
        return get_sampler(name, **kwargs)

    def _record_pseudo_label(self, lf: LabelFunction, query_index: int, column=None) -> int:
        """Record ``lf``'s output on *query_index* as a pseudo-label."""
        state = self.state
        if column is None:
            column = state.train_matrix.apply(lf)
        pseudo_label = state.pseudo.add(
            query_index, lf, self.train, output=int(column[query_index])
        )
        if pseudo_label != ABSTAIN:
            state.mark_pseudo_added()
        return pseudo_label

    def _queried_pseudo_labels(self) -> np.ndarray:
        """Pseudo-labels aligned with the query order (ABSTAIN when none recorded)."""
        state = self.state
        mapping = dict(zip(state.pseudo.indices.tolist(), state.pseudo.labels.tolist()))
        return np.array([mapping.get(idx, ABSTAIN) for idx in state.queried], dtype=int)

    def _run_labelpick(self) -> None:
        state = self.state
        if not state.lfs:
            state.selection = LabelPickResult(selected_indices=[])
            return
        if not self.config.use_labelpick:
            state.selection = LabelPickResult(selected_indices=list(range(len(state.lfs))))
            return
        query_matrix = (
            state.train_matrix.rows(state.pseudo.indices)
            if len(state.pseudo)
            else np.empty((0, len(state.lfs)), dtype=int)
        )
        state.selection = self.labelpick.select(
            state.lfs,
            self._valid_matrix,
            self.valid.labels,
            query_matrix,
            state.pseudo.labels,
            self.n_classes,
            state=state.labelpick if self.config.warm_start_labelpick else None,
        )

    def _fit_label_model(self) -> None:
        state = self.state
        selected = list(state.selection.selected_indices)
        if not selected:
            state.label_model = None
            state.lm_fit_selection = None
            state.lm_proba_train = None
            state.lm_proba_valid = None
            return
        train_matrix = state.train_matrix.columns(selected)
        model = state.label_model
        # Columns are append-only, so an identical selection means the carried
        # model was fitted on this exact matrix — EM from a converged fit is a
        # no-op, skip it entirely (only forced refits land here unchanged).
        reuse = (
            self.config.warm_start_label_model
            and model is not None
            and state.lm_fit_selection == selected
        )
        if reuse and state.lm_proba_train is not None and state.lm_proba_valid is not None:
            # The cached probabilities were computed from this exact model and
            # matrix; recomputing them would reproduce them bit for bit.
            return
        if not reuse:
            warm_start = self._label_model_warm_start(selected)
            kwargs = {}
            if self.config.label_model in EM_LABEL_MODELS:
                kwargs = {
                    "backend": self.config.backend,
                    "early_stop": self.config.adaptive_early_stop,
                }
            model = get_label_model(
                self.config.label_model, n_classes=self.n_classes, **kwargs
            )
            model.fit(train_matrix, warm_start=warm_start)
            state.label_model = model
            state.lm_fit_selection = selected
            state.lm_em_iterations += int(getattr(model, "n_iter_", 0) or 0)
            state.lm_fits += 1
            if getattr(model, "warm_started_", False):
                state.lm_warm_fits += 1
            if getattr(model, "converged_", False):
                state.lm_converged_fits += 1
            final_loss = getattr(model, "final_loss_", None)
            if final_loss is not None:
                state.lm_final_loss = float(final_loss)
        state.lm_proba_train = model.predict_proba(train_matrix)
        state.lm_proba_valid = model.predict_proba(
            state.valid_matrix.columns(selected)
        )

    def _label_model_warm_start(self, selected: list[int]):
        """Warm-start payload for fitting the *selected* columns, or ``None``.

        The previous fit seeds the next one whenever warm starts are enabled
        and the selections *intersect*: every selected column the previous
        fit covered maps onto its carried parameters and brand-new columns
        keep their cold initialisation.  Columns the previous fit covered
        but the new selection dropped simply fall out of the map — LabelPick
        churn (supersets, subsets, partial swaps) no longer forces a cold
        start.
        """
        if not self.config.warm_start_label_model:
            return None
        state = self.state
        prev_model = state.label_model
        prev_selection = state.lm_fit_selection
        if prev_model is None or prev_selection is None:
            return None
        export = getattr(prev_model, "export_warm_start", None)
        if export is None:
            return None
        previous_position = {lf: pos for pos, lf in enumerate(prev_selection)}
        column_map = np.array(
            [previous_position.get(lf, -1) for lf in selected], dtype=int
        )
        if not np.any(column_map >= 0):
            # Disjoint selections: nothing to carry over.
            return None
        return export(column_map=column_map)

    def _fit_al_model(self) -> None:
        state = self.state
        if len(state.pseudo) < 2 or state.pseudo.n_classes_observed() < 2:
            state.al_model = None
            state.al_proba_train = None
            state.al_proba_valid = None
            return
        model = LogisticRegression(C=self.config.al_model_C, n_classes=self.n_classes)
        coef_init, intercept_init = self._al_model_warm_start()
        model.fit(
            state.pseudo.features(self.train),
            state.pseudo.labels,
            coef_init=coef_init,
            intercept_init=intercept_init,
        )
        state.al_fits += 1
        if getattr(model, "warm_started_", False):
            state.al_warm_fits += 1
        state.al_model = model
        state.al_proba_train = model.predict_proba(self.train.features)
        state.al_proba_valid = model.predict_proba(self.valid.features)

    def _al_model_warm_start(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Previous AL-model coefficients seeding the next L-BFGS run, if any.

        Only a genuinely fitted previous model qualifies — the degenerate
        single-class fallback carries zero coefficients, which *is* the cold
        initialisation.  Shape mismatches are handled (ignored) by
        ``LogisticRegression.fit`` itself.
        """
        if not self.config.warm_start_al_model:
            return None, None
        prev = self.state.al_model
        if prev is None or getattr(prev, "_constant_class", None) is not None:
            return None, None
        coef = getattr(prev, "coef_", None)
        intercept = getattr(prev, "intercept_", None)
        if coef is None:
            return None, None
        return coef, intercept

    def _tune_threshold(self) -> None:
        state = self.state
        if not self.config.use_confusion or state.al_proba_valid is None:
            state.threshold = None
            return
        lm_proba_valid = state.lm_proba_valid
        if lm_proba_valid is None:
            # No label model (empty selection): no fitted class prior exists,
            # and the covered mask below is all-False, so the uniform rows
            # never reach the tuning objective.
            lm_proba_valid = np.full(
                (len(self.valid), self.n_classes), 1.0 / self.n_classes
            )
        lm_covered_valid = self._lm_covered(self._valid_matrix, selected_only=True)
        state.threshold = self.confusion.tune_threshold(
            state.al_proba_valid,
            lm_proba_valid,
            lm_covered_valid,
            self.valid.labels,
        )

    def _lm_covered(self, matrix: np.ndarray, selected_only: bool = True) -> np.ndarray:
        """Mask of instances with at least one activated *selected* LF."""
        if matrix.shape[1] == 0:
            return np.zeros(matrix.shape[0], dtype=bool)
        selected = self.state.selection.selected_indices
        if selected_only and selected:
            matrix = matrix[:, selected]
        elif selected_only and not selected:
            return np.zeros(matrix.shape[0], dtype=bool)
        return np.any(matrix != ABSTAIN, axis=1)
