"""The ActiveDP interactive framework (paper Section 3.1).

Training phase (one :meth:`ActiveDP.step` per iteration):

1. the ADP sampler picks a query instance from the unlabeled pool;
2. the user designs an LF based on the query instance;
3. the LF joins the collected set ``Lambda_t`` and its output on the query
   instance becomes a pseudo-label;
4. LabelPick selects a helpful LF subset ``Lambda*_t``; the label model is
   trained on the corresponding columns of the label matrix;
5. the active-learning model is trained on the pseudo-labelled subset.

Inference phase (:meth:`ActiveDP.aggregate_labels`): ConFusion tunes a
confidence threshold on the validation set and combines the two models'
predictions into training labels with high accuracy and coverage, which are
then used to train the downstream model.
"""

from __future__ import annotations

import numpy as np

from repro.active_learning import ADPSampler, BaseSampler, QueryContext, get_sampler
from repro.core.config import ActiveDPConfig
from repro.core.confusion import AggregatedLabels, ConFusion
from repro.core.labelpick import LabelPick, LabelPickResult
from repro.core.pseudo_labels import PseudoLabeledSet
from repro.core.results import IterationRecord
from repro.labeling.label_matrix import apply_lfs
from repro.labeling.lf import ABSTAIN, LabelFunction
from repro.label_models import get_label_model
from repro.models.logistic_regression import LogisticRegression
from repro.models.metrics import accuracy_score
from repro.utils.rng import RandomState, ensure_rng


class ActiveDP:
    """Interactive labelling framework bridging active learning and data programming.

    Parameters
    ----------
    train:
        Unlabeled training pool (its ground-truth labels are read only by the
        simulated user and by diagnostic metrics, never by the framework).
    valid:
        Holdout validation split with labels, used for LabelPick's accuracy
        pruning and ConFusion's threshold tuning.
    config:
        Hyper-parameters; ``None`` uses :class:`ActiveDPConfig` defaults.
    random_state:
        Seed or generator for the sampler's tie-breaking.
    """

    def __init__(
        self,
        train,
        valid,
        config: ActiveDPConfig | None = None,
        random_state: RandomState = None,
    ):
        self.train = train
        self.valid = valid
        self.config = config or ActiveDPConfig()
        self.rng = ensure_rng(random_state)
        self.n_classes = train.n_classes

        self.sampler = self._build_sampler(self.config)
        self.labelpick = LabelPick(
            glasso_alpha=self.config.glasso_alpha,
            min_queries=self.config.min_labelpick_queries,
            accuracy_threshold=self.config.accuracy_threshold,
        )
        self.confusion = ConFusion()

        # Mutable run state -------------------------------------------------
        self.lfs: list[LabelFunction] = []
        self.pseudo = PseudoLabeledSet()
        self.queried: list[int] = []
        self._train_matrix = np.empty((len(train), 0), dtype=int)
        self._valid_matrix = np.empty((len(valid), 0), dtype=int)
        self.selection = LabelPickResult(selected_indices=[])
        self.label_model = None
        self.al_model: LogisticRegression | None = None
        self.threshold: float | None = None
        self._lm_proba_train: np.ndarray | None = None
        self._lm_proba_valid: np.ndarray | None = None
        self._al_proba_train: np.ndarray | None = None
        self._al_proba_valid: np.ndarray | None = None
        self.iteration = 0

    # ------------------------------------------------------------- training
    def step(self, user) -> IterationRecord:
        """Run one training-phase iteration with the given *user*.

        The user object must expose ``design_lf(query_index)`` returning a
        :class:`~repro.labeling.LabelFunction` or ``None``.
        """
        query_index = self.select_query()
        self.queried.append(query_index)

        lf = user.design_lf(query_index)
        pseudo_label = ABSTAIN
        if lf is not None and lf not in self.lfs:
            self.add_lf(lf, query_index)
            pseudo_label = self.pseudo.labels[-1] if len(self.pseudo) else ABSTAIN
        elif lf is not None:
            # Duplicate LF: still record the pseudo-label for the query.
            pseudo_label = self.pseudo.add(query_index, lf, self.train)

        if self.iteration % self.config.retrain_every == 0:
            self.refit()

        record = IterationRecord(
            iteration=self.iteration,
            query_index=query_index,
            lf_name=lf.name if lf is not None else None,
            pseudo_label=int(pseudo_label),
            n_lfs=len(self.lfs),
            n_selected_lfs=len(self.selection.selected_indices),
            threshold=self.threshold,
        )
        self.iteration += 1
        return record

    def run(self, user, n_iterations: int) -> list[IterationRecord]:
        """Run *n_iterations* training iterations and return their records."""
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        return [self.step(user) for _ in range(n_iterations)]

    def select_query(self) -> int:
        """Use the configured sampler to pick the next query instance."""
        candidates = np.setdiff1d(np.arange(len(self.train)), np.asarray(self.queried, dtype=int))
        if candidates.size == 0:
            raise RuntimeError("the entire training pool has already been queried")
        context = QueryContext(
            dataset=self.train,
            candidates=candidates,
            al_proba=self._al_proba_train,
            lm_proba=self._lm_proba_train,
            queried_indices=np.asarray(self.queried, dtype=int),
            queried_labels=self._queried_pseudo_labels(),
            iteration=self.iteration,
            rng=self.rng,
        )
        return self.sampler.select(context)

    def add_lf(self, lf: LabelFunction, query_index: int | None = None) -> None:
        """Add a user-returned LF to ``Lambda_t`` (and record its pseudo-label)."""
        self.lfs.append(lf)
        train_column = lf.apply(self.train).reshape(-1, 1)
        valid_column = lf.apply(self.valid).reshape(-1, 1)
        self._train_matrix = np.hstack([self._train_matrix, train_column])
        self._valid_matrix = np.hstack([self._valid_matrix, valid_column])
        if query_index is not None:
            self.pseudo.add(query_index, lf, self.train)

    def refit(self) -> None:
        """Re-run LabelPick, retrain the label model and the AL model."""
        self._run_labelpick()
        self._fit_label_model()
        self._fit_al_model()
        self._tune_threshold()

    # ------------------------------------------------------------ inference
    def aggregate_labels(self) -> AggregatedLabels:
        """ConFusion aggregation of the training pool (Eq. 1).

        Depending on the configuration's ablation switches this degrades to
        label-model-only labels (``use_confusion=False``) or AL-model-only
        labels (no LFs collected yet).
        """
        n_train = len(self.train)
        lm_proba = self._lm_proba_train
        al_proba = self._al_proba_train
        lm_covered = self._lm_covered(self._train_matrix)

        if lm_proba is None and al_proba is None:
            uniform = np.full((n_train, self.n_classes), 1.0 / self.n_classes)
            return AggregatedLabels(
                labels=np.full(n_train, ABSTAIN, dtype=int),
                proba=uniform,
                accepted=np.zeros(n_train, dtype=bool),
                source=np.full(n_train, "rejected", dtype=object),
                threshold=1.0,
            )

        if not self.config.use_confusion or al_proba is None:
            # Label-model-only aggregation (Baseline / LabelPick ablations).
            proba = lm_proba if lm_proba is not None else np.full(
                (n_train, self.n_classes), 1.0 / self.n_classes
            )
            accepted = lm_covered.copy()
            labels = np.full(n_train, ABSTAIN, dtype=int)
            labels[accepted] = np.argmax(proba[accepted], axis=1)
            source = np.where(accepted, "lm", "rejected").astype(object)
            return AggregatedLabels(labels, proba, accepted, source, threshold=1.0)

        if lm_proba is None:
            lm_proba = np.full((n_train, self.n_classes), 1.0 / self.n_classes)

        threshold = self.threshold if self.threshold is not None else 1.0
        return self.confusion.aggregate(al_proba, lm_proba, lm_covered, threshold)

    def generate_labels(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(indices, hard_labels, soft_labels)`` for downstream training."""
        aggregated = self.aggregate_labels()
        indices = np.flatnonzero(aggregated.accepted)
        return indices, aggregated.labels[indices], aggregated.proba[indices]

    def train_end_model(self, C: float = 1.0, max_iter: int = 200) -> LogisticRegression | None:
        """Train the downstream logistic-regression model on the aggregated labels."""
        indices, labels, _ = self.generate_labels()
        if len(indices) == 0:
            return None
        model = LogisticRegression(C=C, max_iter=max_iter, n_classes=self.n_classes)
        model.fit(self.train.features[indices], labels)
        return model

    def evaluate_end_model(self, test, C: float = 1.0) -> float:
        """Train the end model and return its accuracy on the *test* split."""
        model = self.train_end_model(C=C)
        if model is None:
            # No labels yet: fall back to majority-class accuracy.
            majority = int(np.argmax(np.bincount(self.valid.labels, minlength=self.n_classes)))
            return accuracy_score(test.labels, np.full(len(test), majority))
        return float(model.score(test.features, test.labels))

    # ----------------------------------------------------------- diagnostics
    def label_quality(self) -> dict:
        """Accuracy/coverage of the aggregated training labels (uses ground truth)."""
        aggregated = self.aggregate_labels()
        accepted = aggregated.accepted
        if not np.any(accepted):
            return {"coverage": 0.0, "accuracy": 0.0}
        accuracy = accuracy_score(
            self.train.labels[accepted], aggregated.labels[accepted]
        )
        return {"coverage": aggregated.coverage, "accuracy": accuracy}

    @property
    def selected_lfs(self) -> list[LabelFunction]:
        """The LF subset currently selected by LabelPick."""
        return self.selection.select(self.lfs)

    # ------------------------------------------------------------- internals
    def _build_sampler(self, config: ActiveDPConfig) -> BaseSampler:
        if isinstance(config.sampler, BaseSampler):
            return config.sampler
        name = str(config.sampler).lower()
        kwargs = dict(config.sampler_kwargs)
        if name == "adp" and "alpha" not in kwargs:
            kwargs["alpha"] = config.alpha
        return get_sampler(name, **kwargs)

    def _queried_pseudo_labels(self) -> np.ndarray:
        """Pseudo-labels aligned with the query order (ABSTAIN when none recorded)."""
        mapping = dict(zip(self.pseudo.indices.tolist(), self.pseudo.labels.tolist()))
        return np.array([mapping.get(idx, ABSTAIN) for idx in self.queried], dtype=int)

    def _run_labelpick(self) -> None:
        if not self.lfs:
            self.selection = LabelPickResult(selected_indices=[])
            return
        if not self.config.use_labelpick:
            self.selection = LabelPickResult(selected_indices=list(range(len(self.lfs))))
            return
        query_matrix = (
            self._train_matrix[self.pseudo.indices]
            if len(self.pseudo)
            else np.empty((0, len(self.lfs)), dtype=int)
        )
        self.selection = self.labelpick.select(
            self.lfs,
            self._valid_matrix,
            self.valid.labels,
            query_matrix,
            self.pseudo.labels,
            self.n_classes,
        )

    def _fit_label_model(self) -> None:
        selected = self.selection.selected_indices
        if not selected:
            self.label_model = None
            self._lm_proba_train = None
            self._lm_proba_valid = None
            return
        train_matrix = self._train_matrix[:, selected]
        self.label_model = get_label_model(self.config.label_model, n_classes=self.n_classes)
        self.label_model.fit(train_matrix)
        self._lm_proba_train = self.label_model.predict_proba(train_matrix)
        self._lm_proba_valid = self.label_model.predict_proba(self._valid_matrix[:, selected])

    def _fit_al_model(self) -> None:
        if len(self.pseudo) < 2 or self.pseudo.n_classes_observed() < 2:
            self.al_model = None
            self._al_proba_train = None
            self._al_proba_valid = None
            return
        self.al_model = LogisticRegression(
            C=self.config.al_model_C, n_classes=self.n_classes
        )
        self.al_model.fit(self.pseudo.features(self.train), self.pseudo.labels)
        self._al_proba_train = self.al_model.predict_proba(self.train.features)
        self._al_proba_valid = self.al_model.predict_proba(self.valid.features)

    def _tune_threshold(self) -> None:
        if not self.config.use_confusion or self._al_proba_valid is None:
            self.threshold = None
            return
        lm_proba_valid = self._lm_proba_valid
        if lm_proba_valid is None:
            lm_proba_valid = np.full(
                (len(self.valid), self.n_classes), 1.0 / self.n_classes
            )
        lm_covered_valid = self._lm_covered(self._valid_matrix, selected_only=True)
        self.threshold = self.confusion.tune_threshold(
            self._al_proba_valid,
            lm_proba_valid,
            lm_covered_valid,
            self.valid.labels,
        )

    def _lm_covered(self, matrix: np.ndarray, selected_only: bool = True) -> np.ndarray:
        """Mask of instances with at least one activated *selected* LF."""
        if matrix.shape[1] == 0:
            return np.zeros(matrix.shape[0], dtype=bool)
        if selected_only and self.selection.selected_indices:
            matrix = matrix[:, self.selection.selected_indices]
        elif selected_only and not self.selection.selected_indices:
            return np.zeros(matrix.shape[0], dtype=bool)
        return np.any(matrix != ABSTAIN, axis=1)
