"""ActiveDP core: the paper's primary contribution.

The :class:`ActiveDP` framework (Section 3.1) iteratively selects query
instances with the :class:`~repro.active_learning.ADPSampler` (Section 3.3),
collects label functions from the user, filters them with
:class:`LabelPick` (Section 3.4), trains a label model and an active-learning
model, and at inference time aggregates both models' predictions with
:class:`ConFusion` (Section 3.2) to produce training labels with high
accuracy *and* coverage.
"""

from repro.active_learning.adp import ADPSampler
from repro.core.config import ActiveDPConfig
from repro.core.confusion import AggregatedLabels, ConFusion
from repro.core.labelpick import LabelPick, LabelPickResult, LabelPickState
from repro.core.pseudo_labels import PseudoLabeledSet
from repro.core.results import IterationRecord, RunHistory
from repro.core.state import TrainingState
from repro.core.framework import ActiveDP

__all__ = [
    "ActiveDP",
    "TrainingState",
    "ActiveDPConfig",
    "ADPSampler",
    "ConFusion",
    "AggregatedLabels",
    "LabelPick",
    "LabelPickResult",
    "LabelPickState",
    "PseudoLabeledSet",
    "IterationRecord",
    "RunHistory",
]
