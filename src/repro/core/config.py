"""Configuration object for the ActiveDP framework."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ActiveDPConfig:
    """Hyper-parameters of an ActiveDP run.

    Attributes
    ----------
    sampler:
        Name of the query-selection strategy (``"adp"``, ``"uncertainty"``,
        ``"passive"``, ``"lal"``, ``"seu"``, ...), resolved through
        :func:`repro.active_learning.get_sampler`.
    alpha:
        ADP trade-off factor between the AL model's and the label model's
        entropy.  The paper uses 0.5 for textual and 0.99 for tabular
        datasets.
    label_model:
        Label-model registry name (``"metal"``, ``"generative"``,
        ``"majority_vote"``).
    use_labelpick:
        Enable the LabelPick LF-selection step (Section 3.4); disabling it is
        the "Baseline"/"ConFusion" ablation of Table 3.
    use_confusion:
        Enable the ConFusion aggregation step (Section 3.2); disabling it is
        the "Baseline"/"LabelPick" ablation of Table 3.
    accuracy_threshold:
        LabelPick prunes LFs whose validation accuracy is below
        ``random-guess accuracy``; this attribute overrides that bound if set
        (``None`` keeps the better-than-random rule).
    glasso_alpha:
        L1 penalty of the graphical lasso used to learn the LF/label
        dependency structure.
    al_model_C:
        Inverse regularisation strength of the logistic-regression
        active-learning model.
    retrain_every:
        Retrain the AL model and label model every this many iterations
        (1 reproduces the paper exactly; larger values speed up long runs).
    warm_start_label_model:
        Seed each label-model refit with the previous fit's parameters,
        intersection-mapped onto the new selection: every selected LF the
        previous fit covered starts EM at its converged parameters and
        brand-new LFs keep the cold initialisation (any overlap qualifies —
        supersets, subsets and partial churn alike).  ``False`` keeps the
        historical semantics: every refit runs EM from a cold start and
        never consults the previous fit (numerically the vectorised EM
        agrees with the old per-LF loops to ~1e-14, not bit for bit).
    warm_start_labelpick:
        Make LabelPick's structure learning incremental: the query-set
        covariance is maintained by appending only the new rows/columns and
        the graphical lasso resumes from the previous refit's estimate
        (shared survivors intersection-mapped).  The optimisation problem is
        unchanged — the estimate agrees with a cold start up to solver
        tolerance, not bit for bit.  ``False`` restarts structure learning
        from scratch on every refit (historical semantics, exactly).
    warm_start_al_model:
        Seed each active-learning-model refit (L-BFGS logistic regression)
        with the previous fit's coefficients.  The objective is convex, so
        only the optimiser trajectory changes.  ``False`` starts every refit
        from zero coefficients (historical semantics, exactly).
    min_labelpick_queries:
        Minimum number of pseudo-labelled query instances before the
        graphical-lasso structure learning is attempted (before that, only
        the accuracy pruning step of LabelPick applies).
    backend:
        Array-backend name for the numeric core (label-model EM, glasso
        sweeps, LabelPick scoring): ``"numpy"`` (the reference), ``"jax"``
        (jit-compiled, requires the jax package), or ``None`` to resolve
        through the ``REPRO_BACKEND`` environment variable.  See
        :mod:`repro.numerics`.  Note the environment-variable route does
        *not* re-key the result cache — prefer setting this field.
    adaptive_early_stop:
        Stop label-model EM and glasso sweeps on the *relative* change of
        their loss/iterate instead of the historical fixed absolute
        thresholds — size- and scale-independent, and warm-started refits
        converge in a couple of iterations instead of burning the full
        budget.  ``False`` restores the historical fixed-budget semantics
        exactly.
    """

    sampler: str = "adp"
    alpha: float = 0.5
    label_model: str = "metal"
    use_labelpick: bool = True
    use_confusion: bool = True
    accuracy_threshold: float | None = None
    glasso_alpha: float = 0.01
    al_model_C: float = 1.0
    retrain_every: int = 1
    warm_start_label_model: bool = True
    warm_start_labelpick: bool = True
    warm_start_al_model: bool = True
    min_labelpick_queries: int = 8
    backend: str | None = None
    adaptive_early_stop: bool = True
    sampler_kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.backend is not None:
            from repro.numerics import KNOWN_BACKENDS, available_backends

            known = set(KNOWN_BACKENDS) | set(available_backends())
            if self.backend not in known:
                raise ValueError(
                    f"unknown backend {self.backend!r}; choose from {sorted(known)}"
                )
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.glasso_alpha < 0:
            raise ValueError("glasso_alpha must be non-negative")
        if self.al_model_C <= 0:
            raise ValueError("al_model_C must be positive")
        if self.retrain_every < 1:
            raise ValueError("retrain_every must be >= 1")
        if self.min_labelpick_queries < 2:
            raise ValueError("min_labelpick_queries must be >= 2")

    @classmethod
    def for_dataset_kind(cls, kind: str, **overrides) -> "ActiveDPConfig":
        """Return the paper's default configuration for ``"text"`` or ``"tabular"`` data.

        The only kind-dependent default is the ADP trade-off factor
        (alpha = 0.5 for text, 0.99 for tabular; Section 3.3).
        """
        if kind not in ("text", "tabular"):
            raise ValueError("kind must be 'text' or 'tabular'")
        alpha = 0.5 if kind == "text" else 0.99
        params = {"alpha": alpha}
        params.update(overrides)
        return cls(**params)
