"""Explicit mutable run state of an :class:`~repro.core.framework.ActiveDP` run.

Separating the immutable trial description (dataset, config, seed) from the
mutable hot-loop state gives the framework three capabilities the original
attribute soup could not offer:

* **Snapshot/resume** — :meth:`TrainingState.snapshot` deep-copies the state
  (sharing immutable datasets and cached LF outputs) so a trial can be forked
  or resumed;
* **Incremental refit** — the ``lfs_dirty`` / ``pseudo_dirty`` flags record
  which inputs actually changed since the last refit, so the framework only
  re-runs LabelPick, the label model, the AL model and threshold tuning when
  their inputs moved;
* **Amortised label matrices** — the train/valid matrices are
  :class:`~repro.labeling.incremental.IncrementalLabelMatrix` column stores
  instead of per-iteration ``np.hstack`` rebuilds.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.core.labelpick import LabelPickResult, LabelPickState
from repro.core.pseudo_labels import PseudoLabeledSet
from repro.labeling.incremental import IncrementalLabelMatrix
from repro.labeling.lf import LabelFunction


@dataclass
class TrainingState:
    """Everything an ActiveDP run mutates between iterations.

    Attributes
    ----------
    train_matrix, valid_matrix:
        Incrementally grown label matrices on the train/valid splits.
    lfs:
        The collected LF set ``Lambda_t`` (column order of the matrices).
    pseudo:
        Pseudo-labelled query instances.
    queried:
        Pool indices queried so far, in order.
    selection:
        LabelPick's current LF subset.
    label_model, al_model:
        The fitted models (``None`` until first successful fit).
    lm_fit_selection:
        The LF indices (into ``lfs``) whose columns ``label_model`` was
        fitted on.  Together with the carried model it lets the next refit
        warm-start EM whenever the new selection intersects this one (the
        shared columns are mapped onto their carried parameters); ``None``
        until the first fit.
    lm_em_iterations:
        Cumulative EM iterations spent on label-model fits over the whole
        run (diagnostics; the warm-start benchmark reads it).
    lm_fits, lm_warm_fits:
        How many label-model fits ran / how many of them were EM-warm-started
        from the carried previous fit (skip-outright reuses of an unchanged
        selection count as neither).
    lm_converged_fits:
        How many of those fits stopped on their convergence criterion before
        exhausting ``max_iter`` (under adaptive early stopping this should be
        nearly all of them).
    lm_final_loss:
        Mean per-instance negative log-likelihood of the most recent EM fit
        (``None`` until an EM model fits, or when the configured model does
        not report a loss).
    al_fits, al_warm_fits:
        Same counters for the active-learning model's refits.
    labelpick:
        Carried :class:`~repro.core.labelpick.LabelPickState` making the
        structure-learning step incremental (its own ``n_fits`` /
        ``n_warm_fits`` counters track graphical-lasso fits *on the
        incremental path only*).  Unused — and its counters deliberately
        stay 0, unlike ``lm_fits``/``al_fits`` — when
        ``warm_start_labelpick`` is off: structure learning then runs
        statelessly and leaves no trace here.
    threshold:
        ConFusion confidence threshold (``None`` before the AL model exists).
    lm_proba_train, lm_proba_valid, al_proba_train, al_proba_valid:
        Cached model predictions, invalidated by refits only.
    iteration:
        Number of completed iterations.
    rng:
        The sampler's tie-breaking generator.  Part of the state so a
        snapshot resumes with the exact random stream (the samplers
        themselves are stateless).
    lfs_dirty:
        An LF column was appended since the last refit.
    pseudo_dirty:
        A pseudo-label was recorded since the last refit.
    """

    train_matrix: IncrementalLabelMatrix
    valid_matrix: IncrementalLabelMatrix
    lfs: list[LabelFunction] = field(default_factory=list)
    pseudo: PseudoLabeledSet = field(default_factory=PseudoLabeledSet)
    queried: list[int] = field(default_factory=list)
    selection: LabelPickResult = field(
        default_factory=lambda: LabelPickResult(selected_indices=[])
    )
    label_model: object | None = None
    lm_fit_selection: list[int] | None = None
    lm_em_iterations: int = 0
    lm_fits: int = 0
    lm_warm_fits: int = 0
    lm_converged_fits: int = 0
    lm_final_loss: float | None = None
    al_fits: int = 0
    al_warm_fits: int = 0
    labelpick: LabelPickState = field(default_factory=LabelPickState)
    al_model: object | None = None
    threshold: float | None = None
    lm_proba_train: np.ndarray | None = None
    lm_proba_valid: np.ndarray | None = None
    al_proba_train: np.ndarray | None = None
    al_proba_valid: np.ndarray | None = None
    iteration: int = 0
    rng: np.random.Generator | None = None
    lfs_dirty: bool = True
    pseudo_dirty: bool = True

    @classmethod
    def initial(cls, train, valid, rng: np.random.Generator | None = None) -> "TrainingState":
        """Fresh state for a run over the given train/valid splits."""
        return cls(
            train_matrix=IncrementalLabelMatrix(train),
            valid_matrix=IncrementalLabelMatrix(valid),
            rng=rng,
        )

    # ------------------------------------------------------------ dirty flags
    def mark_lf_added(self) -> None:
        """Record that a new LF column exists since the last refit."""
        self.lfs_dirty = True

    def mark_pseudo_added(self) -> None:
        """Record that a new pseudo-label exists since the last refit."""
        self.pseudo_dirty = True

    def clear_dirty(self) -> None:
        """Mark the fitted models as consistent with the current inputs."""
        self.lfs_dirty = False
        self.pseudo_dirty = False

    # ------------------------------------------------------------ diagnostics
    def fit_counters(self) -> dict:
        """Cumulative fit counters, keyed by ``IterationRecord`` field names.

        The single source of the counter→record mapping: both the
        per-iteration record construction and the evaluation-time counter
        refresh (:meth:`~repro.baselines.base.InteractivePipeline.refit_counters`)
        read it, so the two can never drift apart.
        """
        return {
            "lm_em_iterations": self.lm_em_iterations,
            "lm_fits": self.lm_fits,
            "lm_warm_fits": self.lm_warm_fits,
            "lm_converged_fits": self.lm_converged_fits,
            "lm_final_loss": self.lm_final_loss,
            "al_fits": self.al_fits,
            "al_warm_fits": self.al_warm_fits,
            "glasso_fits": self.labelpick.n_fits,
            "glasso_warm_fits": self.labelpick.n_warm_fits,
            "glasso_sweeps": self.labelpick.n_sweeps,
        }

    # ---------------------------------------------------------------- persist
    def snapshot(self) -> "TrainingState":
        """Deep copy of the state (datasets and cached LF outputs are shared)."""
        return copy.deepcopy(self)
