"""ConFusion: confidence-based label aggregation (paper Section 3.2).

ConFusion combines the label model's and the active-learning model's
predictions with a confidence threshold ``tau`` (Eq. 1):

* if the AL model's confidence (top-1 probability) is at least ``tau``,
  adopt the AL model's prediction;
* otherwise, if at least one selected LF is activated on the instance, adopt
  the label model's prediction;
* otherwise reject the instance (it is discarded when training the
  downstream model).

The threshold is tuned dynamically on a holdout validation set: every unique
AL-model confidence value (plus the boundary values 0 and 1) is evaluated and
the threshold maximising the accuracy of the aggregated labels on the
*non-rejected* part of the validation set is kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.labeling.lf import ABSTAIN
from repro.models.metrics import accuracy_score
from repro.utils.validation import check_probability_matrix


@dataclass
class AggregatedLabels:
    """Result of a ConFusion aggregation pass.

    Attributes
    ----------
    labels:
        Hard aggregated labels, ``-1`` for rejected instances.
    proba:
        Soft aggregated labels (rows of rejected instances are uniform).
    accepted:
        Boolean mask of non-rejected instances.
    source:
        Per-instance provenance: ``"al"``, ``"lm"`` or ``"rejected"``.
    threshold:
        Confidence threshold used for the aggregation.
    """

    labels: np.ndarray
    proba: np.ndarray
    accepted: np.ndarray
    source: np.ndarray
    threshold: float

    @property
    def coverage(self) -> float:
        """Fraction of instances that received a label."""
        if len(self.accepted) == 0:
            return 0.0
        return float(np.mean(self.accepted))


class ConFusion:
    """Confidence-threshold label aggregator with validation-set tuning.

    Parameters
    ----------
    objective:
        ``"accuracy"`` (paper default) tunes the threshold to maximise the
        aggregated labels' accuracy on the validation set; ``"coverage"``
        maximises coverage instead (discussed and rejected in Section 3.2 —
        it degenerates to always trusting the AL model).
    """

    def __init__(self, objective: str = "accuracy"):
        if objective not in ("accuracy", "coverage"):
            raise ValueError("objective must be 'accuracy' or 'coverage'")
        self.objective = objective

    # ------------------------------------------------------------- aggregate
    def aggregate(
        self,
        al_proba: np.ndarray,
        lm_proba: np.ndarray,
        lm_covered: np.ndarray,
        threshold: float,
    ) -> AggregatedLabels:
        """Apply Eq. 1 with a fixed confidence *threshold*.

        Parameters
        ----------
        al_proba:
            ``(n, C)`` probabilities from the active-learning model.
        lm_proba:
            ``(n, C)`` probabilities from the label model.
        lm_covered:
            Boolean mask: instance has at least one activated (selected) LF.
        threshold:
            Confidence threshold ``tau``.
        """
        al_proba = check_probability_matrix(al_proba, "al_proba")
        lm_proba = check_probability_matrix(lm_proba, "lm_proba")
        lm_covered = np.asarray(lm_covered, dtype=bool)
        n_instances, n_classes = al_proba.shape
        if lm_proba.shape != al_proba.shape:
            raise ValueError("al_proba and lm_proba must have the same shape")
        if lm_covered.shape != (n_instances,):
            raise ValueError("lm_covered must be a boolean vector of length n")

        confidence = al_proba.max(axis=1)
        use_al = confidence >= threshold
        use_lm = ~use_al & lm_covered
        accepted = use_al | use_lm

        proba = np.full((n_instances, n_classes), 1.0 / n_classes)
        proba[use_al] = al_proba[use_al]
        proba[use_lm] = lm_proba[use_lm]

        labels = np.full(n_instances, ABSTAIN, dtype=int)
        labels[accepted] = np.argmax(proba[accepted], axis=1)

        source = np.full(n_instances, "rejected", dtype=object)
        source[use_al] = "al"
        source[use_lm] = "lm"
        return AggregatedLabels(labels, proba, accepted, source, float(threshold))

    # ------------------------------------------------------ threshold tuning
    def candidate_thresholds(self, al_proba_valid: np.ndarray) -> np.ndarray:
        """Unique AL confidences on the validation set plus the boundaries 0 and 1."""
        al_proba_valid = check_probability_matrix(al_proba_valid, "al_proba_valid")
        confidences = np.unique(al_proba_valid.max(axis=1))
        return np.unique(np.concatenate([[0.0], confidences, [1.0]]))

    def tune_threshold(
        self,
        al_proba_valid: np.ndarray,
        lm_proba_valid: np.ndarray,
        lm_covered_valid: np.ndarray,
        y_valid: np.ndarray,
    ) -> float:
        """Return the threshold maximising the tuning objective on the validation set.

        Only non-rejected validation instances count toward the accuracy
        objective, matching the paper.  Ties are broken toward the *smallest*
        threshold so that, all else equal, the more-covering aggregation wins.

        The swept candidate set is exactly :meth:`candidate_thresholds` (the
        public method is the single source of truth, so callers inspecting it
        see precisely what tuning considers).  A single sorted-confidence
        sweep computes every candidate's objective from prefix sums —
        O((n + U) log n) for U unique confidences instead of the naive
        O(U * n) full re-aggregation per candidate.  Raising the threshold
        past a confidence value only moves that instance from the AL side to
        the LM-or-rejected side, so each candidate's correct and accepted
        counts are cumulative functions of the sort position.
        """
        al_proba_valid = check_probability_matrix(al_proba_valid, "al_proba_valid")
        lm_proba_valid = check_probability_matrix(lm_proba_valid, "lm_proba_valid")
        lm_covered_valid = np.asarray(lm_covered_valid, dtype=bool)
        y_valid = np.asarray(y_valid, dtype=int)
        n_instances = al_proba_valid.shape[0]
        if lm_proba_valid.shape != al_proba_valid.shape:
            raise ValueError("al_proba_valid and lm_proba_valid must have the same shape")
        if lm_covered_valid.shape != (n_instances,):
            raise ValueError("lm_covered_valid must be a boolean vector of length n")

        confidence = al_proba_valid.max(axis=1)
        al_correct = al_proba_valid.argmax(axis=1) == y_valid
        lm_correct = (lm_proba_valid.argmax(axis=1) == y_valid) & lm_covered_valid

        order = np.argsort(confidence, kind="stable")
        confidence_sorted = confidence[order]
        # Prefix sums over instances sorted by confidence: position p splits
        # the instances into the LM side [0, p) (confidence < threshold) and
        # the AL side [p, n) (confidence >= threshold).
        prefix_covered = np.concatenate([[0], np.cumsum(lm_covered_valid[order])])
        prefix_lm_correct = np.concatenate([[0], np.cumsum(lm_correct[order])])
        prefix_al_correct = np.concatenate([[0], np.cumsum(al_correct[order])])

        candidates = self.candidate_thresholds(al_proba_valid)
        split = np.searchsorted(confidence_sorted, candidates, side="left")
        n_al = n_instances - split
        n_correct = (prefix_al_correct[-1] - prefix_al_correct[split]) + prefix_lm_correct[split]
        n_accepted = n_al + prefix_covered[split]
        if self.objective == "accuracy":
            scores = np.where(
                n_accepted > 0, n_correct / np.maximum(n_accepted, 1), 0.0
            )
        else:
            scores = n_accepted / max(n_instances, 1)

        # Same tie-breaking as the naive candidate loop: ascending candidate
        # order, keep the first strictly better score.
        best_threshold = 0.0
        best_score = -np.inf
        for threshold, score in zip(candidates, scores):
            if score > best_score + 1e-12:
                best_score = float(score)
                best_threshold = float(threshold)
        return best_threshold

    def tune_and_aggregate(
        self,
        al_proba_valid: np.ndarray,
        lm_proba_valid: np.ndarray,
        lm_covered_valid: np.ndarray,
        y_valid: np.ndarray,
        al_proba: np.ndarray,
        lm_proba: np.ndarray,
        lm_covered: np.ndarray,
    ) -> AggregatedLabels:
        """Tune the threshold on the validation set, then aggregate the training pool."""
        threshold = self.tune_threshold(
            al_proba_valid, lm_proba_valid, lm_covered_valid, y_valid
        )
        return self.aggregate(al_proba, lm_proba, lm_covered, threshold)
