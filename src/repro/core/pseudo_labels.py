"""Pseudo-labelled subset curation (paper Section 3.1).

ActiveDP never asks the user for instance labels directly.  Instead, when the
user designs an LF after inspecting query instance ``x``, the LF's output on
``x`` is taken as a pseudo-label for ``x`` (the LF "should be at least
accurate on the corresponding query instance").  The accumulated pseudo-
labelled subset trains the active-learning model.
"""

from __future__ import annotations

import numpy as np

from repro.labeling.lf import ABSTAIN, LabelFunction


class PseudoLabeledSet:
    """Accumulates (query instance, pseudo-label) pairs across iterations."""

    def __init__(self):
        self._indices: list[int] = []
        self._labels: list[int] = []
        self._lfs: list[LabelFunction] = []

    def __len__(self) -> int:
        return len(self._indices)

    def add(self, query_index: int, lf: LabelFunction, dataset, output: int | None = None) -> int:
        """Record the pseudo-label ``lf(x_query)`` for *query_index*.

        Returns the pseudo-label (or :data:`ABSTAIN` when the LF abstains on
        its own query instance, in which case nothing is recorded — this can
        only happen with user-written LFs, never with the simulated user).

        *output* short-circuits the LF application when the caller already
        holds ``lf``'s output on the query instance (e.g. from a cached label
        matrix column).
        """
        if output is None:
            outputs = lf.apply(dataset.subset(np.array([query_index])))
            output = int(outputs[0])
        pseudo_label = int(output)
        if pseudo_label == ABSTAIN:
            return ABSTAIN
        self._indices.append(int(query_index))
        self._labels.append(pseudo_label)
        self._lfs.append(lf)
        return pseudo_label

    def add_direct(self, query_index: int, label: int) -> None:
        """Record an explicit pseudo-label (used when the label is already known)."""
        if label == ABSTAIN:
            raise ValueError("cannot record an abstain pseudo-label")
        self._indices.append(int(query_index))
        self._labels.append(int(label))
        self._lfs.append(None)

    @property
    def indices(self) -> np.ndarray:
        """Training-pool indices of the pseudo-labelled instances (query order)."""
        return np.asarray(self._indices, dtype=int)

    @property
    def labels(self) -> np.ndarray:
        """Pseudo-labels aligned with :attr:`indices`."""
        return np.asarray(self._labels, dtype=int)

    @property
    def lfs(self) -> list[LabelFunction]:
        """The LF that generated each pseudo-label (``None`` for direct labels)."""
        return list(self._lfs)

    def n_classes_observed(self) -> int:
        """Number of distinct classes among the pseudo-labels."""
        return len(set(self._labels))

    def features(self, dataset) -> np.ndarray:
        """Feature matrix of the pseudo-labelled instances."""
        if not self._indices:
            return np.empty((0, dataset.features.shape[1]))
        return dataset.features[self.indices]

    def accuracy(self, dataset) -> float:
        """Accuracy of the pseudo-labels against ground truth (diagnostics only)."""
        if not self._indices:
            return 0.0
        return float(np.mean(self.labels == dataset.labels[self.indices]))
