"""Run-history containers for interactive labelling runs."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IterationRecord:
    """Snapshot of one interactive iteration.

    Attributes
    ----------
    iteration:
        Zero-based iteration number.
    query_index:
        Pool index shown to the user.
    lf_name:
        Name of the LF returned by the user (``None`` if no LF was returned).
    pseudo_label:
        Pseudo-label recorded for the query instance (``-1`` when none).
    n_lfs:
        Total number of LFs collected so far.
    n_selected_lfs:
        Number of LFs kept by LabelPick for the label model.
    threshold:
        ConFusion confidence threshold in effect (``None`` before the AL
        model exists).
    lm_em_iterations:
        Cumulative EM iterations spent on label-model (re)fits up to this
        iteration (``None`` for pipelines that do not report it).  The
        warm-start benchmark reads the final record's value.
    lm_fits, lm_warm_fits:
        Cumulative label-model fit / warm-started-fit counts up to this
        iteration (``None`` for pipelines that do not report them).  The
        warm-start benchmark derives its warm-refit rate — warm fits per
        post-first fit — from the final record's values.
    al_fits, al_warm_fits:
        Same cumulative counters for the active-learning model.
    glasso_fits, glasso_warm_fits:
        Same cumulative counters for LabelPick's graphical-lasso structure
        learning — *incremental path only*: with ``warm_start_labelpick``
        off, structure learning runs statelessly and these stay 0 (they
        measure carried-state fits, not whether the glasso ran at all).
    lm_converged_fits:
        Cumulative label-model fits that stopped on their convergence
        criterion before exhausting ``max_iter`` (``None`` for pipelines
        that do not report it).
    lm_final_loss:
        Mean per-instance negative log-likelihood of the most recent
        label-model EM fit at this iteration (``None`` when no EM model
        has fitted, or the pipeline does not report it).
    glasso_sweeps:
        Cumulative outer glasso sweeps across LabelPick's incremental
        structure-learning fits (same incremental-path-only caveat as
        ``glasso_fits``).
    label_coverage:
        Fraction of the training pool that received an aggregated label.
    label_accuracy:
        Accuracy of the aggregated labels on the covered training instances
        (diagnostics; uses ground truth).
    test_accuracy:
        Downstream-model test accuracy, when evaluated at this iteration.
    """

    iteration: int
    query_index: int
    lf_name: str | None = None
    pseudo_label: int = -1
    n_lfs: int = 0
    n_selected_lfs: int = 0
    threshold: float | None = None
    lm_em_iterations: int | None = None
    lm_fits: int | None = None
    lm_warm_fits: int | None = None
    al_fits: int | None = None
    al_warm_fits: int | None = None
    glasso_fits: int | None = None
    glasso_warm_fits: int | None = None
    lm_converged_fits: int | None = None
    lm_final_loss: float | None = None
    glasso_sweeps: int | None = None
    label_coverage: float | None = None
    label_accuracy: float | None = None
    test_accuracy: float | None = None


@dataclass
class RunHistory:
    """Full history of an interactive run (one framework, one dataset, one seed).

    ``artifacts`` is an optional payload of final outputs a pipeline chose to
    export beyond the per-iteration metric records — e.g. the aggregated
    training labels, per-LF diagnostics and end-model predictions the serving
    layer returns to label-request clients.  It must be plain JSON-able
    Python (dicts/lists/numbers/strings), so a stored history serialises
    identically everywhere; ``None`` means the pipeline exported nothing.
    """

    framework: str
    dataset: str
    seed: int
    records: list[IterationRecord] = field(default_factory=list)
    artifacts: dict | None = None

    def add(self, record: IterationRecord) -> None:
        """Append one iteration record."""
        self.records.append(record)

    @property
    def n_iterations(self) -> int:
        """Number of recorded iterations."""
        return len(self.records)

    def evaluation_points(self) -> list[tuple[int, float]]:
        """Return ``(iteration, test_accuracy)`` pairs where evaluation happened."""
        return [
            (record.iteration, record.test_accuracy)
            for record in self.records
            if record.test_accuracy is not None
        ]

    def average_test_accuracy(self) -> float:
        """Average test accuracy over all evaluation points (area under the curve)."""
        points = self.evaluation_points()
        if not points:
            return 0.0
        return float(sum(acc for _, acc in points) / len(points))

    def final_test_accuracy(self) -> float:
        """Test accuracy at the last evaluation point."""
        points = self.evaluation_points()
        return points[-1][1] if points else 0.0
