"""LabelPick: label-function selection (paper Section 3.4).

LabelPick reduces LF selection to feature selection in a supervised setting:

1. **Accuracy pruning** — evaluate every candidate LF on the holdout
   validation set and drop LFs performing worse than random guessing.
2. **Markov-blanket selection** — build the small labelled dataset
   ``L_Lambda = {(Lambda_t(x_li), y~_li)}`` of LF outputs on the query
   instances paired with their pseudo-labels, estimate the dependency
   structure between LFs and the label with the graphical lasso, and keep
   only the LFs adjacent to the label (its Markov blanket).

When too few query instances have been collected for structure learning to
be meaningful, only the accuracy-pruning step applies (all surviving LFs are
kept), and if the estimated blanket is empty the pruned set is likewise kept
— pruning to zero LFs would silence the label model entirely.

Interactive frameworks re-run LabelPick every refit on an almost-unchanged
input (the query set gained a few rows, the LF set a column).  Passing a
:class:`LabelPickState` to :meth:`LabelPick.select` makes the structure-
learning step incremental: the empirical covariance is maintained by a
row/column-appending :class:`~repro.graphical.covariance.RunningCovariance`
and the graphical lasso resumes from the previous refit's estimate
(intersection-mapped over the shared survivors) instead of restarting cold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphical.covariance import RunningCovariance, shrink_covariance
from repro.graphical.glasso import GraphicalLassoResult, graphical_lasso
from repro.graphical.markov_blanket import markov_blanket
from repro.labeling.lf import ABSTAIN, LabelFunction
from repro.numerics import get_backend
from repro.numerics.scores import labelpick_score_fn


@dataclass
class LabelPickResult:
    """Outcome of one LabelPick selection pass.

    Attributes
    ----------
    selected_indices:
        Indices (into the full LF list) of the selected LFs.
    pruned_low_accuracy:
        Indices that failed the accuracy-pruning step.  Normally disjoint
        from ``selected_indices``, except in the keep-all fallback (every LF
        failed pruning and all were resurrected), where both lists cover the
        full LF set.
    pruned_structure:
        Indices dropped by the Markov-blanket step.
    used_structure_learning:
        Whether the graphical-lasso step actually ran.
    """

    selected_indices: list[int]
    pruned_low_accuracy: list[int] = field(default_factory=list)
    pruned_structure: list[int] = field(default_factory=list)
    used_structure_learning: bool = False

    def select(self, lfs: list[LabelFunction]) -> list[LabelFunction]:
        """Return the selected subset of *lfs*."""
        return [lfs[i] for i in self.selected_indices]


@dataclass
class LabelPickState:
    """Carried structure-learning state for incremental LabelPick refits.

    Owned by the caller (ActiveDP keeps one inside its ``TrainingState``) and
    mutated by :meth:`LabelPick.select` when passed in.  All fields refer to
    the *same* run: the accumulator's column layout is ``[pseudo-label,
    LF_0, LF_1, ...]`` over the pseudo-labelled query rows, both append-only.

    Attributes
    ----------
    covariance:
        Incrementally maintained empirical covariance of LF outputs and the
        pseudo-label on the query instances (``None`` until structure
        learning first runs).
    glasso_result:
        The previous refit's graphical-lasso estimate, seeding the next one.
    glasso_survivors:
        LF indices (into the full LF list) of the variables
        ``glasso_result`` was estimated over, in order (the pseudo-label is
        always the implicit last variable).
    n_fits, n_warm_fits:
        How many graphical-lasso fits ran, and how many of them resumed from
        a previous estimate (diagnostics; the warm-start benchmark reads
        them).
    n_sweeps:
        Cumulative outer block-coordinate sweeps across all incremental
        glasso fits (diagnostics; surfaced per iteration as
        ``glasso_sweeps``).
    """

    covariance: RunningCovariance | None = None
    glasso_result: GraphicalLassoResult | None = None
    glasso_survivors: list[int] | None = None
    n_fits: int = 0
    n_warm_fits: int = 0
    n_sweeps: int = 0


class LabelPick:
    """Accuracy pruning + graphical-lasso Markov-blanket LF selection.

    Parameters
    ----------
    glasso_alpha:
        L1 penalty of the graphical lasso.
    min_queries:
        Minimum number of pseudo-labelled query instances before structure
        learning is attempted.
    accuracy_threshold:
        Validation accuracy below which an LF is pruned.  ``None`` uses the
        better-than-random bound ``1 / n_classes``.
    backend:
        Array-backend name for the scoring reductions and glasso sweeps
        (``None`` resolves through ``REPRO_BACKEND`` to the numpy reference
        backend; see :mod:`repro.numerics`).
    early_stop:
        Judge glasso convergence relative to the covariance iterate's own
        scale (threshold :attr:`GLASSO_EARLY_STOP_RTOL`) instead of the
        absolute :attr:`GLASSO_TOL`.  ``False`` (default) keeps the
        historical semantics exactly.
    """

    def __init__(
        self,
        glasso_alpha: float = 0.01,
        min_queries: int = 8,
        accuracy_threshold: float | None = None,
        backend: str | None = None,
        early_stop: bool = False,
    ):
        if glasso_alpha < 0:
            raise ValueError("glasso_alpha must be non-negative")
        if min_queries < 2:
            raise ValueError("min_queries must be >= 2")
        self.glasso_alpha = glasso_alpha
        self.min_queries = min_queries
        self.accuracy_threshold = accuracy_threshold
        self.backend = backend
        self.early_stop = early_stop

    # ---------------------------------------------------------------- select
    def select(
        self,
        lfs: list[LabelFunction],
        valid_label_matrix: np.ndarray,
        valid_labels: np.ndarray,
        query_label_matrix: np.ndarray,
        pseudo_labels: np.ndarray,
        n_classes: int,
        state: LabelPickState | None = None,
    ) -> LabelPickResult:
        """Run both LabelPick stages and return the selection result.

        Parameters
        ----------
        lfs:
            The full candidate LF list ``Lambda_t``.
        valid_label_matrix:
            LF outputs on the validation set, shape ``(n_valid, n_lfs)``.
        valid_labels:
            Ground-truth validation labels.
        query_label_matrix:
            LF outputs on the query instances, shape ``(n_queries, n_lfs)``.
        pseudo_labels:
            Pseudo-labels of the query instances.
        n_classes:
            Number of classes in the task.
        state:
            Optional carried :class:`LabelPickState` making the structure-
            learning step incremental across calls of the *same* run (rows
            and LF columns append-only).  ``None`` (default) keeps every
            call independent and cold-started.
        """
        n_lfs = len(lfs)
        if n_lfs == 0:
            return LabelPickResult(selected_indices=[])
        if valid_label_matrix.shape[1] != n_lfs or query_label_matrix.shape[1] != n_lfs:
            raise ValueError("label matrices must have one column per LF")

        threshold = (
            self.accuracy_threshold
            if self.accuracy_threshold is not None
            else 1.0 / n_classes
        )
        survivors, pruned_low = self._accuracy_prune(
            valid_label_matrix, valid_labels, threshold
        )
        if not survivors:
            # Never silence the label model completely: if every LF fails the
            # validation check, keep them all and let aggregation sort it out
            # — but still report which LFs failed the pruning step, so
            # diagnostics don't claim nothing was pruned in exactly the case
            # where everything was.
            return LabelPickResult(
                selected_indices=list(range(n_lfs)),
                pruned_low_accuracy=pruned_low,
            )

        if len(pseudo_labels) < self.min_queries or len(survivors) < 2:
            return LabelPickResult(
                selected_indices=survivors,
                pruned_low_accuracy=pruned_low,
            )

        selected, pruned_structure = self._markov_blanket_select(
            survivors, query_label_matrix, pseudo_labels, state
        )
        if not selected:
            return LabelPickResult(
                selected_indices=survivors,
                pruned_low_accuracy=pruned_low,
                used_structure_learning=True,
            )
        return LabelPickResult(
            selected_indices=selected,
            pruned_low_accuracy=pruned_low,
            pruned_structure=pruned_structure,
            used_structure_learning=True,
        )

    # -------------------------------------------------------------- internals
    def _accuracy_prune(
        self,
        valid_label_matrix: np.ndarray,
        valid_labels: np.ndarray,
        threshold: float,
    ) -> tuple[list[int], list[int]]:
        """Drop LFs whose validation accuracy is at or below *threshold*.

        Fully vectorised: one masked reduction over the ``(n_valid, n_lfs)``
        matrix instead of a Python loop over columns, expressed as a
        backend-pure statistic (jit-compiled on capable backends).
        """
        backend = get_backend(self.backend)
        scores = labelpick_score_fn(backend)
        n_fired, accuracy = scores(
            backend.asarray(valid_label_matrix, dtype=int),
            backend.asarray(np.asarray(valid_labels, dtype=int), dtype=int),
            ABSTAIN,
        )
        n_fired = backend.to_numpy(n_fired)
        accuracy = backend.to_numpy(accuracy)
        # An LF that never fires on the validation set provides no evidence
        # either way; keep it (the structure step can still drop it).
        pruned_mask = (n_fired > 0) & (accuracy <= threshold)
        survivors = np.flatnonzero(~pruned_mask).tolist()
        pruned = np.flatnonzero(pruned_mask).tolist()
        return survivors, pruned

    #: Identity shrinkage applied to the query-set covariance before the
    #: graphical lasso (the labelled subset is tiny early in a run).
    COV_SHRINKAGE = 0.1
    #: Outer-sweep budget and tolerance of the per-refit graphical lasso.
    GLASSO_MAX_ITER = 20
    GLASSO_TOL = 1e-3
    #: Relative tolerance used instead of :attr:`GLASSO_TOL` when
    #: ``early_stop`` is on: sweeps stop once the covariance changes by less
    #: than 1% of its own mean absolute entry.
    GLASSO_EARLY_STOP_RTOL = 1e-2

    def _markov_blanket_select(
        self,
        survivors: list[int],
        query_label_matrix: np.ndarray,
        pseudo_labels: np.ndarray,
        state: LabelPickState | None = None,
    ) -> tuple[list[int], list[int]]:
        """Keep survivors adjacent to the label in the glasso dependency graph."""
        data = np.column_stack([
            query_label_matrix[:, survivors].astype(float),
            np.asarray(pseudo_labels, dtype=float),
        ])
        # Degenerate columns (constant output on every query instance) make
        # the covariance singular; the shrinkage applied below handles that,
        # but a fully constant matrix carries no structure.
        if np.allclose(data.std(axis=0), 0.0):
            return list(survivors), []

        if state is None:
            result = graphical_lasso(
                data,
                alpha=self.glasso_alpha,
                shrinkage=self.COV_SHRINKAGE,
                max_iter=self.GLASSO_MAX_ITER,
                tol=self._glasso_tol(),
                backend=self.backend,
                early_stop=self.early_stop,
            )
        else:
            result = self._incremental_glasso(
                state, survivors, query_label_matrix, pseudo_labels
            )
        label_index = data.shape[1] - 1
        blanket = markov_blanket(result.precision, target=label_index)
        selected = [survivors[i] for i in blanket if i < len(survivors)]
        pruned = [j for j in survivors if j not in selected]
        return selected, pruned

    def _incremental_glasso(
        self,
        state: LabelPickState,
        survivors: list[int],
        query_label_matrix: np.ndarray,
        pseudo_labels: np.ndarray,
    ) -> GraphicalLassoResult:
        """Structure learning resumed from the carried :class:`LabelPickState`.

        The covariance accumulator absorbs only the rows/columns appended
        since the previous refit, and the glasso iterates are seeded from
        the previous estimate with shared survivors intersection-mapped onto
        their new positions (brand-new or re-ordered-away variables keep the
        cold initialisation).  The optimisation problem itself is unchanged,
        so the selection agrees with the cold path up to solver tolerance.
        """
        if state.covariance is None:
            state.covariance = RunningCovariance()
        # Accumulator layout: [pseudo-label | LF_0 | LF_1 | ...] so both the
        # label column (position 0) and the LF columns keep stable positions
        # as the LF set grows.
        state.covariance.update(
            np.column_stack([
                np.asarray(pseudo_labels, dtype=float),
                np.asarray(query_label_matrix, dtype=float),
            ])
        )
        variables = [1 + j for j in survivors] + [0]
        # Sub-blocks of the full covariance are the sub-matrix covariances
        # exactly; shrinkage must target the sub-block's own scale.
        covariance = shrink_covariance(
            state.covariance.covariance()[np.ix_(variables, variables)],
            self.COV_SHRINKAGE,
        )

        warm_start_map = None
        if state.glasso_result is not None and state.glasso_survivors is not None:
            previous_position = {
                j: position for position, j in enumerate(state.glasso_survivors)
            }
            warm_start_map = np.array(
                [previous_position.get(j, -1) for j in survivors]
                + [len(state.glasso_survivors)],
                dtype=int,
            )
        result = graphical_lasso(
            covariance,
            alpha=self.glasso_alpha,
            from_covariance=True,
            max_iter=self.GLASSO_MAX_ITER,
            tol=self._glasso_tol(),
            warm_start=state.glasso_result,
            warm_start_map=warm_start_map,
            backend=self.backend,
            early_stop=self.early_stop,
        )
        state.glasso_result = result
        state.glasso_survivors = list(survivors)
        state.n_fits += 1
        state.n_sweeps += result.n_iter
        if result.warm_started:
            state.n_warm_fits += 1
        return result

    def _glasso_tol(self) -> float:
        """The glasso tolerance matching the configured stopping semantics."""
        return self.GLASSO_EARLY_STOP_RTOL if self.early_stop else self.GLASSO_TOL
