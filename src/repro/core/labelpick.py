"""LabelPick: label-function selection (paper Section 3.4).

LabelPick reduces LF selection to feature selection in a supervised setting:

1. **Accuracy pruning** — evaluate every candidate LF on the holdout
   validation set and drop LFs performing worse than random guessing.
2. **Markov-blanket selection** — build the small labelled dataset
   ``L_Lambda = {(Lambda_t(x_li), y~_li)}`` of LF outputs on the query
   instances paired with their pseudo-labels, estimate the dependency
   structure between LFs and the label with the graphical lasso, and keep
   only the LFs adjacent to the label (its Markov blanket).

When too few query instances have been collected for structure learning to
be meaningful, only the accuracy-pruning step applies (all surviving LFs are
kept), and if the estimated blanket is empty the pruned set is likewise kept
— pruning to zero LFs would silence the label model entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphical.glasso import graphical_lasso
from repro.graphical.markov_blanket import markov_blanket
from repro.labeling.lf import ABSTAIN, LabelFunction


@dataclass
class LabelPickResult:
    """Outcome of one LabelPick selection pass.

    Attributes
    ----------
    selected_indices:
        Indices (into the full LF list) of the selected LFs.
    pruned_low_accuracy:
        Indices that failed the accuracy-pruning step.  Normally disjoint
        from ``selected_indices``, except in the keep-all fallback (every LF
        failed pruning and all were resurrected), where both lists cover the
        full LF set.
    pruned_structure:
        Indices dropped by the Markov-blanket step.
    used_structure_learning:
        Whether the graphical-lasso step actually ran.
    """

    selected_indices: list[int]
    pruned_low_accuracy: list[int] = field(default_factory=list)
    pruned_structure: list[int] = field(default_factory=list)
    used_structure_learning: bool = False

    def select(self, lfs: list[LabelFunction]) -> list[LabelFunction]:
        """Return the selected subset of *lfs*."""
        return [lfs[i] for i in self.selected_indices]


class LabelPick:
    """Accuracy pruning + graphical-lasso Markov-blanket LF selection.

    Parameters
    ----------
    glasso_alpha:
        L1 penalty of the graphical lasso.
    min_queries:
        Minimum number of pseudo-labelled query instances before structure
        learning is attempted.
    accuracy_threshold:
        Validation accuracy below which an LF is pruned.  ``None`` uses the
        better-than-random bound ``1 / n_classes``.
    """

    def __init__(
        self,
        glasso_alpha: float = 0.01,
        min_queries: int = 8,
        accuracy_threshold: float | None = None,
    ):
        if glasso_alpha < 0:
            raise ValueError("glasso_alpha must be non-negative")
        if min_queries < 2:
            raise ValueError("min_queries must be >= 2")
        self.glasso_alpha = glasso_alpha
        self.min_queries = min_queries
        self.accuracy_threshold = accuracy_threshold

    # ---------------------------------------------------------------- select
    def select(
        self,
        lfs: list[LabelFunction],
        valid_label_matrix: np.ndarray,
        valid_labels: np.ndarray,
        query_label_matrix: np.ndarray,
        pseudo_labels: np.ndarray,
        n_classes: int,
    ) -> LabelPickResult:
        """Run both LabelPick stages and return the selection result.

        Parameters
        ----------
        lfs:
            The full candidate LF list ``Lambda_t``.
        valid_label_matrix:
            LF outputs on the validation set, shape ``(n_valid, n_lfs)``.
        valid_labels:
            Ground-truth validation labels.
        query_label_matrix:
            LF outputs on the query instances, shape ``(n_queries, n_lfs)``.
        pseudo_labels:
            Pseudo-labels of the query instances.
        n_classes:
            Number of classes in the task.
        """
        n_lfs = len(lfs)
        if n_lfs == 0:
            return LabelPickResult(selected_indices=[])
        if valid_label_matrix.shape[1] != n_lfs or query_label_matrix.shape[1] != n_lfs:
            raise ValueError("label matrices must have one column per LF")

        threshold = (
            self.accuracy_threshold
            if self.accuracy_threshold is not None
            else 1.0 / n_classes
        )
        survivors, pruned_low = self._accuracy_prune(
            valid_label_matrix, valid_labels, threshold
        )
        if not survivors:
            # Never silence the label model completely: if every LF fails the
            # validation check, keep them all and let aggregation sort it out
            # — but still report which LFs failed the pruning step, so
            # diagnostics don't claim nothing was pruned in exactly the case
            # where everything was.
            return LabelPickResult(
                selected_indices=list(range(n_lfs)),
                pruned_low_accuracy=pruned_low,
            )

        if len(pseudo_labels) < self.min_queries or len(survivors) < 2:
            return LabelPickResult(
                selected_indices=survivors,
                pruned_low_accuracy=pruned_low,
            )

        selected, pruned_structure = self._markov_blanket_select(
            survivors, query_label_matrix, pseudo_labels
        )
        if not selected:
            return LabelPickResult(
                selected_indices=survivors,
                pruned_low_accuracy=pruned_low,
                used_structure_learning=True,
            )
        return LabelPickResult(
            selected_indices=selected,
            pruned_low_accuracy=pruned_low,
            pruned_structure=pruned_structure,
            used_structure_learning=True,
        )

    # -------------------------------------------------------------- internals
    def _accuracy_prune(
        self,
        valid_label_matrix: np.ndarray,
        valid_labels: np.ndarray,
        threshold: float,
    ) -> tuple[list[int], list[int]]:
        """Drop LFs whose validation accuracy is at or below *threshold*.

        Fully vectorised: one masked reduction over the ``(n_valid, n_lfs)``
        matrix instead of a Python loop over columns.
        """
        valid_labels = np.asarray(valid_labels, dtype=int)
        fired = valid_label_matrix != ABSTAIN
        n_fired = fired.sum(axis=0)
        n_correct = (fired & (valid_label_matrix == valid_labels[:, None])).sum(axis=0)
        accuracy = n_correct / np.maximum(n_fired, 1)
        # An LF that never fires on the validation set provides no evidence
        # either way; keep it (the structure step can still drop it).
        pruned_mask = (n_fired > 0) & (accuracy <= threshold)
        survivors = np.flatnonzero(~pruned_mask).tolist()
        pruned = np.flatnonzero(pruned_mask).tolist()
        return survivors, pruned

    def _markov_blanket_select(
        self,
        survivors: list[int],
        query_label_matrix: np.ndarray,
        pseudo_labels: np.ndarray,
    ) -> tuple[list[int], list[int]]:
        """Keep survivors adjacent to the label in the glasso dependency graph."""
        data = np.column_stack([
            query_label_matrix[:, survivors].astype(float),
            np.asarray(pseudo_labels, dtype=float),
        ])
        # Degenerate columns (constant output on every query instance) make
        # the covariance singular; the shrinkage inside graphical_lasso
        # handles that, but a fully constant matrix carries no structure.
        if np.allclose(data.std(axis=0), 0.0):
            return list(survivors), []

        result = graphical_lasso(
            data, alpha=self.glasso_alpha, shrinkage=0.1, max_iter=20, tol=1e-3
        )
        label_index = data.shape[1] - 1
        blanket = markov_blanket(result.precision, target=label_index)
        selected = [survivors[i] for i in blanket if i < len(survivors)]
        pruned = [j for j in survivors if j not in selected]
        return selected, pruned
