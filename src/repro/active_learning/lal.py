"""Learning Active Learning (LAL) sampler.

LAL [Konyushkova et al. 2017] replaces hand-crafted query heuristics with a
regressor that predicts, from features of the current model state and of a
candidate instance, the expected error reduction obtained by labelling that
candidate.  The original uses random-forest regressors trained offline on
synthetic episodes; this reproduction keeps the same idea at laptop scale:

* state/instance features: predictive entropy, top-class probability, margin,
  distance to the labelled set, labelled-set size and class balance;
* the regressor is a ridge regression fitted online from Monte-Carlo
  episodes simulated on the already-queried (pseudo-)labelled subset —
  repeatedly hold out one labelled point, train the model without it, and
  record how much adding it back improves hold-out accuracy.

When too few labelled points exist to simulate episodes the sampler falls
back to uncertainty sampling, matching the "cold start with a heuristic"
behaviour of AliPy's implementation.
"""

from __future__ import annotations

import numpy as np

from repro.active_learning.base import BaseSampler, QueryContext, prediction_entropy
from repro.labeling.lf import ABSTAIN
from repro.models.logistic_regression import LogisticRegression


class LALSampler(BaseSampler):
    """Regression-based expected-error-reduction sampler.

    Parameters
    ----------
    n_episodes:
        Number of Monte-Carlo leave-one-out episodes used to fit the utility
        regressor at each selection step.
    ridge:
        L2 regularisation of the utility regressor.
    min_labeled:
        Minimum number of labelled instances (with both classes present)
        before the learned regressor is used instead of plain uncertainty.
    """

    name = "lal"

    def __init__(self, n_episodes: int = 12, ridge: float = 1.0, min_labeled: int = 8):
        if n_episodes < 1:
            raise ValueError("n_episodes must be >= 1")
        if ridge <= 0:
            raise ValueError("ridge must be positive")
        self.n_episodes = n_episodes
        self.ridge = ridge
        self.min_labeled = min_labeled

    # -------------------------------------------------------------- selection
    def select(self, context: QueryContext) -> int:
        """Return the candidate with the highest predicted utility."""
        proba = context.al_proba if context.al_proba is not None else context.lm_proba
        labeled_idx, labels = self._labeled_subset(context)

        usable = (
            proba is not None
            and labeled_idx.size >= self.min_labeled
            and len(np.unique(labels)) >= 2
        )
        if not usable:
            return self._uncertainty_fallback(context, proba)

        weights = self._fit_utility_regressor(context, labeled_idx, labels)
        if weights is None:
            return self._uncertainty_fallback(context, proba)

        state_features = self._candidate_features(context, proba, labeled_idx, labels)
        scores = state_features @ weights
        return self._argmax_with_ties(scores, context.candidates, context.rng)

    # --------------------------------------------------------------- helpers
    def _labeled_subset(self, context: QueryContext) -> tuple[np.ndarray, np.ndarray]:
        if context.queried_indices.size == 0:
            return np.array([], dtype=int), np.array([], dtype=int)
        mask = context.queried_labels != ABSTAIN
        return context.queried_indices[mask], context.queried_labels[mask]

    def _uncertainty_fallback(self, context: QueryContext, proba) -> int:
        if proba is None:
            return int(context.rng.choice(context.candidates))
        scores = prediction_entropy(np.asarray(proba)[context.candidates])
        return self._argmax_with_ties(scores, context.candidates, context.rng)

    def _candidate_features(
        self,
        context: QueryContext,
        proba: np.ndarray,
        labeled_idx: np.ndarray,
        labels: np.ndarray,
    ) -> np.ndarray:
        """Build the LAL state/instance feature matrix for the candidates."""
        candidate_proba = np.asarray(proba)[context.candidates]
        entropy = prediction_entropy(candidate_proba)
        top = candidate_proba.max(axis=1)
        sorted_proba = np.sort(candidate_proba, axis=1)
        margin = sorted_proba[:, -1] - sorted_proba[:, -2]

        labeled_features = context.features[labeled_idx]
        candidates = context.features[context.candidates]
        distances = np.array([
            np.min(np.linalg.norm(labeled_features - candidate, axis=1))
            for candidate in candidates
        ])
        n_labeled = len(labeled_idx) / max(len(context.features), 1)
        balance = np.bincount(labels, minlength=context.n_classes).max() / max(len(labels), 1)

        ones = np.ones(len(candidates))
        return np.column_stack([
            ones, entropy, top, margin, distances, n_labeled * ones, balance * ones,
        ])

    def _fit_utility_regressor(
        self,
        context: QueryContext,
        labeled_idx: np.ndarray,
        labels: np.ndarray,
    ) -> np.ndarray | None:
        """Fit ridge regression of accuracy gain on state features via episodes."""
        rng = context.rng
        features = context.features
        episode_X, episode_y = [], []
        n_labeled = len(labeled_idx)

        for _ in range(self.n_episodes):
            held_out = int(rng.integers(n_labeled))
            train_mask = np.ones(n_labeled, dtype=bool)
            train_mask[held_out] = False
            train_ids = labeled_idx[train_mask]
            train_labels = labels[train_mask]
            if len(np.unique(train_labels)) < 2:
                continue

            base_model = LogisticRegression(n_classes=context.n_classes, max_iter=50)
            base_model.fit(features[train_ids], train_labels)
            eval_ids = labeled_idx
            base_acc = base_model.score(features[eval_ids], labels)

            grown_model = LogisticRegression(n_classes=context.n_classes, max_iter=50)
            grown_model.fit(features[labeled_idx], labels)
            grown_acc = grown_model.score(features[eval_ids], labels)

            proba_held = base_model.predict_proba(features[labeled_idx[held_out]][None, :])
            entropy = prediction_entropy(proba_held)[0]
            top = proba_held.max()
            margin = np.sort(proba_held[0])[-1] - np.sort(proba_held[0])[-2]
            distance = float(np.min(
                np.linalg.norm(features[train_ids] - features[labeled_idx[held_out]], axis=1)
            )) if len(train_ids) else 0.0
            n_frac = len(train_ids) / max(len(features), 1)
            balance = np.bincount(train_labels, minlength=context.n_classes).max() / max(len(train_labels), 1)

            episode_X.append([1.0, entropy, top, margin, distance, n_frac, balance])
            episode_y.append(grown_acc - base_acc)

        if len(episode_X) < 3:
            return None
        X = np.asarray(episode_X)
        y = np.asarray(episode_y)
        gram = X.T @ X + self.ridge * np.eye(X.shape[1])
        return np.linalg.solve(gram, X.T @ y)
