"""Density-weighted uncertainty sampling.

Weights each candidate's predictive entropy by its average similarity to the
rest of the pool [Settles & Craven 2008], so queries concentrate on instances
that are both uncertain and representative (rather than outliers).
"""

from __future__ import annotations

import numpy as np

from repro.active_learning.base import BaseSampler, QueryContext, prediction_entropy


class DensityWeightedSampler(BaseSampler):
    """Entropy times cosine-similarity density, with a density exponent beta.

    Parameters
    ----------
    beta:
        Exponent on the density term (beta=0 recovers plain uncertainty
        sampling; larger values favour representative instances more).
    max_reference:
        Number of pool instances used to estimate density (subsampled for
        speed on large pools).
    """

    name = "density"

    def __init__(self, beta: float = 1.0, max_reference: int = 500):
        if beta < 0:
            raise ValueError("beta must be non-negative")
        if max_reference < 1:
            raise ValueError("max_reference must be >= 1")
        self.beta = beta
        self.max_reference = max_reference

    def select(self, context: QueryContext) -> int:
        """Return the candidate maximising entropy x density^beta."""
        proba = context.al_proba if context.al_proba is not None else context.lm_proba
        if proba is None:
            return int(context.rng.choice(context.candidates))
        entropy = prediction_entropy(np.asarray(proba)[context.candidates])

        features = context.features
        n_pool = features.shape[0]
        if n_pool > self.max_reference:
            reference_idx = context.rng.choice(n_pool, size=self.max_reference, replace=False)
        else:
            reference_idx = np.arange(n_pool)
        reference = features[reference_idx]
        candidates = features[context.candidates]

        ref_norms = np.linalg.norm(reference, axis=1)
        ref_norms[ref_norms == 0.0] = 1.0
        cand_norms = np.linalg.norm(candidates, axis=1)
        cand_norms[cand_norms == 0.0] = 1.0
        similarity = (candidates @ reference.T) / np.outer(cand_norms, ref_norms)
        density = similarity.mean(axis=1)
        density = np.clip(density, 0.0, None)

        scores = entropy * np.power(density + 1e-12, self.beta)
        return self._argmax_with_ties(scores, context.candidates, context.rng)
