"""Uncertainty-based samplers: maximum entropy and minimum margin.

Uncertainty sampling [Lewis 1995] queries the instance whose current model
prediction has the highest entropy; margin sampling queries the instance with
the smallest gap between the top two class probabilities.  Both prefer the
active-learning model's probabilities and fall back to the label model's
(and finally to random choice) when no model is available yet.
"""

from __future__ import annotations

import numpy as np

from repro.active_learning.base import BaseSampler, QueryContext, prediction_entropy


def _pick_proba(context: QueryContext) -> np.ndarray | None:
    if context.al_proba is not None:
        return context.al_proba
    return context.lm_proba


class UncertaintySampler(BaseSampler):
    """Maximum predictive-entropy sampling."""

    name = "uncertainty"

    def select(self, context: QueryContext) -> int:
        """Return the candidate with the highest prediction entropy."""
        proba = _pick_proba(context)
        if proba is None:
            return int(context.rng.choice(context.candidates))
        scores = prediction_entropy(proba[context.candidates])
        return self._argmax_with_ties(scores, context.candidates, context.rng)


class MarginSampler(BaseSampler):
    """Smallest-margin sampling (top-1 minus top-2 probability)."""

    name = "margin"

    def select(self, context: QueryContext) -> int:
        """Return the candidate with the smallest top-two probability margin."""
        proba = _pick_proba(context)
        if proba is None:
            return int(context.rng.choice(context.candidates))
        candidate_proba = np.asarray(proba)[context.candidates]
        sorted_proba = np.sort(candidate_proba, axis=1)
        margins = sorted_proba[:, -1] - sorted_proba[:, -2]
        # Smaller margin = more informative, so maximise the negated margin.
        return self._argmax_with_ties(-margins, context.candidates, context.rng)
