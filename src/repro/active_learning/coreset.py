"""Core-set (k-center greedy) sampling.

Selects the candidate farthest (in feature space) from the set of already
queried instances [Sener & Savarese 2018], which spreads queries across the
pool and avoids redundant annotations.
"""

from __future__ import annotations

import numpy as np

from repro.active_learning.base import BaseSampler, QueryContext


class CoreSetSampler(BaseSampler):
    """Greedy k-center selection over Euclidean feature distances."""

    name = "coreset"

    def select(self, context: QueryContext) -> int:
        """Return the candidate with maximal distance to its nearest queried point."""
        if context.queried_indices.size == 0:
            return int(context.rng.choice(context.candidates))
        candidates = context.features[context.candidates]
        queried = context.features[context.queried_indices]
        # Pairwise distances candidate x queried, computed blockwise to keep
        # memory bounded for large pools.
        min_distances = np.full(len(candidates), np.inf)
        block = 2048
        for start in range(0, len(candidates), block):
            chunk = candidates[start:start + block]
            distances = np.linalg.norm(chunk[:, None, :] - queried[None, :, :], axis=2)
            min_distances[start:start + block] = distances.min(axis=1)
        return self._argmax_with_ties(min_distances, context.candidates, context.rng)
