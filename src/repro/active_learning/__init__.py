"""Active-learning substrate: query-instance selection strategies.

All samplers implement the same interface (:class:`BaseSampler.select`)
against a :class:`QueryContext` that carries the unlabeled pool, the current
active-learning-model and label-model predictions, and the query history.
The ADP sampler of the paper lives here alongside the baselines it is
compared against in Table 4 (passive, uncertainty, LAL, SEU) and several
classical strategies (margin, query-by-committee, core-set, density).
"""

from repro.active_learning.base import BaseSampler, QueryContext, prediction_entropy
from repro.active_learning.passive import PassiveSampler
from repro.active_learning.uncertainty import MarginSampler, UncertaintySampler
from repro.active_learning.committee import QueryByCommitteeSampler
from repro.active_learning.coreset import CoreSetSampler
from repro.active_learning.density import DensityWeightedSampler
from repro.active_learning.lal import LALSampler
from repro.active_learning.seu import SEUSampler
from repro.active_learning.adp import ADPSampler

__all__ = [
    "BaseSampler",
    "QueryContext",
    "prediction_entropy",
    "PassiveSampler",
    "UncertaintySampler",
    "MarginSampler",
    "QueryByCommitteeSampler",
    "CoreSetSampler",
    "DensityWeightedSampler",
    "LALSampler",
    "SEUSampler",
    "ADPSampler",
    "get_sampler",
]

_REGISTRY = {
    "passive": PassiveSampler,
    "uncertainty": UncertaintySampler,
    "us": UncertaintySampler,
    "margin": MarginSampler,
    "qbc": QueryByCommitteeSampler,
    "coreset": CoreSetSampler,
    "density": DensityWeightedSampler,
    "lal": LALSampler,
    "seu": SEUSampler,
    "adp": ADPSampler,
}


def get_sampler(name: str, **kwargs) -> BaseSampler:
    """Instantiate a sampler by registry name (see Table 4 of the paper)."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown sampler {name!r}; choose from {sorted(set(_REGISTRY))}"
        ) from None
    return cls(**kwargs)
