"""Query-by-committee sampling.

Trains a small committee of heterogeneous classifiers on the currently
pseudo-labelled instances and queries the candidate with the highest vote
entropy [Seung et al. 1992].  Falls back to random selection while fewer than
two classes have been observed.
"""

from __future__ import annotations

import numpy as np

from repro.active_learning.base import BaseSampler, QueryContext
from repro.labeling.lf import ABSTAIN
from repro.models.logistic_regression import LogisticRegression
from repro.models.naive_bayes import GaussianNaiveBayes


class QueryByCommitteeSampler(BaseSampler):
    """Vote-entropy query-by-committee over a small mixed committee.

    Parameters
    ----------
    n_lr_members:
        Number of logistic-regression committee members (with different
        regularisation strengths) in addition to one naive-Bayes member.
    """

    name = "qbc"

    def __init__(self, n_lr_members: int = 2):
        if n_lr_members < 1:
            raise ValueError("n_lr_members must be >= 1")
        self.n_lr_members = n_lr_members

    def select(self, context: QueryContext) -> int:
        """Return the candidate on which the committee disagrees the most."""
        labeled_mask = context.queried_labels != ABSTAIN if context.queried_labels.size else np.array([], dtype=bool)
        labeled_idx = context.queried_indices[labeled_mask] if context.queried_indices.size else np.array([], dtype=int)
        labels = context.queried_labels[labeled_mask] if context.queried_labels.size else np.array([], dtype=int)

        if labeled_idx.size < 2 or len(np.unique(labels)) < 2:
            return int(context.rng.choice(context.candidates))

        X_labeled = context.features[labeled_idx]
        committee = [
            LogisticRegression(C=10.0 ** (i - self.n_lr_members // 2),
                               n_classes=context.n_classes)
            for i in range(self.n_lr_members)
        ]
        committee.append(GaussianNaiveBayes(n_classes=context.n_classes))

        X_candidates = context.features[context.candidates]
        votes = np.zeros((len(context.candidates), context.n_classes))
        for member in committee:
            member.fit(X_labeled, labels)
            predictions = member.predict(X_candidates)
            for row, pred in enumerate(predictions):
                votes[row, pred] += 1.0
        vote_proba = votes / votes.sum(axis=1, keepdims=True)
        clipped = np.clip(vote_proba, 1e-12, 1.0)
        vote_entropy = -np.sum(clipped * np.log(clipped), axis=1)
        return self._argmax_with_ties(vote_entropy, context.candidates, context.rng)
