"""Sampler interface and shared query context.

A sampler picks the next query instance from the unlabeled pool.  The
:class:`QueryContext` gives every strategy a uniform view of the state of an
interactive run: pool features, the current predictions of the
active-learning model and of the label model (either may be missing early in
a run), which instances have already been queried, and a seeded RNG for
tie-breaking.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import ensure_rng


def prediction_entropy(proba: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Shannon entropy of each row of a probability matrix (Eq. 3 of the paper)."""
    proba = np.asarray(proba, dtype=float)
    if proba.ndim != 2:
        raise ValueError("proba must be 2-dimensional")
    clipped = np.clip(proba, eps, 1.0)
    return -np.sum(clipped * np.log(clipped), axis=1)


@dataclass
class QueryContext:
    """State handed to a sampler when choosing the next query.

    Attributes
    ----------
    dataset:
        The training-pool dataset (gives samplers access to raw instances,
        e.g. token sets for SEU).
    candidates:
        Indices of pool instances still eligible for querying.
    al_proba:
        ``(n_pool, C)`` probabilities from the active-learning model, or
        ``None`` if it has not been trained yet.
    lm_proba:
        ``(n_pool, C)`` probabilities from the label model, or ``None``.
    queried_indices:
        Pool indices already shown to the user, in query order.
    queried_labels:
        Pseudo-labels collected for the queried instances (``-1`` when the
        user's response produced no label).
    iteration:
        Zero-based iteration number.
    rng:
        Seeded generator for any randomised tie-breaking.
    """

    dataset: object
    candidates: np.ndarray
    al_proba: np.ndarray | None = None
    lm_proba: np.ndarray | None = None
    queried_indices: np.ndarray = field(default_factory=lambda: np.array([], dtype=int))
    queried_labels: np.ndarray = field(default_factory=lambda: np.array([], dtype=int))
    iteration: int = 0
    rng: np.random.Generator = field(default_factory=ensure_rng)

    def __post_init__(self):
        self.candidates = np.asarray(self.candidates, dtype=int)
        if self.candidates.size == 0:
            raise ValueError("QueryContext requires at least one candidate")
        self.queried_indices = np.asarray(self.queried_indices, dtype=int)
        self.queried_labels = np.asarray(self.queried_labels, dtype=int)

    @property
    def features(self) -> np.ndarray:
        """Model-ready feature matrix of the pool."""
        return self.dataset.features

    @property
    def n_classes(self) -> int:
        """Number of classes in the task."""
        return self.dataset.n_classes


class BaseSampler(abc.ABC):
    """Query-selection strategy interface."""

    name: str = "base"

    @abc.abstractmethod
    def select(self, context: QueryContext) -> int:
        """Return the pool index of the next instance to show the user."""

    def _argmax_with_ties(self, scores: np.ndarray, candidates: np.ndarray,
                          rng: np.random.Generator) -> int:
        """Argmax over candidate scores with uniform random tie-breaking."""
        scores = np.asarray(scores, dtype=float)
        best = scores.max()
        ties = candidates[np.flatnonzero(np.isclose(scores, best))]
        return int(rng.choice(ties))
