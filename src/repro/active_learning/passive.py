"""Passive (random) sampling baseline."""

from __future__ import annotations

from repro.active_learning.base import BaseSampler, QueryContext


class PassiveSampler(BaseSampler):
    """Select a query instance uniformly at random from the candidates."""

    name = "passive"

    def select(self, context: QueryContext) -> int:
        """Return a uniformly random candidate index."""
        return int(context.rng.choice(context.candidates))
