"""ADP sampler: the query-selection strategy proposed by ActiveDP (Section 3.3).

ActiveDP combines the predictions of an active-learning model and a label
model, so its sampler balances two goals: improving the AL model and guiding
the user toward helpful LFs.  The ADP sampler selects the instance maximising
the weighted geometric combination of both models' predictive entropies
(Eq. 2 of the paper):

    x* = argmax_x  Ent(f_a(x))^alpha * Ent(f_l(x, Lambda))^(1 - alpha)

with ``alpha = 0.5`` for textual datasets and ``alpha = 0.99`` for tabular
datasets in the paper's experiments.
"""

from __future__ import annotations

import numpy as np

from repro.active_learning.base import BaseSampler, QueryContext, prediction_entropy


class ADPSampler(BaseSampler):
    """Entropy-product sampler balancing the AL model and the label model.

    Parameters
    ----------
    alpha:
        Trade-off factor in ``[0, 1]``; weight of the active-learning model's
        entropy (the label model's entropy gets weight ``1 - alpha``).
    """

    name = "adp"

    def __init__(self, alpha: float = 0.5):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha

    def select(self, context: QueryContext) -> int:
        """Return the candidate maximising the weighted entropy product (Eq. 2)."""
        al_proba = context.al_proba
        lm_proba = context.lm_proba

        if al_proba is None and lm_proba is None:
            return int(context.rng.choice(context.candidates))

        candidates = context.candidates
        eps = 1e-12
        if al_proba is not None:
            al_entropy = prediction_entropy(np.asarray(al_proba)[candidates])
        else:
            al_entropy = np.ones(len(candidates))
        if lm_proba is not None:
            lm_entropy = prediction_entropy(np.asarray(lm_proba)[candidates])
        else:
            lm_entropy = np.ones(len(candidates))

        scores = np.power(al_entropy + eps, self.alpha) * np.power(lm_entropy + eps, 1.0 - self.alpha)
        return self._argmax_with_ties(scores, candidates, context.rng)
