"""Select-by-Expected-Utility (SEU) sampler from Nemo.

Nemo [Hsieh et al. 2022] selects the query instance whose *anticipated user
label function* is expected to be most useful for the downstream pipeline.
For textual data the candidate LF space of an instance is the set of keyword
LFs whose keyword occurs in the instance, and the utility of a keyword LF is
(roughly) how much of the currently-uncertain unlabeled mass it would cover.

This reproduction scores each candidate instance by

    score(x) = mean over keywords w in x of  coverage(w) * mean_entropy(w)

where ``coverage(w)`` is the fraction of pool documents containing *w* and
``mean_entropy(w)`` is the average label-model (or AL-model) entropy over
those documents — i.e. an LF is useful when it fires on many instances the
current pipeline is still unsure about.  For tabular datasets (where the
paper does not run Nemo) the sampler degrades to uncertainty sampling.
"""

from __future__ import annotations

import numpy as np

from repro.active_learning.base import BaseSampler, QueryContext, prediction_entropy


class SEUSampler(BaseSampler):
    """Expected-utility sampling over the anticipated keyword-LF space.

    Parameters
    ----------
    max_keywords_per_doc:
        Cap on the number of keywords scored per candidate document (the
        most document-frequent keywords are kept), bounding the per-step cost.
    """

    name = "seu"

    def __init__(self, max_keywords_per_doc: int = 30):
        if max_keywords_per_doc < 1:
            raise ValueError("max_keywords_per_doc must be >= 1")
        self.max_keywords_per_doc = max_keywords_per_doc

    def select(self, context: QueryContext) -> int:
        """Return the candidate whose anticipated LF has maximal expected utility."""
        token_sets = getattr(context.dataset, "token_sets", None)
        proba = context.lm_proba if context.lm_proba is not None else context.al_proba
        if token_sets is None:
            # Tabular data: no keyword-LF space; fall back to uncertainty.
            if proba is None:
                return int(context.rng.choice(context.candidates))
            scores = prediction_entropy(np.asarray(proba)[context.candidates])
            return self._argmax_with_ties(scores, context.candidates, context.rng)

        entropy = (
            prediction_entropy(np.asarray(proba))
            if proba is not None
            else np.ones(len(token_sets))
        )

        keyword_docs = self._keyword_index(token_sets)
        n_docs = len(token_sets)
        keyword_utility: dict[str, float] = {}
        for keyword, doc_ids in keyword_docs.items():
            coverage = len(doc_ids) / n_docs
            keyword_utility[keyword] = coverage * float(np.mean(entropy[doc_ids]))

        scores = np.zeros(len(context.candidates))
        for row, idx in enumerate(context.candidates):
            keywords = list(token_sets[idx])
            if not keywords:
                continue
            keywords.sort(key=lambda w: len(keyword_docs.get(w, ())), reverse=True)
            keywords = keywords[: self.max_keywords_per_doc]
            scores[row] = float(np.mean([keyword_utility.get(w, 0.0) for w in keywords]))
        return self._argmax_with_ties(scores, context.candidates, context.rng)

    @staticmethod
    def _keyword_index(token_sets) -> dict[str, np.ndarray]:
        """Map each keyword to the array of document indices containing it."""
        index: dict[str, list[int]] = {}
        for doc_id, tokens in enumerate(token_sets):
            for token in tokens:
                index.setdefault(token, []).append(doc_id)
        return {token: np.asarray(ids, dtype=int) for token, ids in index.items()}
