"""Figure 3: end-to-end performance comparison.

Runs ActiveDP and the four baselines (Nemo, IWS, Revising LF, uncertainty
sampling) on every benchmark dataset under the evaluation protocol and
collects, per framework and dataset, the downstream model's performance
curve and its average test accuracy.  Nemo is skipped on the tabular
datasets, matching the paper (its SEU strategy targets textual data).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets import DATASET_PROFILES, dataset_names
from repro.experiments.protocol import EvaluationProtocol, FrameworkResult
from repro.runner.engine import ExecutionConfig, GridJob, nest_results, run_experiment_grid

FIGURE3_FRAMEWORKS = ["activedp", "nemo", "iws", "revising_lf", "uncertainty"]


@dataclass
class Figure3Result:
    """All framework x dataset results for the end-to-end comparison.

    Attributes
    ----------
    results:
        Mapping ``dataset -> framework -> FrameworkResult``.
    protocol:
        The evaluation protocol used.
    """

    results: dict[str, dict[str, FrameworkResult]] = field(default_factory=dict)
    protocol: EvaluationProtocol = field(default_factory=EvaluationProtocol)

    def average_accuracy(self, framework: str) -> float:
        """Mean average-accuracy of a framework over the datasets it ran on."""
        values = [
            per_framework[framework].average_accuracy
            for per_framework in self.results.values()
            if framework in per_framework
        ]
        return float(np.mean(values)) if values else 0.0

    def improvement_over(self, baseline: str, method: str = "activedp") -> float:
        """Mean accuracy improvement of *method* over *baseline* (paper Section 4.2)."""
        deltas = []
        for per_framework in self.results.values():
            if baseline in per_framework and method in per_framework:
                deltas.append(
                    per_framework[method].average_accuracy
                    - per_framework[baseline].average_accuracy
                )
        return float(np.mean(deltas)) if deltas else 0.0


def run_figure3(
    protocol: EvaluationProtocol | None = None,
    datasets: list[str] | None = None,
    frameworks: list[str] | None = None,
    execution: ExecutionConfig | str | None = None,
) -> Figure3Result:
    """Run the Figure 3 end-to-end comparison and return all results.

    Parameters
    ----------
    protocol:
        Evaluation protocol (scaled-down defaults when ``None``).
    datasets:
        Dataset subset (defaults to all eight of Table 2).
    frameworks:
        Framework subset (defaults to the five of Figure 3).
    execution:
        Parallelism/caching configuration for the experiment engine — an
        :class:`ExecutionConfig` or a preset name (``"serial"``,
        ``"parallel"``, ``"distributed"``).
    """
    protocol = protocol or EvaluationProtocol()
    datasets = datasets or dataset_names()
    frameworks = frameworks or list(FIGURE3_FRAMEWORKS)

    jobs = [
        GridJob(key=(dataset, framework), framework=framework, dataset=dataset)
        for dataset in datasets
        for framework in frameworks
        if not (framework == "nemo" and DATASET_PROFILES[dataset].kind == "tabular")
    ]
    outcome = Figure3Result(protocol=protocol)
    for dataset in datasets:
        outcome.results[dataset] = {}
    nested = nest_results(run_experiment_grid(jobs, protocol, execution))
    for dataset, per_framework in nested.items():
        outcome.results[dataset].update(per_framework)
    return outcome
