"""Table 4: sensitivity of ActiveDP to the sample-selection strategy.

ActiveDP is run with five different samplers (Section 4.3.2): passive
(random), uncertainty sampling, LAL, SEU and the ADP sampler proposed by the
paper.
"""

from __future__ import annotations

from repro.core.config import ActiveDPConfig
from repro.datasets import DATASET_PROFILES, dataset_names
from repro.experiments.protocol import EvaluationProtocol, FrameworkResult
from repro.runner.engine import ExecutionConfig, GridJob, nest_results, run_experiment_grid

TABLE4_SAMPLERS: dict[str, str] = {
    "Passive": "passive",
    "US": "uncertainty",
    "LAL": "lal",
    "SEU": "seu",
    "ADP": "adp",
}


def run_table4_samplers(
    protocol: EvaluationProtocol | None = None,
    datasets: list[str] | None = None,
    samplers: list[str] | None = None,
    execution: ExecutionConfig | str | None = None,
) -> dict[str, dict[str, FrameworkResult]]:
    """Run the sampler study; returns ``sampler -> dataset -> FrameworkResult``.

    *execution* is an :class:`ExecutionConfig` or a preset name
    (``"serial"``, ``"parallel"``, ``"distributed"``).
    """
    protocol = protocol or EvaluationProtocol()
    datasets = datasets or dataset_names()
    samplers = samplers or list(TABLE4_SAMPLERS)

    jobs = [
        GridJob(
            key=(sampler_label, dataset),
            framework="activedp",
            dataset=dataset,
            pipeline_kwargs={
                "config": ActiveDPConfig.for_dataset_kind(
                    DATASET_PROFILES[dataset].kind, sampler=TABLE4_SAMPLERS[sampler_label]
                )
            },
        )
        for sampler_label in samplers
        for dataset in datasets
    ]
    return nest_results(run_experiment_grid(jobs, protocol, execution))
