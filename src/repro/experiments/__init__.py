"""Experiment harness: the paper's evaluation protocol and per-artefact runners.

``repro.experiments.protocol`` implements the evaluation protocol of
Section 4.1.3 (N simulated interactions, downstream-model evaluation every k
iterations, multi-seed averaging); the remaining modules regenerate each
artefact of the evaluation section:

* :mod:`repro.experiments.table2` — dataset statistics (Table 2);
* :mod:`repro.experiments.figure3` — end-to-end comparison curves (Figure 3);
* :mod:`repro.experiments.ablation` — ablation study (Table 3);
* :mod:`repro.experiments.samplers` — sampler study (Table 4);
* :mod:`repro.experiments.noise` — label-noise study (Table 5).
"""

from repro.experiments.protocol import (
    EvaluationProtocol,
    FrameworkResult,
    run_framework_on_dataset,
)
from repro.experiments.table2 import table2_dataset_statistics
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.ablation import run_table3_ablation
from repro.experiments.samplers import run_table4_samplers
from repro.experiments.noise import run_table5_label_noise
from repro.experiments.reporting import (
    format_curve_series,
    format_result_table,
    render_markdown_table,
)

__all__ = [
    "EvaluationProtocol",
    "FrameworkResult",
    "run_framework_on_dataset",
    "table2_dataset_statistics",
    "Figure3Result",
    "run_figure3",
    "run_table3_ablation",
    "run_table4_samplers",
    "run_table5_label_noise",
    "format_result_table",
    "format_curve_series",
    "render_markdown_table",
]
