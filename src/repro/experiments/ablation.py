"""Table 3: ablation study of LabelPick and ConFusion.

Four ActiveDP variants are compared (Section 4.3.1):

* **Baseline** — all user-returned LFs train the label model, labels come
  from the label model alone (``use_labelpick=False``, ``use_confusion=False``);
* **LabelPick** — only LF selection enabled;
* **ConFusion** — only confidence-based aggregation enabled;
* **ActiveDP** — both techniques enabled.
"""

from __future__ import annotations

from repro.core.config import ActiveDPConfig
from repro.datasets import DATASET_PROFILES, dataset_names
from repro.experiments.protocol import EvaluationProtocol, FrameworkResult
from repro.runner.engine import ExecutionConfig, GridJob, nest_results, run_experiment_grid

ABLATION_VARIANTS: dict[str, dict[str, bool]] = {
    "Baseline": {"use_labelpick": False, "use_confusion": False},
    "LabelPick": {"use_labelpick": True, "use_confusion": False},
    "ConFusion": {"use_labelpick": False, "use_confusion": True},
    "ActiveDP": {"use_labelpick": True, "use_confusion": True},
}


def run_table3_ablation(
    protocol: EvaluationProtocol | None = None,
    datasets: list[str] | None = None,
    variants: list[str] | None = None,
    execution: ExecutionConfig | str | None = None,
) -> dict[str, dict[str, FrameworkResult]]:
    """Run the ablation study; returns ``variant -> dataset -> FrameworkResult``.

    *execution* is an :class:`ExecutionConfig` or a preset name
    (``"serial"``, ``"parallel"``, ``"distributed"``).
    """
    protocol = protocol or EvaluationProtocol()
    datasets = datasets or dataset_names()
    variants = variants or list(ABLATION_VARIANTS)

    jobs = [
        GridJob(
            key=(variant, dataset),
            framework="activedp",
            dataset=dataset,
            pipeline_kwargs={
                "config": ActiveDPConfig.for_dataset_kind(
                    DATASET_PROFILES[dataset].kind, **ABLATION_VARIANTS[variant]
                )
            },
        )
        for variant in variants
        for dataset in datasets
    ]
    return nest_results(run_experiment_grid(jobs, protocol, execution))
