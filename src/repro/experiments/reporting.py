"""Plain-text / markdown rendering of experiment results.

The benchmark scripts print the same row/column structure as the paper's
tables (methods or settings as rows, datasets as columns) so the reproduced
numbers can be compared against the published ones at a glance.
"""

from __future__ import annotations

from repro.experiments.protocol import FrameworkResult


def format_result_table(
    results: dict[str, dict[str, FrameworkResult]],
    row_label: str = "Method",
    precision: int = 4,
) -> str:
    """Render ``row -> dataset -> FrameworkResult`` as an aligned text table."""
    rows = list(results)
    datasets: list[str] = []
    for per_dataset in results.values():
        for dataset in per_dataset:
            if dataset not in datasets:
                datasets.append(dataset)

    header = [row_label] + datasets
    lines = []
    widths = [max(len(header[0]), max((len(r) for r in rows), default=0))]
    widths += [max(len(d), precision + 2) for d in datasets]

    def format_row(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines.append(format_row(header))
    lines.append(format_row(["-" * w for w in widths]))
    for row in rows:
        cells = [row]
        for dataset in datasets:
            result = results[row].get(dataset)
            cells.append("-" if result is None else f"{result.average_accuracy:.{precision}f}")
        lines.append(format_row(cells))
    return "\n".join(lines)


def render_markdown_table(
    results: dict[str, dict[str, FrameworkResult]],
    row_label: str = "Method",
    precision: int = 4,
) -> str:
    """Render ``row -> dataset -> FrameworkResult`` as a GitHub-markdown table."""
    rows = list(results)
    datasets: list[str] = []
    for per_dataset in results.values():
        for dataset in per_dataset:
            if dataset not in datasets:
                datasets.append(dataset)

    lines = ["| " + " | ".join([row_label] + datasets) + " |"]
    lines.append("|" + "|".join(["---"] * (len(datasets) + 1)) + "|")
    for row in rows:
        cells = [row]
        for dataset in datasets:
            result = results[row].get(dataset)
            cells.append("-" if result is None else f"{result.average_accuracy:.{precision}f}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def format_curve_series(result: FrameworkResult, precision: int = 4) -> str:
    """Render one framework's performance curve as ``iteration:accuracy`` pairs."""
    pairs = [f"{iteration}:{accuracy:.{precision}f}" for iteration, accuracy in result.curve]
    return f"{result.framework} on {result.dataset}: " + " ".join(pairs)
