"""Table 2: datasets used in the evaluation.

Regenerates the dataset-statistics table.  Because the offline corpora are
synthetic stand-ins, each row reports both the paper's split sizes and the
sizes actually generated at the requested scale.
"""

from __future__ import annotations

from repro.datasets import dataset_names, dataset_summary, load_dataset
from repro.utils.rng import RandomState


def table2_dataset_statistics(
    scale: float = 1.0,
    random_state: RandomState = 0,
    names: list[str] | None = None,
) -> list[dict]:
    """Return one Table-2 row (dict) per benchmark dataset.

    Parameters
    ----------
    scale:
        Synthetic-corpus scale factor.
    random_state:
        Generator seed.
    names:
        Optional subset of dataset names (defaults to all eight).
    """
    rows = []
    for name in names or dataset_names():
        split = load_dataset(name, scale=scale, random_state=random_state)
        rows.append(dataset_summary(split))
    return rows
