"""Evaluation protocol (paper Section 4.1.3).

Every framework is evaluated by simulating ``n_iterations`` manual
interactions, training the downstream model and measuring its test accuracy
every ``eval_every`` iterations, and averaging the resulting performance
curve over several seeds.  The headline metric is the *average test accuracy
during the run* (area under the performance curve), which is what Tables 3-5
of the paper report.

The paper runs 300 iterations with 5 seeds on corpora of up to 25k
documents; the defaults here are scaled down so the full benchmark suite
completes in minutes, and every knob is exposed so a paper-scale run remains
a configuration change, not a code change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.results import RunHistory


@dataclass
class EvaluationProtocol:
    """Parameters of one evaluation run.

    Attributes
    ----------
    n_iterations:
        Number of simulated user interactions (paper: 300).
    eval_every:
        Evaluate the downstream model every this many iterations (paper: 10).
    n_seeds:
        Number of repetitions with different seeds (paper: 5).
    base_seed:
        Seed from which per-repetition seeds are derived.
    dataset_scale:
        Scale factor passed to :func:`repro.datasets.load_dataset`.
    end_model_C:
        Inverse regularisation of the downstream logistic regression.
    """

    n_iterations: int = 50
    eval_every: int = 10
    n_seeds: int = 2
    base_seed: int = 0
    dataset_scale: float = 1.0
    end_model_C: float = 1.0

    def __post_init__(self):
        if self.n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if self.eval_every < 1:
            raise ValueError("eval_every must be >= 1")
        if self.n_seeds < 1:
            raise ValueError("n_seeds must be >= 1")
        if self.dataset_scale <= 0:
            raise ValueError("dataset_scale must be positive")

    @classmethod
    def paper(cls, **overrides) -> "EvaluationProtocol":
        """The paper's full evaluation protocol (Section 4.1.3).

        300 simulated interactions, downstream evaluation every 10
        iterations, 5 seeds.  Keyword *overrides* replace individual fields
        (e.g. ``dataset_scale`` to run the protocol on a scaled-down corpus).
        """
        params = {"n_iterations": 300, "eval_every": 10, "n_seeds": 5}
        params.update(overrides)
        return cls(**params)

    def evaluation_iterations(self) -> list[int]:
        """Iterations (1-based counts) at which the downstream model is evaluated."""
        points = list(range(self.eval_every, self.n_iterations + 1, self.eval_every))
        if not points or points[-1] != self.n_iterations:
            points.append(self.n_iterations)
        return points


@dataclass
class FrameworkResult:
    """Aggregated result of one framework on one dataset.

    Attributes
    ----------
    framework:
        Framework name.
    dataset:
        Dataset name.
    histories:
        Per-seed run histories.
    average_accuracy:
        Mean (over seeds) of the average test accuracy during the run — the
        paper's headline metric.
    final_accuracy:
        Mean (over seeds) test accuracy at the final evaluation point.
    curve:
        Mean performance curve: list of ``(iteration, accuracy)`` pairs.
    """

    framework: str
    dataset: str
    histories: list[RunHistory] = field(default_factory=list)
    average_accuracy: float = 0.0
    final_accuracy: float = 0.0
    curve: list[tuple[int, float]] = field(default_factory=list)


def run_single_seed(
    framework: str,
    data_split,
    protocol: EvaluationProtocol,
    seed: int,
    pipeline_kwargs: dict | None = None,
) -> RunHistory:
    """Run one framework on one already-generated dataset split with one seed.

    Delegates to the engine's trial loop so the pipeline's real per-iteration
    records (query index, LF name, pseudo-label, ...) land in the history.
    """
    from repro.runner.executor import run_trial_on_split

    return run_trial_on_split(framework, data_split, protocol, seed, pipeline_kwargs)


def run_framework_on_dataset(
    framework: str,
    dataset_name: str,
    protocol: EvaluationProtocol | None = None,
    pipeline_kwargs: dict | None = None,
    execution=None,
) -> FrameworkResult:
    """Run one framework on one benchmark dataset across the protocol's seeds.

    *execution* is an optional :class:`repro.runner.ExecutionConfig` — or a
    preset name (``"serial"``, ``"parallel"``, ``"distributed"``) —
    controlling parallelism, result caching and distribution (default:
    serial, no cache).
    """
    # Imported lazily: the runner's spec/engine modules import this module.
    from repro.runner.engine import GridJob, run_experiment_grid

    protocol = protocol or EvaluationProtocol()
    key = (framework, dataset_name)
    job = GridJob(
        key=key, framework=framework, dataset=dataset_name, pipeline_kwargs=pipeline_kwargs
    )
    return run_experiment_grid([job], protocol, execution)[key]


def summarize_histories(
    framework: str, dataset_name: str, histories: list[RunHistory]
) -> FrameworkResult:
    """Aggregate per-seed histories into a :class:`FrameworkResult`."""
    average_accuracy = float(np.mean([h.average_test_accuracy() for h in histories]))
    final_accuracy = float(np.mean([h.final_test_accuracy() for h in histories]))

    curve: list[tuple[int, float]] = []
    if histories:
        reference = histories[0].evaluation_points()
        for position, (iteration, _) in enumerate(reference):
            values = []
            for history in histories:
                points = history.evaluation_points()
                if position < len(points):
                    values.append(points[position][1])
            if values:
                curve.append((iteration, float(np.mean(values))))

    return FrameworkResult(
        framework=framework,
        dataset=dataset_name,
        histories=histories,
        average_accuracy=average_accuracy,
        final_accuracy=final_accuracy,
        curve=curve,
    )
