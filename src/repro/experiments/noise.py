"""Table 5: robustness of ActiveDP to simulated label noise.

ActiveDP is run with a noisy simulated user that answers a fraction of the
queries with an LF targeting the flipped label (Section 4.3.3); noise rates
of 0 %, 5 %, 10 % and 15 % are compared.
"""

from __future__ import annotations

from repro.datasets import dataset_names
from repro.experiments.protocol import EvaluationProtocol, FrameworkResult
from repro.runner.engine import ExecutionConfig, GridJob, nest_results, run_experiment_grid

TABLE5_NOISE_RATES: tuple[float, ...] = (0.0, 0.05, 0.10, 0.15)


def run_table5_label_noise(
    protocol: EvaluationProtocol | None = None,
    datasets: list[str] | None = None,
    noise_rates: tuple[float, ...] = TABLE5_NOISE_RATES,
    execution: ExecutionConfig | str | None = None,
) -> dict[float, dict[str, FrameworkResult]]:
    """Run the label-noise study; returns ``noise_rate -> dataset -> FrameworkResult``.

    *execution* is an :class:`ExecutionConfig` or a preset name
    (``"serial"``, ``"parallel"``, ``"distributed"``).
    """
    protocol = protocol or EvaluationProtocol()
    datasets = datasets or dataset_names()

    jobs = [
        GridJob(
            key=(noise_rate, dataset),
            framework="activedp",
            dataset=dataset,
            pipeline_kwargs={"noise_rate": noise_rate},
        )
        for noise_rate in noise_rates
        for dataset in datasets
    ]
    return nest_results(run_experiment_grid(jobs, protocol, execution))
