"""Adaptive early stopping on relative loss change.

The historical EM/glasso budgets stop on *absolute* thresholds (mean
responsibility change, mean covariance change), which silently tighten or
loosen with the scale of the quantity being watched.  The early-stop path
replaces them with the relative-loss-change rule: stop when

    |loss_t - loss_{t-1}| <= rtol * max(|loss_{t-1}|, eps)

which is invariant to the loss's units and dataset size, and — because a
warm-started fit begins near its optimum — automatically turns warm starts
into *fewer* iterations rather than just cheaper ones.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Guard against a zero previous loss in the relative denominator.
_EPS = 1e-12


def relative_change(current: float, previous: float) -> float:
    """``|current - previous|`` relative to the magnitude of *previous*."""
    return abs(current - previous) / max(abs(previous), _EPS)


@dataclass
class RelativeLossStop:
    """Stateful relative-loss-change stopping rule for an iterative fit.

    Feed it the loss after every iteration; :meth:`update` returns ``True``
    once the relative change against the previous iteration drops to
    ``rtol`` or below.  The first call can never stop (there is nothing to
    compare against), so a fit always runs at least one full iteration —
    two when it must certify convergence.
    """

    rtol: float
    previous: float | None = None

    def update(self, loss: float) -> bool:
        """Record this iteration's *loss*; ``True`` means converged."""
        converged = (
            self.previous is not None
            and relative_change(loss, self.previous) <= self.rtol
        )
        self.previous = loss
        return converged
