"""Backend-pure graphical-lasso block updates and the inner lasso solver.

The numeric body of :func:`repro.graphical.glasso.graphical_lasso` — the
block coordinate-descent sweeps and the per-column lasso regressions — lives
here, written against an :class:`~repro.numerics.backend.ArrayBackend`.  The
numpy path performs the exact historical sequence of operations; other
backends substitute their array namespace and functional index updates
(:meth:`~repro.numerics.backend.ArrayBackend.set_at`).

Unlike the EM steps, these loops are *not* jit-compiled: coordinate descent
is inherently sequential with data-dependent sweep counts, and at LabelPick
problem sizes (tens of variables) tracing overhead would dwarf the compute.
The seam still buys portability and a single implementation to test.
"""

from __future__ import annotations

import numpy as np

from repro.numerics.backend import ArrayBackend


def _soft_threshold(value, threshold):
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


def lasso_cd(
    backend: ArrayBackend,
    gram,
    linear,
    alpha: float,
    max_iter: int = 200,
    tol: float = 1e-6,
    initial=None,
):
    """Minimise ``0.5 w^T Q w - b^T w + alpha * ||w||_1`` by coordinate descent.

    Arguments mirror :func:`repro.graphical.lasso.lasso_coordinate_descent`
    (which validates its inputs and then delegates here with the numpy
    backend); *gram* and *linear* must already be backend arrays or
    convertibles.
    """
    xp = backend.xp
    gram = backend.asarray(gram, dtype=float)
    linear = backend.asarray(linear, dtype=float)
    p = int(gram.shape[0])
    if initial is None:
        weights = xp.zeros(p)
    else:
        weights = backend.asarray(initial, dtype=float).copy()
    diag = xp.diagonal(gram)
    diagonal = xp.where(diag <= 0.0, 1e-12, diag)

    for _ in range(max_iter):
        max_update = 0.0
        for j in range(p):
            residual = linear[j] - gram[j] @ weights + gram[j, j] * weights[j]
            new_weight = _soft_threshold(residual, alpha) / diagonal[j]
            update = abs(new_weight - weights[j])
            weights = backend.set_at(weights, j, new_weight)
            if update > max_update:
                max_update = update
        if max_update < tol:
            break
    return weights


def glasso_block_sweeps(
    backend: ArrayBackend,
    covariance,
    precision,
    emp_cov,
    alpha: float,
    max_iter: int,
    tol: float,
    early_stop: bool = False,
    lasso_max_iter: int = 200,
    lasso_tol: float = 1e-6,
):
    """Run the outer block coordinate-descent loop of the graphical lasso.

    Each sweep updates every row/column of the covariance iterate by a lasso
    regression on the remaining block and recovers the matching precision
    entries.  Convergence is declared on the mean absolute change of the
    covariance between sweeps — against the fixed threshold *tol* by
    default (the historical semantics), or, with ``early_stop=True``,
    against ``tol`` *relative to the iterate's own scale* (mean absolute
    entry), which makes the stopping rule invariant to the covariance's
    units and lets warm-started near-solutions stop after a single sweep.

    Returns ``(covariance, precision, n_iter, converged, final_change)``;
    ``final_change`` is the last sweep's mean absolute covariance change
    (``None`` when ``max_iter == 0``).
    """
    covariance = backend.asarray(covariance, dtype=float)
    precision = backend.asarray(precision, dtype=float)
    emp_cov = backend.asarray(emp_cov, dtype=float)
    xp = backend.xp
    p = int(covariance.shape[0])
    rest_indices = [np.delete(np.arange(p), j) for j in range(p)]

    converged = False
    n_iter = 0
    final_change = None
    for n_iter in range(1, max_iter + 1):
        previous = covariance.copy()
        for j in range(p):
            rest = rest_indices[j]
            sub_cov = covariance[rest[:, None], rest[None, :]]
            target = emp_cov[rest, j]
            beta = lasso_cd(
                backend, sub_cov, target, alpha,
                max_iter=lasso_max_iter, tol=lasso_tol,
            )
            column = sub_cov @ beta
            covariance = backend.set_at(covariance, (rest, j), column)
            covariance = backend.set_at(covariance, (j, rest), column)

            # Recover the corresponding precision entries (standard glasso
            # update): theta_jj = 1 / (w_jj - w_12^T beta).
            denom = covariance[j, j] - covariance[rest, j] @ beta
            denom = max(denom, 1e-12)
            precision = backend.set_at(precision, (j, j), 1.0 / denom)
            precision = backend.set_at(precision, (rest, j), -beta / denom)
            precision = backend.set_at(precision, (j, rest), precision[rest, j])
        change = xp.mean(xp.abs(covariance - previous))
        final_change = float(change)
        threshold = tol
        if early_stop:
            threshold = tol * max(float(xp.mean(xp.abs(previous))), 1e-12)
        if change < threshold:
            converged = True
            break

    return covariance, precision, n_iter, converged, final_change
