"""Backend-pure LabelPick scoring: per-LF validation firing counts and accuracy.

LabelPick's accuracy-pruning stage reduces to one masked reduction over the
``(n_valid, n_lfs)`` validation label matrix.  It runs on every refit of
every trial, so it is expressed here as a jit-compilable statistic function
of the matrix and label arrays; the pruning *decision* (threshold
comparison, index bookkeeping) stays plain Python in
:class:`repro.core.labelpick.LabelPick`.
"""

from __future__ import annotations

from typing import Callable

from repro.numerics.backend import ArrayBackend

_SCORE_FNS: dict[str, Callable] = {}


def labelpick_score_fn(backend: ArrayBackend) -> Callable:
    """Compiled ``scores(matrix, labels, abstain) -> (n_fired, accuracy)``.

    ``n_fired`` counts, per LF column, the validation instances it voted on;
    ``accuracy`` is the fraction of those votes matching the ground-truth
    labels (0-fired columns report accuracy over a guarded denominator of
    1, i.e. 0.0 — the caller keeps such LFs by checking ``n_fired``).
    """
    if backend.name in _SCORE_FNS:
        return _SCORE_FNS[backend.name]
    xp = backend.xp

    def scores(matrix, labels, abstain):
        fired = matrix != abstain
        n_fired = fired.sum(axis=0)
        n_correct = (fired & (matrix == labels[:, None])).sum(axis=0)
        accuracy = n_correct / xp.maximum(n_fired, 1)
        return n_fired, accuracy

    compiled = backend.jit(scores)
    _SCORE_FNS[backend.name] = compiled
    return compiled
