"""Pluggable array backends for the numeric core.

The numeric hot paths of the reproduction — label-model EM, graphical-lasso
block updates, LabelPick scoring — are written against a thin backend seam
(:func:`get_backend`).  The numpy backend is the default and the reference:
no new dependencies, bit-identical to the historical code.  The JAX backend
(``pip install jax``) mirrors it with jit-compiled, shape-bucketed EM steps
and enforced float64, selected per run via ``ActiveDPConfig.backend`` or the
``REPRO_BACKEND`` environment variable.

See ``docs/numerics.md`` for the seam contract, how to add a backend, and
the adaptive early-stopping semantics layered on top.
"""

from repro.numerics.backend import (
    BACKEND_ENV_VAR,
    KNOWN_BACKENDS,
    ArrayBackend,
    BackendUnavailableError,
    JaxBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.numerics.convergence import RelativeLossStop, relative_change

__all__ = [
    "ArrayBackend",
    "BACKEND_ENV_VAR",
    "BackendUnavailableError",
    "JaxBackend",
    "KNOWN_BACKENDS",
    "NumpyBackend",
    "RelativeLossStop",
    "available_backends",
    "get_backend",
    "register_backend",
    "relative_change",
    "resolve_backend_name",
]
