"""Backend-pure EM step functions for the label models.

One EM iteration of either label model is expressed here as a pure function
of arrays — no ``self``, no Python-side state — so the JAX backend can
``jit``-compile it while the numpy backend runs the exact historical
sequence of operations (the functions mirror the pre-seam model internals
operation for operation, so the numpy path is bit-identical to the code it
replaced).

Compiled steps are cached per ``(backend, model family, class count)`` and,
on jit-enabled backends, label matrices are padded to power-of-two *column
buckets* (:func:`column_bucket`): an interactive refit loop adds one LF per
iteration, and without bucketing every added column would change the traced
shapes and force a full recompilation.  Padded columns are all-zero in
every mask, so they contribute nothing to either EM step; callers slice
the returned parameters back to the real column count.

The E-steps are shared with the models' ``predict_proba`` paths
(:func:`generative_posterior`, :func:`metal_posterior`) so the fit loop and
prediction can never drift apart.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.numerics.backend import ArrayBackend

#: Smallest column bucket on jit-enabled backends.
MIN_COLUMN_BUCKET = 8

_STEP_FNS: dict[tuple, Callable] = {}


def column_bucket(n_columns: int, floor: int = MIN_COLUMN_BUCKET) -> int:
    """Smallest power of two >= ``max(n_columns, floor)``.

    Bucketing the LF-column dimension means a refit loop that adds one LF at
    a time retraces a jitted step O(log k) times over a whole run instead of
    every iteration.
    """
    bucket = max(int(floor), 1)
    while bucket < n_columns:
        bucket *= 2
    return bucket


def pad_columns(array: np.ndarray, n_columns: int) -> np.ndarray:
    """Zero-pad the trailing axis of *array* out to *n_columns* columns."""
    deficit = n_columns - array.shape[-1]
    if deficit <= 0:
        return array
    widths = [(0, 0)] * (array.ndim - 1) + [(0, deficit)]
    return np.pad(array, widths)


# --------------------------------------------------------------- generative
def generative_masks(outcomes: np.ndarray, n_outcomes: int) -> np.ndarray:
    """Stacked per-outcome indicator masks, shape ``(n_outcomes, n, k)``.

    ``outcomes`` uses the generative model's encoding (0 = abstain,
    ``1 + c`` = vote for class *c*).  Computed once per fit instead of once
    per EM iteration — the masks are the only function of the label matrix
    either step needs.
    """
    return np.stack(
        [(outcomes == outcome).astype(float) for outcome in range(n_outcomes)]
    )


def _generative_e_step(xp, masks, log_priors, log_cpts, n_outcomes: int):
    """Shared E-step: responsibilities and mean negative log-likelihood."""
    n_instances = masks.shape[1]
    log_proba = xp.tile(log_priors, (n_instances, 1))
    for outcome in range(n_outcomes):
        log_proba = log_proba + masks[outcome] @ log_cpts[:, :, outcome]
    shift = log_proba.max(axis=1, keepdims=True)
    proba = xp.exp(log_proba - shift)
    norm = proba.sum(axis=1, keepdims=True)
    loss = -xp.mean(shift[:, 0] + xp.log(norm[:, 0]))
    return proba / norm, loss


def generative_step_fn(backend: ArrayBackend, n_outcomes: int) -> Callable:
    """One generative-model EM iteration (M-step then E-step), compiled.

    Returns ``step(masks, responsibilities, log_priors, smoothing) ->
    (cpts, responsibilities, loss)`` where ``loss`` is the mean per-instance
    negative log-likelihood *under the new CPTs*.
    """
    key = (backend.name, "generative", n_outcomes)
    if key in _STEP_FNS:
        return _STEP_FNS[key]
    xp = backend.xp

    def step(masks, responsibilities, log_priors, smoothing):
        cpts = xp.stack(
            [masks[outcome].T @ responsibilities for outcome in range(n_outcomes)],
            axis=2,
        )
        cpts = cpts + smoothing
        cpts = cpts / cpts.sum(axis=2, keepdims=True)
        log_cpts = xp.log(xp.clip(cpts, 1e-12, 1.0))
        responsibilities, loss = _generative_e_step(
            xp, masks, log_priors, log_cpts, n_outcomes
        )
        return cpts, responsibilities, loss

    compiled = backend.jit(step)
    _STEP_FNS[key] = compiled
    return compiled


def generative_posterior(
    outcomes: np.ndarray, cpts: np.ndarray, class_priors: np.ndarray
) -> np.ndarray:
    """Posterior responsibilities under fixed CPTs (numpy, prediction path)."""
    n_outcomes = cpts.shape[2]
    masks = generative_masks(outcomes, n_outcomes)
    log_priors = np.log(np.clip(class_priors, 1e-12, 1.0))
    log_cpts = np.log(np.clip(cpts, 1e-12, 1.0))
    proba, _ = _generative_e_step(np, masks, log_priors, log_cpts, n_outcomes)
    return proba


# -------------------------------------------------------------------- metal
def metal_masks(
    matrix: np.ndarray, n_classes: int, abstain: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(fired, not_fired, vote_masks, vote_index)`` for the MeTaL steps.

    ``vote_masks`` is stacked per class, shape ``(n_classes, n, k)``;
    ``vote_index`` clips abstains to a valid row index (their weight is
    masked out by ``fired`` wherever it is used).
    """
    fired = (matrix != abstain).astype(float)
    vote_masks = np.stack(
        [(matrix == cls).astype(float) for cls in range(n_classes)]
    )
    vote_index = np.clip(matrix, 0, None)
    return fired, 1.0 - fired, vote_masks, vote_index


def _metal_e_step(
    xp, fired, not_fired, vote_masks, log_priors,
    accuracies, propensities, n_classes: int,
):
    """Shared E-step: posterior over Y given votes, accuracies, propensities."""
    wrong_share = 1.0 / max(n_classes - 1, 1)
    acc = xp.clip(accuracies, 1e-6, 1 - 1e-6)
    propensity = xp.clip(propensities, 1e-6, 1 - 1e-6)
    log_acc = xp.log(acc)
    log_wrong = xp.log((1.0 - acc) * wrong_share)

    n_instances = fired.shape[0]
    log_proba = xp.tile(log_priors, (n_instances, 1))
    log_proba = log_proba + not_fired @ xp.log(1.0 - propensity)
    log_proba = log_proba + fired @ (xp.log(propensity) + log_wrong[:, None])
    agree_minus_wrong = log_acc - log_wrong
    agree = xp.stack(
        [vote_masks[cls] @ agree_minus_wrong for cls in range(n_classes)], axis=1
    )
    log_proba = log_proba + agree
    shift = log_proba.max(axis=1, keepdims=True)
    proba = xp.exp(log_proba - shift)
    norm = proba.sum(axis=1, keepdims=True)
    loss = -xp.mean(shift[:, 0] + xp.log(norm[:, 0]))
    return proba / norm, loss


def metal_step_fn(backend: ArrayBackend, n_classes: int) -> Callable:
    """One MeTaL-model EM iteration (M-step then E-step), compiled.

    Returns ``step(fired, not_fired, vote_masks, vote_index, never_fired,
    responsibilities, log_priors, smoothing, prior_accuracy, low, high) ->
    (accuracies, propensities, responsibilities, loss)``.
    """
    key = (backend.name, "metal", n_classes)
    if key in _STEP_FNS:
        return _STEP_FNS[key]
    xp = backend.xp

    def step(
        fired, not_fired, vote_masks, vote_index, never_fired,
        responsibilities, log_priors, smoothing, prior_accuracy, low, high,
    ):
        class_mass = responsibilities.sum(axis=0) + 1e-12
        fired_mass = fired.T @ responsibilities
        propensities = xp.clip(
            (fired_mass + smoothing * 0.1) / (class_mass[None, :] + smoothing * 0.2),
            1e-4,
            1.0 - 1e-4,
        )
        agree_weight = xp.take_along_axis(responsibilities, vote_index, axis=1)
        expected_correct = (fired * agree_weight).sum(axis=0)
        total = fired_mass.sum(axis=1)
        accuracies = xp.clip(
            (expected_correct + smoothing * prior_accuracy) / (total + smoothing),
            low,
            high,
        )
        # LFs that never fire carry no evidence; keep the prior accuracy.
        accuracies = xp.where(never_fired, prior_accuracy, accuracies)
        responsibilities, loss = _metal_e_step(
            xp, fired, not_fired, vote_masks, log_priors,
            accuracies, propensities, n_classes,
        )
        return accuracies, propensities, responsibilities, loss

    compiled = backend.jit(step)
    _STEP_FNS[key] = compiled
    return compiled


def metal_posterior(
    matrix: np.ndarray,
    abstain: int,
    accuracies: np.ndarray,
    propensities: np.ndarray,
    class_priors: np.ndarray,
    n_classes: int,
) -> np.ndarray:
    """Posterior responsibilities under fixed parameters (numpy, prediction path)."""
    fired, not_fired, vote_masks, _ = metal_masks(matrix, n_classes, abstain)
    log_priors = np.log(np.clip(class_priors, 1e-12, 1.0))
    proba, _ = _metal_e_step(
        np, fired, not_fired, vote_masks, log_priors,
        accuracies, propensities, n_classes,
    )
    return proba
