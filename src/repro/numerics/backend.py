"""The array-backend seam of the numeric core.

Every numeric hot path (label-model EM, graphical-lasso block updates,
LabelPick scoring) is written against an :class:`ArrayBackend` instead of
importing ``numpy`` directly.  The numpy backend is the reference
implementation and the default — it adds **zero** dependencies and runs the
exact historical computations.  The JAX backend mirrors it on ``jax.numpy``
with ``jit`` compilation for the statistic functions that profit from it,
and is only importable when ``jax`` is installed.

Backend resolution order (:func:`get_backend`):

1. an explicit ``name`` argument (e.g. ``ActiveDPConfig.backend``);
2. the ``REPRO_BACKEND`` environment variable;
3. ``"numpy"``.

The JAX backend enables float64 (``jax_enable_x64``) on construction: the
equivalence guarantees of the numeric core are stated in double precision,
and silently downcasting to float32 would void them.
"""

from __future__ import annotations

import abc
import importlib.util
import os

import numpy as np

#: Backend names the configuration layer accepts.  ``get_backend`` is the
#: authority on whether a name is *usable* (JAX may be absent at run time);
#: this tuple is what config validation checks against so typos fail fast.
KNOWN_BACKENDS = ("numpy", "jax")

#: Environment variable consulted when no explicit backend name is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class BackendUnavailableError(RuntimeError):
    """A known backend cannot be constructed in this environment."""


class ArrayBackend(abc.ABC):
    """One array namespace plus the few capabilities numpy and JAX disagree on.

    Attributes
    ----------
    name:
        Registry name (``"numpy"``, ``"jax"``).
    xp:
        The array namespace module (``numpy`` or ``jax.numpy``).  All
        backend-pure numeric code calls ``xp`` functions only.
    jit_enabled:
        Whether :meth:`jit` actually compiles (and therefore whether padded
        shape buckets pay off).  ``False`` for the numpy reference backend.
    """

    name: str
    xp: object
    jit_enabled: bool = False

    def asarray(self, value, dtype=float):
        """Convert *value* to this backend's array type."""
        return self.xp.asarray(value, dtype=dtype)

    def to_numpy(self, value) -> np.ndarray:
        """Materialise a backend array as a host numpy array."""
        return np.asarray(value)

    def jit(self, fn, static_argnums=()):
        """Compile *fn* if the backend supports it; identity otherwise."""
        return fn

    @abc.abstractmethod
    def set_at(self, array, index, value):
        """Return *array* with ``array[index] = value`` applied.

        The numpy backend mutates in place and returns the same object; the
        JAX backend returns a new array (``array.at[index].set(value)``).
        Callers must use the return value and never rely on aliasing.
        """


class NumpyBackend(ArrayBackend):
    """The reference backend: plain numpy, no compilation, exact history."""

    name = "numpy"
    xp = np
    jit_enabled = False

    def set_at(self, array, index, value):
        """In-place ``array[index] = value`` (numpy arrays are mutable)."""
        array[index] = value
        return array


class JaxBackend(ArrayBackend):
    """``jax.numpy`` mirror with jit compilation and enforced float64.

    Constructed lazily by :func:`get_backend` so importing
    ``repro.numerics`` never imports ``jax``; environments without it keep
    the numpy path with zero extra dependencies.
    """

    name = "jax"
    jit_enabled = True

    def __init__(self):
        try:
            import jax
        except ImportError as exc:  # pragma: no cover - exercised without jax
            raise BackendUnavailableError(
                "the 'jax' backend requires the jax package "
                "(pip install jax); the default 'numpy' backend needs nothing"
            ) from exc
        # Double precision is a correctness requirement, not a preference:
        # the numpy-vs-JAX equivalence suite pins agreement at float64
        # tolerances, and EM log-likelihoods lose real accuracy in float32.
        jax.config.update("jax_enable_x64", True)
        self._jax = jax
        self.xp = jax.numpy

    def jit(self, fn, static_argnums=()):
        """``jax.jit``; compiled traces are cached per argument shape."""
        return self._jax.jit(fn, static_argnums=static_argnums)

    def set_at(self, array, index, value):
        """Functional ``array.at[index].set(value)`` (JAX arrays are immutable)."""
        return array.at[index].set(value)


_INSTANCES: dict[str, ArrayBackend] = {}

_FACTORIES = {
    "numpy": NumpyBackend,
    "jax": JaxBackend,
}


def resolve_backend_name(name: str | None = None) -> str:
    """The backend name an explicit argument / environment / default resolve to."""
    if name:
        return str(name).lower()
    env = os.environ.get(BACKEND_ENV_VAR, "").strip()
    return env.lower() if env else "numpy"


def get_backend(name: str | None = None) -> ArrayBackend:
    """Return the resolved :class:`ArrayBackend` instance (cached per name).

    ``None`` consults ``REPRO_BACKEND`` and falls back to ``"numpy"``.
    Unknown names raise :class:`ValueError`; a known backend whose
    dependency is missing raises :class:`BackendUnavailableError` with an
    actionable message.
    """
    resolved = resolve_backend_name(name)
    if resolved in _INSTANCES:
        return _INSTANCES[resolved]
    try:
        factory = _FACTORIES[resolved]
    except KeyError:
        raise ValueError(
            f"unknown array backend {resolved!r}; choose from {sorted(_FACTORIES)}"
        ) from None
    backend = factory()
    _INSTANCES[resolved] = backend
    return backend


def register_backend(name: str, factory) -> None:
    """Register a custom backend factory under *name* (lower-cased).

    The factory is a zero-argument callable returning an
    :class:`ArrayBackend`.  Registering an existing name replaces it and
    drops any cached instance — tests use this to inject doubles.
    """
    key = str(name).lower()
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def available_backends() -> list[str]:
    """Backend names constructible in this environment, reference first."""
    names = ["numpy"]
    if importlib.util.find_spec("jax") is not None:
        names.append("jax")
    for name in _FACTORIES:
        if name not in KNOWN_BACKENDS and name not in names:
            names.append(name)
    return names
