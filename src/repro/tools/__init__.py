"""Static-analysis tooling: machine-checked invariants of the reproduction.

The repo's headline guarantee — distributed/served runs are *byte-identical*
to direct engine runs — rests on contracts that no example-based test can
cover exhaustively: content-key hashing must be deterministic, any pickled
payload change must bump ``CACHE_FORMAT_VERSION``, numeric kernels must stay
backend-pure, threaded subsystems must keep shared state under their locks,
and every pluggable backend must implement its full protocol surface.

:mod:`repro.tools.check` is the AST-based checker suite that enforces those
contracts statically (``python -m repro.tools.check``); the individual rule
families live in :mod:`~repro.tools.determinism`,
:mod:`~repro.tools.purity`, :mod:`~repro.tools.schema_version`,
:mod:`~repro.tools.locks` and :mod:`~repro.tools.protocols`.  The rule
catalogue is documented in ``docs/static_analysis.md``.
"""

__all__ = ["Checker", "CheckReport", "Finding", "run_checks"]


def __getattr__(name: str):
    """Lazily re-export the framework surface from :mod:`repro.tools.check`.

    Importing eagerly would make ``python -m repro.tools.check`` warn about
    ``repro.tools.check`` already sitting in ``sys.modules`` before runpy
    executes it.
    """
    if name in __all__:
        from repro.tools import check

        return getattr(check, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
