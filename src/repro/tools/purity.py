"""Backend-purity checker for the numeric kernels (REPRO20x).

The numeric core (:mod:`repro.numerics`) is written once against the
:class:`~repro.numerics.backend.ArrayBackend` seam and must run unchanged on
every registered backend.  A *kernel function* — any function (or nested
closure, e.g. the jit-compiled ``step`` bodies) that takes a ``backend`` or
``xp`` parameter — therefore may only touch arrays through that seam:
``xp.foo(...)``, ``backend.asarray(...)``, ``backend.set_at(...)``.

Rules:

* ``REPRO201`` — a kernel function calls ``np.*``/``numpy.*`` directly.
  A short allowlist (:data:`HOST_INDEX_ALLOWLIST`) admits host-side index
  bookkeeping (``np.arange``/``np.delete`` building Python-level index
  lists) that never becomes backend array data.
* ``REPRO202`` — a kernel function references the bare ``np``/``numpy``
  module as a value (passing the module where an ``xp`` namespace is
  expected).  Host-side callers outside the seam may pass ``np``; inside a
  kernel it silently pins the computation to numpy on every backend.

Host-side helpers *without* a ``backend``/``xp`` parameter (mask builders,
prediction-path wrappers) are outside the seam by design and are not
checked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.check import Checker, Finding, dotted_name

#: ``np.<attr>`` calls admitted inside kernel functions: host-side index
#: bookkeeping whose results stay Python-level (fancy-index lists), never
#: backend array data.
HOST_INDEX_ALLOWLIST = frozenset({"arange", "delete"})

#: Parameter names that mark a function as a kernel on the backend seam.
_SEAM_PARAMS = frozenset({"backend", "xp"})

#: Names the numpy module is bound to in this tree.
_NUMPY_NAMES = frozenset({"np", "numpy"})


class BackendPurityChecker(Checker):
    """Flag numpy bypasses of the ``ArrayBackend`` seam in kernel functions."""

    name = "purity"
    rules = {
        "REPRO201": "direct np.* call inside a backend-seam kernel function",
        "REPRO202": "bare np module used as a value inside a backend-seam kernel",
    }
    scope = ("numerics/*.py",)

    def __init__(
        self,
        scope: tuple[str, ...] | None = None,
        allowlist: frozenset[str] | None = None,
    ):
        if scope is not None:
            self.scope = scope
        self.allowlist = HOST_INDEX_ALLOWLIST if allowlist is None else allowlist

    def check_file(self, relpath: str, tree: ast.AST, source: str) -> Iterator[Finding]:
        """Yield purity findings for every kernel function in one module."""
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_kernel(node):
                    yield from self._check_kernel(relpath, node)

    def _check_kernel(
        self, relpath: str, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        body = list(_walk_body(func))
        # ``np`` Name nodes that merely anchor an ``np.foo`` chain are judged
        # as part of that chain (REPRO201), not as bare-module uses.
        attribute_bases = {
            id(node.value) for node in body if isinstance(node, ast.Attribute)
        }
        for node in body:
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name is not None
                    and "." in name
                    and name.split(".", 1)[0] in _NUMPY_NAMES
                ):
                    attr = name.split(".", 1)[1]
                    if attr not in self.allowlist:
                        yield Finding(
                            "REPRO201",
                            relpath,
                            node.lineno,
                            f"kernel {func.name}() calls {name}() directly; "
                            "go through the ArrayBackend seam (xp/backend)",
                        )
            elif (
                isinstance(node, ast.Name)
                and node.id in _NUMPY_NAMES
                and isinstance(node.ctx, ast.Load)
                and id(node) not in attribute_bases
            ):
                yield Finding(
                    "REPRO202",
                    relpath,
                    node.lineno,
                    f"kernel {func.name}() passes the bare {node.id} module "
                    "around; pass backend.xp instead",
                )


def _is_kernel(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether *func* takes a backend-seam parameter (``backend`` or ``xp``)."""
    args = func.args
    names = {
        arg.arg
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        )
    }
    return bool(names & _SEAM_PARAMS)


def _walk_body(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk *func*'s executable body, skipping type-level subtrees.

    Nested function definitions are included (a closure inside a kernel is
    part of the kernel), but annotations — theirs and variable annotations —
    are type-level and may legitimately say ``np.ndarray``.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Descend into the body only: skip the signature's annotations,
            # defaults still evaluate at def time so keep them.
            stack.extend(node.body)
            stack.extend(node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        if isinstance(node, ast.AnnAssign):
            # The annotation itself is type-level; the target/value execute.
            stack.append(node.target)
            if node.value is not None:
                stack.append(node.value)
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


