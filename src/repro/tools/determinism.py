"""Determinism lint over the content-key and canonical-JSON paths (REPRO10x).

Trial content keys, canonical JSON payloads and the broker's task files are
the replication backbone: the same logical request must hash, serialise and
replay to the same bytes on every machine.  The modules on those paths
(:mod:`repro.runner.spec`, :mod:`repro.serving.schemas`,
:mod:`repro.labeling.wire`, ``repro.runner.brokers``) therefore must not
consult wall clocks, process-global randomness, filesystem enumeration
order or set iteration order anywhere a value could reach a key or payload.

Rules:

* ``REPRO101`` — wall-clock reads (``time.time``, ``datetime.now``, ...).
  ``time.monotonic``/``time.sleep`` are interval plumbing and stay legal.
* ``REPRO102`` — module-state randomness (``random.random``,
  ``np.random.*``): process-global RNG state differs across workers.
  Seeded instances (``random.Random(...)``, ``default_rng(seed)``) are the
  sanctioned form and are not flagged.
* ``REPRO103`` — unsorted filesystem enumeration (``os.listdir``,
  ``Path.iterdir``, ``glob``): listing order is filesystem-dependent.
  Enumeration consumed order-independently — directly inside ``sorted``,
  ``set``, ``frozenset``, ``sum``, ``len``, ``any``, ``all``, ``max``,
  ``min`` or a set comprehension — is not flagged.
* ``REPRO104`` — ``json.dumps``/``json.dump`` without ``sort_keys=True``:
  dict insertion order must never reach serialised bytes on these paths.
* ``REPRO105`` — iteration over a syntactic set (a set literal/comprehension
  or a ``set()``/``frozenset()`` call): set order is hash-randomised across
  processes, so looping one into any output is a replay hazard.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.check import Checker, Finding, dotted_name

#: Dotted call targets whose value is the wall clock.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Module-state randomness: the ``random`` module's functional API and any
#: ``np.random.*`` / ``numpy.random.*`` global-state call.
_MODULE_RANDOM = {
    "random.random",
    "random.randint",
    "random.randrange",
    "random.uniform",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.seed",
    "random.getrandbits",
}
_RANDOM_PREFIXES = ("np.random.", "numpy.random.")

#: Attribute/function names that enumerate a directory.
_FS_ENUMERATION = {"listdir", "iterdir", "glob", "rglob", "scandir"}

#: Wrappers that consume an iterable order-independently.
_ORDER_FREE_WRAPPERS = {
    "sorted",
    "set",
    "frozenset",
    "sum",
    "len",
    "any",
    "all",
    "max",
    "min",
}


class DeterminismChecker(Checker):
    """Flag nondeterminism hazards on the content-key/serialisation paths."""

    name = "determinism"
    rules = {
        "REPRO101": "wall-clock read on a content-key/canonical-JSON path",
        "REPRO102": "module-state randomness on a content-key/canonical-JSON path",
        "REPRO103": "unsorted filesystem enumeration on a content-key/canonical-JSON path",
        "REPRO104": "json.dumps without sort_keys=True on a canonical-JSON path",
        "REPRO105": "iteration over a set on a serialisation path",
    }
    scope = (
        "runner/spec.py",
        "serving/schemas.py",
        "labeling/wire.py",
        "runner/brokers/*.py",
    )

    def __init__(self, scope: tuple[str, ...] | None = None):
        if scope is not None:
            self.scope = scope

    def check_file(self, relpath: str, tree: ast.AST, source: str) -> Iterator[Finding]:
        """Yield every determinism finding in one parsed module."""
        order_free = _order_free_nodes(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(relpath, node, order_free)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(relpath, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iteration(relpath, generator.iter)

    def _check_call(
        self, relpath: str, node: ast.Call, order_free: set[int]
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name in _WALL_CLOCK:
            yield Finding(
                "REPRO101",
                relpath,
                node.lineno,
                f"{name}() reads the wall clock; deterministic paths must not",
            )
            return
        if name is not None and (
            name in _MODULE_RANDOM or name.startswith(_RANDOM_PREFIXES)
        ):
            yield Finding(
                "REPRO102",
                relpath,
                node.lineno,
                f"{name}() draws from process-global RNG state; "
                "use a seeded instance instead",
            )
            return
        if name in ("json.dumps", "json.dump"):
            sort_keys = next(
                (kw.value for kw in node.keywords if kw.arg == "sort_keys"), None
            )
            if not (
                isinstance(sort_keys, ast.Constant) and sort_keys.value is True
            ):
                yield Finding(
                    "REPRO104",
                    relpath,
                    node.lineno,
                    f"{name}() without sort_keys=True lets dict insertion "
                    "order reach serialised bytes",
                )
            return
        attr = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else node.func.id
            if isinstance(node.func, ast.Name)
            else None
        )
        if attr in _FS_ENUMERATION and id(node) not in order_free:
            yield Finding(
                "REPRO103",
                relpath,
                node.lineno,
                f".{attr}() enumerates the filesystem in platform order; "
                "wrap it in sorted() or consume it order-independently",
            )

    def _check_iteration(self, relpath: str, iterable: ast.AST) -> Iterator[Finding]:
        if isinstance(iterable, (ast.Set, ast.SetComp)) or (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        ):
            yield Finding(
                "REPRO105",
                relpath,
                iterable.lineno,
                "iterating a set is hash-order-randomised across processes; "
                "sort it before anything ordered consumes it",
            )


def _order_free_nodes(tree: ast.AST) -> set[int]:
    """``id()``\\ s of call nodes consumed order-independently.

    A filesystem enumeration is harmless when its order cannot escape:
    directly as the argument of an order-free wrapper (``sorted(p.glob())``,
    ``len(...)``, ...), as the iterable of a set comprehension, or via a
    generator expression feeding such a wrapper (``sum(1 for _ in
    p.glob(...))``).
    """
    allowed: set[int] = set()

    def allow_iterable(node: ast.AST) -> None:
        allowed.add(id(node))
        if isinstance(node, ast.GeneratorExp):
            for generator in node.generators:
                allowed.add(id(generator.iter))

    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_FREE_WRAPPERS
        ):
            for arg in node.args:
                allow_iterable(arg)
        elif isinstance(node, ast.SetComp):
            for generator in node.generators:
                allowed.add(id(generator.iter))
    return allowed
