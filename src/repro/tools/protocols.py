"""Protocol-conformance checker for the pluggable backends (REPRO50x).

Three seams are pluggable by registry: :class:`~repro.runner.brokers.base.Broker`
(spool/sqlite), :class:`~repro.runner.results.base.ResultStore`
(pickle/indexed) and :class:`~repro.numerics.backend.ArrayBackend`
(numpy/jax).  The contract suites exercise behaviour, but structural drift —
a renamed parameter, a default dropped on one backend, a new abstract method
implemented on one side of the seam only — surfaces there as obscure
failures deep in a scenario.  This checker catches the drift statically, at
the class definition.

Rules:

* ``REPRO501`` — a registered implementation class does not define some
  abstract method/property of its protocol (it would raise
  ``TypeError`` at instantiation, or worse, inherit a stub).
* ``REPRO502`` — an implementation's method signature is incompatible with
  the protocol's: positional parameter names/order differ, a parameter
  that has a default in the protocol lost it in the implementation, or
  the implementation adds required parameters the protocol's callers
  cannot supply.

Everything is resolved from source ASTs — implementations are found by
scanning the scoped files for classes whose base list names the protocol
class — so conformance is checked without importing (or instantiating)
any backend.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.tools.check import Checker, Finding, dotted_name, parse_scoped_sources

#: ``(protocol relpath, protocol class, implementation glob patterns)``.
PROTOCOL_SURFACES: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    ("runner/brokers/base.py", "Broker", ("runner/brokers/*.py",)),
    ("runner/results/base.py", "ResultStore", ("runner/results/*.py",)),
    ("numerics/backend.py", "ArrayBackend", ("numerics/backend.py",)),
)


class ProtocolConformanceChecker(Checker):
    """Check every registered backend against its protocol's full surface."""

    name = "protocols"
    rules = {
        "REPRO501": "backend class misses an abstract member of its protocol",
        "REPRO502": "backend method signature incompatible with its protocol",
    }
    scope = tuple(
        sorted(
            {relpath for relpath, _, _ in PROTOCOL_SURFACES}
            | {pattern for _, _, patterns in PROTOCOL_SURFACES for pattern in patterns}
        )
    )

    def __init__(
        self,
        surfaces: tuple[tuple[str, str, tuple[str, ...]], ...] | None = None,
    ):
        self.surfaces = PROTOCOL_SURFACES if surfaces is None else surfaces

    def check_root(self, root: Path) -> Iterator[Finding]:
        """Resolve each protocol and check every implementing class."""
        for base_relpath, base_name, patterns in self.surfaces:
            base_path = root / base_relpath
            if not base_path.exists():
                continue
            base_tree = ast.parse(base_path.read_text())
            base_class = _find_class(base_tree, base_name)
            if base_class is None:
                continue
            abstract = _abstract_members(base_class)
            if not abstract:
                continue
            for relpath, tree, _source in parse_scoped_sources(root, patterns):
                for class_def in ast.walk(tree):
                    if not isinstance(class_def, ast.ClassDef):
                        continue
                    if class_def.name == base_name:
                        continue
                    if not _subclasses(class_def, base_name):
                        continue
                    if _is_abstract_class(class_def):
                        continue
                    yield from self._check_implementation(
                        relpath, class_def, base_name, abstract
                    )

    def _check_implementation(
        self,
        relpath: str,
        class_def: ast.ClassDef,
        base_name: str,
        abstract: dict[str, ast.FunctionDef],
    ) -> Iterator[Finding]:
        defined = {
            node.name: node
            for node in class_def.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for name, base_method in sorted(abstract.items()):
            impl = defined.get(name)
            if impl is None:
                yield Finding(
                    "REPRO501",
                    relpath,
                    class_def.lineno,
                    f"{class_def.name} does not implement abstract "
                    f"{base_name}.{name}",
                )
                continue
            if _is_property(base_method) or _is_property(impl):
                continue
            problem = _signature_problem(base_method, impl)
            if problem is not None:
                yield Finding(
                    "REPRO502",
                    relpath,
                    impl.lineno,
                    f"{class_def.name}.{name} signature drifts from "
                    f"{base_name}.{name}: {problem}",
                )


def _find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _subclasses(class_def: ast.ClassDef, base_name: str) -> bool:
    """Whether *class_def*'s base list names *base_name* (possibly dotted)."""
    for base in class_def.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1] == base_name:
            return True
    return False


def _decorator_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for decorator in func.decorator_list:
        name = dotted_name(decorator)
        if name is not None:
            names.add(name.split(".")[-1])
    return names


def _is_property(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return "property" in _decorator_names(func)


def _abstract_members(class_def: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    """Abstract methods/properties of a protocol class, by name."""
    members: dict[str, ast.FunctionDef] = {}
    for node in class_def.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decorators = _decorator_names(node)
            if decorators & {"abstractmethod", "abstractproperty"}:
                members[node.name] = node
    return members


def _is_abstract_class(class_def: ast.ClassDef) -> bool:
    """Whether *class_def* declares abstract members of its own."""
    return bool(_abstract_members(class_def))


def _positional_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[tuple[str, bool]]:
    """``(name, has_default)`` per positional parameter, ``self`` dropped."""
    args = func.args
    positional = [*args.posonlyargs, *args.args]
    defaults = args.defaults
    padded = [None] * (len(positional) - len(defaults)) + list(defaults)
    rows = [
        (arg.arg, default is not None)
        for arg, default in zip(positional, padded)
    ]
    if rows and rows[0][0] in ("self", "cls"):
        rows = rows[1:]
    return rows


def _signature_problem(
    base: ast.FunctionDef | ast.AsyncFunctionDef,
    impl: ast.FunctionDef | ast.AsyncFunctionDef,
) -> str | None:
    """Describe how *impl*'s signature breaks *base*'s contract, if it does.

    Positional names must match the protocol's in order; a protocol default
    must survive in the implementation; extra implementation parameters must
    themselves be defaulted (a bare ``*args``/``**kwargs`` absorbs the
    rest).  Keyword-only parameters follow the same keep-the-default rule.
    """
    base_params = _positional_params(base)
    impl_params = _positional_params(impl)
    impl_has_varargs = impl.args.vararg is not None

    for index, (base_name, base_default) in enumerate(base_params):
        if index >= len(impl_params):
            if impl_has_varargs:
                break
            return f"missing positional parameter {base_name!r}"
        impl_name, impl_default = impl_params[index]
        if impl_name != base_name:
            return (
                f"positional parameter {index + 1} is {impl_name!r}, "
                f"protocol says {base_name!r}"
            )
        if base_default and not impl_default:
            return f"parameter {base_name!r} lost its protocol default"

    for impl_name, impl_default in impl_params[len(base_params) :]:
        if not impl_default:
            return (
                f"adds required positional parameter {impl_name!r} "
                "the protocol's callers cannot supply"
            )

    base_kwonly = {
        arg.arg: default is not None
        for arg, default in zip(base.args.kwonlyargs, base.args.kw_defaults)
    }
    impl_kwonly = {
        arg.arg: default is not None
        for arg, default in zip(impl.args.kwonlyargs, impl.args.kw_defaults)
    }
    impl_positional_names = {name for name, _ in impl_params}
    for name, base_default in base_kwonly.items():
        if name in impl_kwonly:
            if base_default and not impl_kwonly[name]:
                return f"keyword-only parameter {name!r} lost its protocol default"
        elif name not in impl_positional_names and impl.args.kwarg is None:
            return f"missing keyword-only parameter {name!r}"
    for name, has_default in impl_kwonly.items():
        if name not in base_kwonly and not has_default:
            return (
                f"adds required keyword-only parameter {name!r} "
                "the protocol's callers cannot supply"
            )
    return None
