"""Schema-version guard over the pickled payload surface (REPRO30x).

Results caches, suspended serving sessions and broker task payloads all
pickle a small set of structures; ``CACHE_FORMAT_VERSION`` (in
:mod:`repro.runner.spec`) namespaces those bytes so old caches are never
misread as current.  The version only works if every structural change to
the payload surface actually bumps it — which is exactly what reviewers
forget.  This guard makes the bump mechanical:

* a *structural fingerprint* of the payload surface — dataclass fields
  (name, annotation, has-default) of ``TrialSpec``, ``IterationRecord``,
  ``RunHistory``, ``TrainingState`` and ``LabelPickState``, plus the
  ``LabelingSession.meta`` dict keys — is committed to
  ``tools/schema_fingerprint.json`` alongside the version it was taken at;
* ``REPRO301`` fires when the surface drifts from the committed fingerprint
  while ``CACHE_FORMAT_VERSION`` is unchanged (payload changed, version
  forgot to move);
* ``REPRO302`` fires when the committed fingerprint itself is missing or
  stale (version bumped, or surface changed *with* a bump, but
  ``--update-fingerprint`` wasn't run to re-commit it).

Everything is extracted from source ASTs, never imports, so the guard works
on scratch copies of single files and inside CI without the package's
runtime dependencies.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Iterator

from repro.tools.check import Checker, Finding

#: The committed fingerprint, relative to the scanned ``repro`` root.
FINGERPRINT_RELPATH = "tools/schema_fingerprint.json"

#: Where ``CACHE_FORMAT_VERSION`` is declared, relative to the root.
VERSION_RELPATH = "runner/spec.py"
VERSION_NAME = "CACHE_FORMAT_VERSION"

#: The payload surface: ``(relpath, kind, class name)`` triples.  ``kind``
#: is ``"dataclass"`` (fingerprint the field list) or ``"meta-keys"``
#: (fingerprint the keys of the class's ``meta`` property dict literal —
#: the session snapshot's pickled envelope).
PAYLOAD_SURFACES: tuple[tuple[str, str, str], ...] = (
    ("runner/spec.py", "dataclass", "TrialSpec"),
    ("core/results.py", "dataclass", "IterationRecord"),
    ("core/results.py", "dataclass", "RunHistory"),
    ("core/state.py", "dataclass", "TrainingState"),
    ("core/labelpick.py", "dataclass", "LabelPickState"),
    ("serving/sessions.py", "meta-keys", "LabelingSession"),
)


class SchemaVersionChecker(Checker):
    """Fail when the pickled payload surface and its version fall out of step."""

    name = "schema"
    rules = {
        "REPRO301": "pickled payload surface changed without a CACHE_FORMAT_VERSION bump",
        "REPRO302": "committed schema fingerprint is missing or stale",
    }
    scope = tuple(sorted({relpath for relpath, _, _ in PAYLOAD_SURFACES}))

    def __init__(
        self,
        surfaces: tuple[tuple[str, str, str], ...] | None = None,
        fingerprint_relpath: str = FINGERPRINT_RELPATH,
    ):
        self.surfaces = PAYLOAD_SURFACES if surfaces is None else surfaces
        self.fingerprint_relpath = fingerprint_relpath

    def check_root(self, root: Path) -> Iterator[Finding]:
        """Compare the tree's live surface against the committed fingerprint."""
        surface = extract_surface(root, self.surfaces)
        live_digest = surface_digest(surface)
        version, version_line = read_cache_version(root)
        committed = load_fingerprint(root, self.fingerprint_relpath)

        if committed is None:
            yield Finding(
                "REPRO302",
                self.fingerprint_relpath,
                1,
                "no committed schema fingerprint; run "
                "`python -m repro.tools.check --update-fingerprint`",
            )
            return

        committed_digest = committed.get("digest")
        committed_version = committed.get("cache_format_version")
        if live_digest != committed_digest:
            if version == committed_version:
                yield Finding(
                    "REPRO301",
                    VERSION_RELPATH,
                    version_line,
                    "pickled payload surface changed but "
                    f"{VERSION_NAME} is still {version}; bump it "
                    "(old caches would be misread as current)",
                )
            else:
                yield Finding(
                    "REPRO302",
                    self.fingerprint_relpath,
                    1,
                    f"{VERSION_NAME} was bumped to {version} but the "
                    "committed fingerprint is stale; run "
                    "`python -m repro.tools.check --update-fingerprint`",
                )
        elif version != committed_version:
            yield Finding(
                "REPRO302",
                self.fingerprint_relpath,
                1,
                f"committed fingerprint records version {committed_version} "
                f"but the tree declares {version}; run "
                "`python -m repro.tools.check --update-fingerprint`",
            )


def extract_surface(
    root: Path, surfaces: tuple[tuple[str, str, str], ...] = PAYLOAD_SURFACES
) -> dict:
    """The structural payload surface of *root*, extracted from source ASTs.

    Dataclass surfaces record ``(name, annotation, has_default)`` per field;
    ``meta-keys`` surfaces record the string keys of the class's ``meta``
    property dict literal.  A missing file or class is recorded as such —
    that too is a structural change the digest must see.
    """
    trees: dict[str, ast.Module | None] = {}
    result: dict[str, dict] = {}
    for relpath, kind, class_name in surfaces:
        if relpath not in trees:
            path = root / relpath
            trees[relpath] = ast.parse(path.read_text()) if path.exists() else None
        tree = trees[relpath]
        key = f"{relpath}::{class_name}"
        if tree is None:
            result[key] = {"kind": kind, "missing": "file"}
            continue
        class_def = _find_class(tree, class_name)
        if class_def is None:
            result[key] = {"kind": kind, "missing": "class"}
        elif kind == "dataclass":
            result[key] = {"kind": kind, "fields": _dataclass_fields(class_def)}
        elif kind == "meta-keys":
            result[key] = {"kind": kind, "keys": _meta_keys(class_def)}
        else:
            raise ValueError(f"unknown surface kind {kind!r} for {key}")
    return result


def surface_digest(surface: dict) -> str:
    """Canonical SHA-256 of a surface (version-independent by construction)."""
    canonical = json.dumps(surface, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def read_cache_version(root: Path) -> tuple[int | None, int]:
    """``(CACHE_FORMAT_VERSION, line)`` from the version module's AST."""
    path = root / VERSION_RELPATH
    if not path.exists():
        return None, 1
    tree = ast.parse(path.read_text())
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if VERSION_NAME in targets and isinstance(node.value, ast.Constant):
                return node.value.value, node.lineno
    return None, 1


def load_fingerprint(
    root: Path, relpath: str = FINGERPRINT_RELPATH
) -> dict | None:
    """The committed fingerprint document, or ``None`` if absent/unreadable."""
    path = root / relpath
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None


def update_fingerprint(root: Path) -> tuple[bool, str]:
    """Re-commit the fingerprint; refuse when the version wasn't bumped.

    This is the ``--update-fingerprint`` workflow: after a payload change
    *and* a ``CACHE_FORMAT_VERSION`` bump, rewrite
    ``tools/schema_fingerprint.json``.  If the surface changed but the
    version recorded in the committed fingerprint is still the tree's
    version, the update is refused — rubber-stamping drift would defeat the
    guard entirely.  Returns ``(ok, message)``.
    """
    surface = extract_surface(root)
    live_digest = surface_digest(surface)
    version, _ = read_cache_version(root)
    committed = load_fingerprint(root)
    path = root / FINGERPRINT_RELPATH

    if (
        committed is not None
        and live_digest != committed.get("digest")
        and version == committed.get("cache_format_version")
    ):
        return False, (
            f"refusing to update: payload surface changed but {VERSION_NAME} "
            f"is still {version}; bump it in {VERSION_RELPATH} first"
        )

    document = {
        "cache_format_version": version,
        "digest": live_digest,
        "surface": surface,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return True, f"wrote {path} (version {version}, digest {live_digest[:12]}...)"


def _find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _dataclass_fields(class_def: ast.ClassDef) -> list[dict]:
    """``(name, annotation, has_default)`` rows of a dataclass body."""
    fields = []
    for node in class_def.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _is_classvar(node.annotation):
                continue
            fields.append(
                {
                    "name": node.target.id,
                    "annotation": ast.unparse(node.annotation),
                    "has_default": node.value is not None,
                }
            )
    return fields


def _is_classvar(annotation: ast.AST) -> bool:
    text = ast.unparse(annotation)
    return text.startswith("ClassVar") or text.startswith("typing.ClassVar")


def _meta_keys(class_def: ast.ClassDef) -> list[str]:
    """The string keys of the class's ``meta`` property dict literal."""
    for node in class_def.body:
        if isinstance(node, ast.FunctionDef) and node.name == "meta":
            for sub in ast.walk(node):
                if isinstance(sub, ast.Dict):
                    return sorted(
                        key.value
                        for key in sub.keys
                        if isinstance(key, ast.Constant) and isinstance(key.value, str)
                    )
    return []
