"""Lock-discipline checker for the threaded subsystems (REPRO40x).

The serving layer, the SQLite-backed broker/history stores and the worker
heartbeat all share mutable state across threads behind a ``self._lock``.
Each such class declares its guarded attributes in a ``_GUARDED_BY_LOCK``
tuple — the machine-readable inventory this checker enforces — and may
additionally declare ``_LOCK_CONTEXTS``: names of helper context managers
(like the stores' ``_tx``) whose ``with self._tx():`` blocks hold the lock.

Rules:

* ``REPRO401`` — a method reads or writes a guarded ``self.<attr>``
  outside a ``with self._lock:`` (or declared lock-context) block.
  ``__init__`` is exempt (construction is single-threaded by contract),
  and a method whose *caller* holds the lock opts out of checking by
  marking its ``def`` line with ``# repro: locked``.
* ``REPRO402`` — a class creates a ``self._lock`` but declares no
  ``_GUARDED_BY_LOCK`` inventory: the lock guards *something*, and leaving
  the inventory empty hides every future discipline violation.

The discipline is purely lexical — a guarded access is legal iff it is
textually inside a locking ``with`` (or a ``# repro: locked`` method).
That is deliberately stricter than runtime reality (re-entrant call chains
under an ``RLock``) and is exactly why the ``# repro: locked`` marker
exists: it turns the caller-holds-lock contract into visible documentation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.check import Checker, Finding, const_tuple_of, dotted_name

#: Callables whose result is a lock-ish object when assigned to ``self._lock``.
_LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
}

#: The ``def``-line marker for methods whose caller holds the lock.
_LOCKED_MARKER = "# repro: locked"


class LockDisciplineChecker(Checker):
    """Enforce that declared-guarded attributes stay under their lock."""

    name = "locks"
    rules = {
        "REPRO401": "guarded attribute accessed outside `with self._lock:`",
        "REPRO402": "class creates a _lock but declares no _GUARDED_BY_LOCK inventory",
    }
    scope = (
        "serving/*.py",
        "runner/brokers/sqlite.py",
        "runner/worker.py",
        "runner/results/history_db.py",
    )

    def __init__(self, scope: tuple[str, ...] | None = None):
        if scope is not None:
            self.scope = scope

    def check_file(self, relpath: str, tree: ast.AST, source: str) -> Iterator[Finding]:
        """Yield lock-discipline findings for every class in one module."""
        lines = source.splitlines()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(relpath, node, lines)

    def _check_class(
        self, relpath: str, class_def: ast.ClassDef, lines: list[str]
    ) -> Iterator[Finding]:
        guarded = _declared_tuple(class_def, "_GUARDED_BY_LOCK")
        contexts = set(_declared_tuple(class_def, "_LOCK_CONTEXTS") or ())

        lock_line = _lock_creation_line(class_def)
        if lock_line is not None and guarded is None:
            yield Finding(
                "REPRO402",
                relpath,
                lock_line,
                f"{class_def.name} creates self._lock but declares no "
                "_GUARDED_BY_LOCK inventory of what it guards",
            )
        if not guarded:
            return

        guarded_set = set(guarded)
        for node in class_def.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "__init__":
                continue
            def_line = lines[node.lineno - 1] if node.lineno - 1 < len(lines) else ""
            if _LOCKED_MARKER in def_line:
                continue
            yield from self._check_method(
                relpath, class_def.name, node, guarded_set, contexts
            )

    def _check_method(
        self,
        relpath: str,
        class_name: str,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        guarded: set[str],
        contexts: set[str],
    ) -> Iterator[Finding]:
        def visit(node: ast.AST, locked: bool) -> Iterator[Finding]:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                holds = locked or any(
                    _is_locking_item(item.context_expr, contexts)
                    for item in node.items
                )
                for item in node.items:
                    yield from visit(item.context_expr, locked)
                    if item.optional_vars is not None:
                        yield from visit(item.optional_vars, holds)
                for statement in node.body:
                    yield from visit(statement, holds)
                return
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in guarded
                and not locked
            ):
                yield Finding(
                    "REPRO401",
                    relpath,
                    node.lineno,
                    f"{class_name}.{method.name} accesses guarded "
                    f"self.{node.attr} outside `with self._lock:`",
                )
            for child in ast.iter_child_nodes(node):
                yield from visit(child, locked)

        for statement in method.body:
            yield from visit(statement, False)


def _declared_tuple(
    class_def: ast.ClassDef, name: str
) -> tuple[str, ...] | None:
    """The string-tuple class attribute *name*, or ``None`` if not declared."""
    for node in class_def.body:
        value = None
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if name in targets:
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                value = node.value
        if value is not None:
            return const_tuple_of(value) or ()
    return None


def _lock_creation_line(class_def: ast.ClassDef) -> int | None:
    """Line of a ``self._lock = threading.Lock()``-style assignment, if any."""
    for node in ast.walk(class_def):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            factory = dotted_name(node.value.func)
            if factory not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr == "_lock"
                ):
                    return node.lineno
    return None


def _is_locking_item(context_expr: ast.AST, contexts: set[str]) -> bool:
    """Whether one ``with`` item holds the lock.

    ``with self._lock:`` (the lock object itself) and ``with self._tx():``
    (a declared lock-holding context manager) both count.
    """
    if dotted_name(context_expr) == "self._lock":
        return True
    if isinstance(context_expr, ast.Call):
        name = dotted_name(context_expr.func)
        if name is not None and name.startswith("self."):
            return name[len("self.") :] in contexts
    return False
