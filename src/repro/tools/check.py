"""The invariant-checker framework and its ``python -m repro.tools.check`` CLI.

Each *checker* is an AST-driven rule family over the ``repro`` source tree;
each violation is a :class:`Finding` — a stable rule id (``REPRO101``, ...)
anchored at ``path:line``.  The framework owns everything the rule families
share: file discovery, suppression pragmas, rule selection, text/JSON
rendering and CI-friendly exit codes, so a checker only has to turn syntax
trees into findings.

Suppression pragmas (both require the rule id — blanket suppression is
deliberately impossible, and the convention is to follow the pragma with
``-- <reason>``):

* inline — ``# repro: noqa[REPRO101] -- <why this occurrence is fine>``
  on the finding's own line;
* file-level — ``# repro: noqa-file[REPRO101] -- <why this whole file is
  exempt>`` on any line of the file (by convention in the module
  docstring's vicinity).

Exit codes: ``0`` clean, ``1`` unsuppressed findings (or a refused
``--update-fingerprint``), ``2`` usage errors.  ``--format json`` emits the
stable report schema pinned by ``tests/tools/test_framework.py``.
"""

from __future__ import annotations

import abc
import argparse
import ast
import dataclasses
import json
import re
import sys
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Schema version of the ``--format json`` report.  Bump only with the
#: consumers (the CI job and the format-stability test).
REPORT_FORMAT_VERSION = 1

_INLINE_PRAGMA = re.compile(r"#\s*repro:\s*noqa\[([A-Z0-9,\s]+)\]")
_FILE_PRAGMA = re.compile(r"#\s*repro:\s*noqa-file\[([A-Z0-9,\s]+)\]")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation, anchored at a ``path:line`` location.

    Attributes
    ----------
    rule:
        Stable rule id (``REPRO101``, ...); the unit of selection and
        suppression.
    path:
        Path of the offending file, POSIX-style and relative to the scanned
        root (``serving/service.py``).
    line:
        1-based line the finding anchors to.
    message:
        Human-readable description of the specific violation.
    """

    rule: str
    path: str
    line: int
    message: str

    @property
    def location(self) -> str:
        """The clickable ``path:line`` anchor of this finding."""
        return f"{self.path}:{self.line}"

    def to_json(self) -> dict:
        """The finding as a plain dict (the JSON report's ``findings`` rows)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class Checker(abc.ABC):
    """Base class of one rule family.

    Subclasses declare their identity (:attr:`name`), rule catalogue
    (:attr:`rules`: id -> one-line description) and default file scope
    (:attr:`scope`: glob patterns relative to the scanned root), and
    implement either :meth:`check_file` (per-file AST rules) or override
    :meth:`check_root` entirely (cross-file rules like the schema
    fingerprint and protocol conformance).
    """

    #: Short family name (``"determinism"``, ...); a ``--rules`` selector.
    name: str = ""
    #: Rule id -> one-line description of every rule this family can emit.
    rules: dict[str, str] = {}
    #: Root-relative glob patterns naming the files this family inspects.
    scope: tuple[str, ...] = ()

    def files(self, root: Path) -> list[Path]:
        """The scoped files under *root*, sorted for deterministic reports."""
        matched: set[Path] = set()
        for pattern in self.scope:
            matched.update(path for path in root.glob(pattern) if path.is_file())
        return sorted(matched)

    def check_root(self, root: Path) -> Iterator[Finding]:
        """Yield every finding in *root* (default: per-file over the scope).

        Files that fail to parse yield no findings here — the tree is
        assumed to be import-clean (the test suite would already be failing
        louder than any lint).
        """
        for path in self.files(root):
            relpath = path.relative_to(root).as_posix()
            source = path.read_text()
            try:
                tree = ast.parse(source)
            except SyntaxError:  # pragma: no cover - tree is import-clean
                continue
            yield from self.check_file(relpath, tree, source)

    def check_file(self, relpath: str, tree: ast.AST, source: str) -> Iterator[Finding]:
        """Yield findings for one parsed file (overridden by per-file rules)."""
        return iter(())


@dataclasses.dataclass
class CheckReport:
    """The outcome of one :func:`run_checks` invocation.

    Attributes
    ----------
    root:
        The source root that was scanned.
    rules:
        Every rule id that was enabled for the run, sorted.
    findings:
        Unsuppressed findings, sorted by location then rule.
    suppressed:
        Findings silenced by a pragma (kept for ``--show-suppressed``
        style introspection and the suppression-semantics tests).
    """

    root: Path
    rules: list[str]
    findings: list[Finding]
    suppressed: list[Finding]

    @property
    def clean(self) -> bool:
        """Whether the run produced no unsuppressed findings."""
        return not self.findings

    def to_json(self) -> dict:
        """The stable ``--format json`` report payload."""
        return {
            "version": REPORT_FORMAT_VERSION,
            "root": str(self.root),
            "rules": list(self.rules),
            "n_findings": len(self.findings),
            "n_suppressed": len(self.suppressed),
            "findings": [finding.to_json() for finding in self.findings],
        }

    def to_text(self) -> str:
        """The human-readable report (one ``path:line: RULE message`` per row)."""
        lines = [
            f"{finding.location}: {finding.rule} {finding.message}"
            for finding in self.findings
        ]
        summary = (
            f"{len(self.findings)} finding(s), {len(self.suppressed)} suppressed, "
            f"{len(self.rules)} rule(s) checked under {self.root}"
        )
        return "\n".join([*lines, summary])


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker, in catalogue order.

    Imported lazily so ``repro.tools.check`` itself stays importable from
    the individual checker modules without cycles.
    """
    from repro.tools.determinism import DeterminismChecker
    from repro.tools.locks import LockDisciplineChecker
    from repro.tools.protocols import ProtocolConformanceChecker
    from repro.tools.purity import BackendPurityChecker
    from repro.tools.schema_version import SchemaVersionChecker

    return [
        DeterminismChecker(),
        BackendPurityChecker(),
        SchemaVersionChecker(),
        LockDisciplineChecker(),
        ProtocolConformanceChecker(),
    ]


def default_root() -> Path:
    """The ``repro`` package directory this installation runs from."""
    return Path(__file__).resolve().parent.parent


def select_rules(checkers: Sequence[Checker], selectors: Sequence[str] | None) -> dict[str, str]:
    """Resolve ``--rules`` selectors against the checkers' catalogues.

    A selector is a family name (``determinism``), an exact rule id
    (``REPRO103``) or an id prefix (``REPRO1``), case-insensitive; ``None``
    selects everything.  Unknown selectors raise :class:`ValueError` so CI
    typos fail loudly instead of silently checking nothing.
    """
    catalogue: dict[str, str] = {}
    for checker in checkers:
        catalogue.update(checker.rules)
    if not selectors:
        return catalogue
    families = {checker.name.lower() for checker in checkers}
    selected: dict[str, str] = {}
    for raw in selectors:
        token = raw.strip()
        if not token:
            continue
        lowered = token.lower()
        if lowered in families:
            for checker in checkers:
                if checker.name.lower() == lowered:
                    selected.update(checker.rules)
            continue
        matched = {
            rule: text
            for rule, text in catalogue.items()
            if rule.upper().startswith(token.upper())
        }
        if not matched:
            raise ValueError(
                f"unknown rule selector {token!r}; know families "
                f"{sorted(families)} and rules {sorted(catalogue)}"
            )
        selected.update(matched)
    return selected


def suppressions_for(source: str) -> tuple[set[str], dict[int, set[str]]]:
    """Extract the file-level and per-line suppression pragmas of *source*.

    Returns ``(file_rules, {line: rules})`` — the rule ids suppressed for
    the whole file, and per 1-based line.  Pragmas carry explicit rule ids
    only; there is deliberately no "suppress everything" form.
    """
    file_rules: set[str] = set()
    by_line: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in _FILE_PRAGMA.finditer(text):
            file_rules.update(_pragma_rules(match.group(1)))
        for match in _INLINE_PRAGMA.finditer(text):
            by_line.setdefault(lineno, set()).update(_pragma_rules(match.group(1)))
    return file_rules, by_line


def _pragma_rules(body: str) -> set[str]:
    """Parse the comma-separated rule ids inside a pragma's brackets."""
    return {token.strip().upper() for token in body.split(",") if token.strip()}


def run_checks(
    root: Path | str | None = None,
    rules: Sequence[str] | None = None,
    checkers: Sequence[Checker] | None = None,
) -> CheckReport:
    """Run the checker suite over *root* and return the filtered report.

    *rules* are ``--rules`` selectors (see :func:`select_rules`); *checkers*
    overrides the registered suite (tests inject single checkers with
    narrowed scopes).  Suppression pragmas are applied here, centrally, so
    every rule family gets identical pragma semantics for free.
    """
    root = Path(root) if root is not None else default_root()
    suite = list(checkers) if checkers is not None else all_checkers()
    enabled = select_rules(suite, rules)

    raw: list[Finding] = []
    for checker in suite:
        if not set(checker.rules) & set(enabled):
            continue
        raw.extend(
            finding for finding in checker.check_root(root) if finding.rule in enabled
        )
    raw.sort(key=lambda finding: (finding.path, finding.line, finding.rule))

    kept: list[Finding] = []
    suppressed: list[Finding] = []
    pragma_cache: dict[str, tuple[set[str], dict[int, set[str]]]] = {}
    for finding in raw:
        if finding.path not in pragma_cache:
            path = root / finding.path
            source = path.read_text() if path.suffix == ".py" and path.exists() else ""
            pragma_cache[finding.path] = suppressions_for(source)
        file_rules, by_line = pragma_cache[finding.path]
        if finding.rule in file_rules or finding.rule in by_line.get(finding.line, ()):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return CheckReport(
        root=root, rules=sorted(enabled), findings=kept, suppressed=suppressed
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.tools.check`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.check",
        description="Statically check the repro source tree's invariants.",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repro package directory to scan (default: this installation's)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule selectors: family names (determinism, "
        "purity, schema, locks, protocols), exact ids (REPRO103) or id "
        "prefixes (REPRO1); default: all rules",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report rendering (default text; json is the stable CI schema)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--update-fingerprint",
        action="store_true",
        help="regenerate tools/schema_fingerprint.json (refused unless "
        "CACHE_FORMAT_VERSION was bumped alongside the payload change)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code (0 clean, 1 findings)."""
    args = build_parser().parse_args(argv)
    root = Path(args.root) if args.root else default_root()
    checkers = all_checkers()

    if args.list_rules:
        for checker in checkers:
            for rule, text in sorted(checker.rules.items()):
                print(f"{rule}  [{checker.name}]  {text}")
        return 0

    if args.update_fingerprint:
        from repro.tools.schema_version import update_fingerprint

        ok, message = update_fingerprint(root)
        print(message)
        return 0 if ok else 1

    selectors = args.rules.split(",") if args.rules else None
    try:
        report = run_checks(root=root, rules=selectors, checkers=checkers)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.to_text())
    return 0 if report.clean else 1


def iter_class_defs(tree: ast.AST) -> Iterator[ast.ClassDef]:
    """Top-level and nested class definitions of a module, in source order."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def dotted_name(node: ast.AST) -> str | None:
    """The dotted source form of a Name/Attribute chain (``"time.time"``).

    Returns ``None`` for anything that is not a plain dotted chain — calls,
    subscripts and literals have no stable dotted identity.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def const_tuple_of(node: ast.AST) -> tuple[str, ...] | None:
    """The string elements of a literal tuple/list, or ``None`` if not one."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: list[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return tuple(values)


def parse_scoped_sources(
    root: Path, patterns: Iterable[str]
) -> list[tuple[str, ast.Module, str]]:
    """Parse every file matching *patterns* under *root*.

    Returns ``(relpath, tree, source)`` triples sorted by path — the shared
    discovery helper for cross-file checkers that need several modules at
    once.
    """
    matched: set[Path] = set()
    for pattern in patterns:
        matched.update(path for path in root.glob(pattern) if path.is_file())
    parsed = []
    for path in sorted(matched):
        source = path.read_text()
        parsed.append((path.relative_to(root).as_posix(), ast.parse(source), source))
    return parsed


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess/CLI tests
    sys.exit(main())
