"""Instance-labelling oracle.

Uncertainty sampling and Revising LF query *instance labels* rather than
label functions; the oracle simply returns the ground-truth label of the
requested training instance (optionally with symmetric label noise, for
robustness experiments).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, ensure_rng


class Oracle:
    """Ground-truth instance labeller with optional symmetric noise.

    Parameters
    ----------
    dataset:
        The training pool whose labels are revealed on request.
    noise_rate:
        Probability of returning a uniformly random *wrong* label instead of
        the true one.
    random_state:
        Seed or generator for the noise.
    """

    def __init__(self, dataset, noise_rate: float = 0.0, random_state: RandomState = None):
        if not 0.0 <= noise_rate <= 1.0:
            raise ValueError("noise_rate must be in [0, 1]")
        self.dataset = dataset
        self.noise_rate = noise_rate
        self.rng = ensure_rng(random_state)
        self.n_queries = 0

    def label(self, index: int) -> int:
        """Return the (possibly noisy) label of training instance *index*."""
        self.n_queries += 1
        true_label = int(self.dataset.labels[index])
        if self.noise_rate > 0.0 and self.rng.random() < self.noise_rate:
            wrong = [c for c in range(self.dataset.n_classes) if c != true_label]
            return int(self.rng.choice(wrong))
        return true_label

    def label_many(self, indices) -> np.ndarray:
        """Vectorised version of :meth:`label`."""
        return np.array([self.label(int(i)) for i in indices], dtype=int)
