"""Label-noise simulation used in the Table 5 study.

With probability ``noise_rate`` a query is "noisy": the simulated user builds
its candidate LF space for the *flipped* class label of the query instance,
so the returned LF still has training-set accuracy above the threshold but
misfires on the query instance — which corrupts the pseudo-label ActiveDP
derives for that instance and therefore degrades the AL model.
"""

from __future__ import annotations

from repro.labeling.lf import LabelFunction
from repro.simulation.simulated_user import SimulatedUser
from repro.utils.rng import RandomState


class NoisySimulatedUser(SimulatedUser):
    """Simulated user that answers a fraction of queries for the wrong class.

    Parameters
    ----------
    dataset, accuracy_threshold, random_state:
        See :class:`SimulatedUser`.
    noise_rate:
        Fraction of queries answered with an LF targeting the flipped label
        (paper: 0 %, 5 %, 10 %, 15 %).
    """

    def __init__(
        self,
        dataset,
        noise_rate: float = 0.0,
        accuracy_threshold: float = 0.6,
        random_state: RandomState = None,
    ):
        super().__init__(dataset, accuracy_threshold, random_state)
        if not 0.0 <= noise_rate <= 1.0:
            raise ValueError("noise_rate must be in [0, 1]")
        self.noise_rate = noise_rate
        self.n_noisy_responses = 0

    def design_lf(self, query_index: int) -> LabelFunction | None:
        """Return an LF, targeting the flipped class for a noisy fraction of queries."""
        noisy = self.noise_rate > 0.0 and self.rng.random() < self.noise_rate
        if noisy:
            true_label = int(self.dataset.labels[query_index])
            flipped = self._flip_label(true_label)
            candidates = self._eligible_candidates(query_index, target_label=flipped)
            lf = self._choose(candidates)
            if lf is not None:
                self.n_noisy_responses += 1
                self.returned_lfs.add(lf)
                return lf
            # No accurate LF exists for the flipped class on this instance;
            # fall back to a clean response so the iteration is not wasted.
        return super().design_lf(query_index)

    def _flip_label(self, label: int) -> int:
        n_classes = self.dataset.n_classes
        if n_classes == 2:
            return 1 - label
        candidates = [c for c in range(n_classes) if c != label]
        return int(self.rng.choice(candidates))
