"""Simulated LF designer following Section 4.1.4 of the paper.

Given a query instance, the simulated user builds the candidate LF space
(keyword LFs for text, decision stumps for tabular data), keeps only LFs with
training-set accuracy above the threshold, removes LFs already returned in
previous iterations, and samples one LF with probability proportional to its
coverage.  The user can also *verify* a proposed LF (used by the IWS
baseline): it marks the LF as accurate when its empirical accuracy exceeds
the same threshold.
"""

from __future__ import annotations

import numpy as np

from repro.labeling.lf import ABSTAIN, LabelFunction
from repro.simulation.candidate_space import CandidateLF, candidate_lfs_for_query
from repro.utils.rng import RandomState, ensure_rng


class SimulatedUser:
    """Coverage-proportional simulated LF designer.

    Parameters
    ----------
    dataset:
        The training pool (ground-truth labels are used only to filter the
        candidate space, exactly as in the paper's simulation protocol).
    accuracy_threshold:
        Minimum training-set accuracy a returned LF must have (paper: 0.6).
    random_state:
        Seed or generator controlling the coverage-proportional choice.
    """

    def __init__(
        self,
        dataset,
        accuracy_threshold: float = 0.6,
        random_state: RandomState = None,
    ):
        if not 0.0 <= accuracy_threshold < 1.0:
            raise ValueError("accuracy_threshold must be in [0, 1)")
        self.dataset = dataset
        self.accuracy_threshold = accuracy_threshold
        self.rng = ensure_rng(random_state)
        self.returned_lfs: set[LabelFunction] = set()

    # ----------------------------------------------------------- LF design
    def design_lf(self, query_index: int) -> LabelFunction | None:
        """Return an LF for *query_index* or ``None`` when no candidate exists.

        The returned LF targets the query instance's true class: the simulated
        user inspects the instance, recognises its label, and writes a rule
        for that label (this is what makes the LF "accurate on the
        corresponding query instance", Section 3.1).  An LF that misfires on
        its own query instance is exactly the *label noise* the paper injects
        separately in the Table 5 study (see
        :class:`~repro.simulation.label_noise.NoisySimulatedUser`).
        """
        true_label = int(self.dataset.labels[query_index])
        candidates = self._eligible_candidates(query_index, target_label=true_label)
        lf = self._choose(candidates)
        if lf is not None:
            self.returned_lfs.add(lf)
        return lf

    # -------------------------------------------------------- LF verification
    def verify_lf(self, lf: LabelFunction) -> bool:
        """IWS-style verification: is the LF's training-set accuracy above threshold?"""
        outputs = lf.apply(self.dataset)
        fired = outputs != ABSTAIN
        if not np.any(fired):
            return False
        accuracy = float(np.mean(outputs[fired] == self.dataset.labels[fired]))
        return accuracy > self.accuracy_threshold

    # ----------------------------------------------------- instance labelling
    def label_instance(self, query_index: int) -> int:
        """Return the ground-truth label (for US / Revising-LF style queries)."""
        return int(self.dataset.labels[query_index])

    # --------------------------------------------------------------- helpers
    def _eligible_candidates(
        self, query_index: int, target_label: int | None
    ) -> list[CandidateLF]:
        candidates = candidate_lfs_for_query(
            self.dataset,
            query_index,
            accuracy_threshold=self.accuracy_threshold,
            target_label=target_label,
        )
        return [c for c in candidates if c.lf not in self.returned_lfs]

    def _choose(self, candidates: list[CandidateLF]) -> LabelFunction | None:
        if not candidates:
            return None
        coverages = np.array([max(c.coverage, 1e-12) for c in candidates])
        probabilities = coverages / coverages.sum()
        choice = int(self.rng.choice(len(candidates), p=probabilities))
        return candidates[choice].lf
