"""User simulation: candidate LF spaces, simulated LF designers and oracles.

The paper evaluates every framework with a simulated user (Section 4.1.4):
for textual datasets the user returns keyword LFs whose keyword occurs in the
query instance and whose training-set accuracy exceeds a threshold; for
tabular datasets the user returns decision stumps with the query instance on
the boundary.  This package implements that protocol, the label-noise variant
used in Table 5, and the instance-labelling oracle used by uncertainty
sampling and Revising LF.
"""

from repro.simulation.candidate_space import (
    CandidateLF,
    enumerate_keyword_lfs,
    keyword_lf_candidates,
    threshold_lf_candidates,
)
from repro.simulation.simulated_user import SimulatedUser
from repro.simulation.label_noise import NoisySimulatedUser
from repro.simulation.oracle import Oracle

__all__ = [
    "CandidateLF",
    "keyword_lf_candidates",
    "threshold_lf_candidates",
    "enumerate_keyword_lfs",
    "SimulatedUser",
    "NoisySimulatedUser",
    "Oracle",
]
