"""Candidate label-function spaces for the simulated user.

Two candidate spaces exist, matching Section 4.1.4 of the paper:

* **Textual datasets** — all keyword LFs ``lambda_{w, y}`` with keyword *w*
  contained in the query instance; eligible LFs must have training-set
  accuracy above the threshold.
* **Tabular datasets** — all decision stumps ``lambda_{j, v, op, y}`` with
  the query instance's feature value on the boundary (``v = x_j``), one per
  (feature, operator, class) combination, again filtered by accuracy.

The keyword statistics are precomputed once per dataset so that per-query
candidate construction is a cheap dictionary lookup even for long runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import TabularDataset, TextDataset
from repro.labeling.lf import KeywordLF, LabelFunction, ThresholdLF


@dataclass
class CandidateLF:
    """A candidate label function plus its training-set statistics.

    Attributes
    ----------
    lf:
        The label function object.
    coverage:
        Fraction of training instances the LF labels.
    accuracy:
        Empirical accuracy of the LF on the training instances it labels.
    """

    lf: LabelFunction
    coverage: float
    accuracy: float


class _KeywordStatistics:
    """Per-keyword document frequency and class-conditional counts."""

    def __init__(self, dataset: TextDataset):
        self.n_documents = len(dataset)
        self.doc_count: dict[str, int] = {}
        self.class_count: dict[str, np.ndarray] = {}
        n_classes = dataset.n_classes
        for tokens, label in zip(dataset.token_sets, dataset.labels):
            for token in tokens:
                if token not in self.doc_count:
                    self.doc_count[token] = 0
                    self.class_count[token] = np.zeros(n_classes)
                self.doc_count[token] += 1
                self.class_count[token][label] += 1

    def coverage(self, keyword: str) -> float:
        return self.doc_count.get(keyword, 0) / max(self.n_documents, 1)

    def accuracy(self, keyword: str, label: int) -> float:
        count = self.doc_count.get(keyword, 0)
        if count == 0:
            return 0.0
        return float(self.class_count[keyword][label] / count)


def _keyword_statistics(dataset: TextDataset) -> _KeywordStatistics:
    # Cached on the dataset object itself: a module-level dict keyed by
    # id(dataset) can hand stale statistics to a new dataset that reuses a
    # freed object's id.
    stats = getattr(dataset, "_keyword_statistics_cache", None)
    if stats is None:
        stats = _KeywordStatistics(dataset)
        dataset._keyword_statistics_cache = stats
    return stats


def keyword_lf_candidates(
    dataset: TextDataset,
    query_index: int,
    accuracy_threshold: float = 0.6,
    target_label: int | None = None,
    min_coverage: float = 0.0,
) -> list[CandidateLF]:
    """Candidate keyword LFs for one query instance of a text dataset.

    Parameters
    ----------
    dataset:
        The training pool (provides token sets and ground-truth labels used
        only for simulation).
    query_index:
        Index of the query instance.
    accuracy_threshold:
        Minimum training-set accuracy for a candidate (paper: 0.6).
    target_label:
        If given, restrict candidates to LFs emitting this class (used by the
        label-noise simulation that targets the *flipped* label); otherwise
        all classes are considered.
    min_coverage:
        Optional minimum coverage filter.
    """
    stats = _keyword_statistics(dataset)
    tokens = dataset.token_sets[query_index]
    labels = range(dataset.n_classes) if target_label is None else [target_label]
    candidates = []
    # Token sets have hash-randomised iteration order; sorting keeps the
    # candidate list (and the coverage-proportional draw over it) identical
    # across processes, which the parallel runner and result cache rely on.
    for keyword in sorted(tokens):
        coverage = stats.coverage(keyword)
        if coverage < min_coverage or coverage == 0.0:
            continue
        for label in labels:
            accuracy = stats.accuracy(keyword, label)
            if accuracy > accuracy_threshold:
                candidates.append(
                    CandidateLF(KeywordLF(keyword, label), coverage, accuracy)
                )
    return candidates


def threshold_lf_candidates(
    dataset: TabularDataset,
    query_index: int,
    accuracy_threshold: float = 0.6,
    target_label: int | None = None,
    min_coverage: float = 0.0,
) -> list[CandidateLF]:
    """Candidate decision-stump LFs for one query instance of a tabular dataset.

    For each feature *j*, operator in ``{<=, >=}`` and class *y*, the stump
    ``x_j op x_query_j -> y`` is a candidate when its training-set accuracy
    exceeds the threshold (paper Section 4.1.4).
    """
    raw = dataset.raw_features
    labels_true = dataset.labels
    query = raw[query_index]
    n_samples = len(raw)
    labels = range(dataset.n_classes) if target_label is None else [target_label]
    candidates = []
    for feature in range(raw.shape[1]):
        value = float(query[feature])
        for op in (">=", "<="):
            fires = raw[:, feature] >= value if op == ">=" else raw[:, feature] <= value
            n_fired = int(fires.sum())
            coverage = n_fired / max(n_samples, 1)
            if n_fired == 0 or coverage < min_coverage:
                continue
            fired_labels = labels_true[fires]
            for label in labels:
                accuracy = float(np.mean(fired_labels == label))
                if accuracy > accuracy_threshold:
                    candidates.append(
                        CandidateLF(ThresholdLF(feature, value, op, label), coverage, accuracy)
                    )
    return candidates


def enumerate_keyword_lfs(
    dataset: TextDataset,
    min_coverage: float = 0.01,
    max_candidates: int | None = None,
) -> list[CandidateLF]:
    """Enumerate the global keyword-LF space of a text dataset.

    Used by the IWS baseline, which proposes candidate LFs for the user to
    verify rather than asking the user to write them.  For every keyword with
    coverage at least *min_coverage*, the LF targeting the keyword's majority
    class is produced.  Candidates are sorted by coverage (descending) and
    optionally truncated.
    """
    stats = _keyword_statistics(dataset)
    candidates = []
    # doc_count inherits hash-randomised set order; sort by keyword and break
    # coverage ties alphabetically so the enumeration is process-independent.
    for keyword, count in sorted(stats.doc_count.items()):
        coverage = count / max(stats.n_documents, 1)
        if coverage < min_coverage:
            continue
        class_counts = stats.class_count[keyword]
        label = int(np.argmax(class_counts))
        accuracy = float(class_counts[label] / count)
        candidates.append(CandidateLF(KeywordLF(keyword, label), coverage, accuracy))
    candidates.sort(key=lambda c: (-c.coverage, c.lf.keyword))
    if max_candidates is not None:
        candidates = candidates[:max_candidates]
    return candidates


def candidate_lfs_for_query(
    dataset,
    query_index: int,
    accuracy_threshold: float = 0.6,
    target_label: int | None = None,
) -> list[CandidateLF]:
    """Dispatch to the keyword or threshold candidate space based on dataset kind."""
    if isinstance(dataset, TextDataset):
        return keyword_lf_candidates(
            dataset, query_index, accuracy_threshold, target_label
        )
    if isinstance(dataset, TabularDataset):
        return threshold_lf_candidates(
            dataset, query_index, accuracy_threshold, target_label
        )
    raise TypeError(
        "dataset must be a TextDataset or TabularDataset, got "
        f"{type(dataset).__name__}"
    )
