"""Label-function diagnostics.

Mirrors Snorkel's ``LFAnalysis``: per-LF coverage, overlap, conflict, and —
when gold labels are available (e.g. on the validation split) — empirical
accuracy.  These statistics drive LabelPick's accuracy pruning step and are
also reported by the example scripts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.labeling.lf import ABSTAIN


@dataclass
class LFSummary:
    """Per-LF statistics.

    Attributes
    ----------
    name:
        LF identifier.
    polarity:
        Sorted tuple of the class labels the LF emits.
    coverage:
        Fraction of instances the LF labels.
    overlap:
        Fraction of instances where the LF labels and at least one other LF
        also labels.
    conflict:
        Fraction of instances where the LF labels and at least one other LF
        emits a different label.
    accuracy:
        Empirical accuracy on instances the LF labels (``None`` without gold
        labels, ``0.0`` if the LF never fires).
    n_correct, n_labeled:
        Raw counts behind ``accuracy``.
    """

    name: str
    polarity: tuple[int, ...]
    coverage: float
    overlap: float
    conflict: float
    accuracy: float | None
    n_correct: int
    n_labeled: int


class LFAnalysis:
    """Compute summary statistics for a label matrix.

    Parameters
    ----------
    label_matrix:
        ``(n_instances, n_lfs)`` matrix with ``-1`` for abstentions.
    lf_names:
        Optional LF names (defaults to ``lf_0 .. lf_{m-1}``).
    """

    def __init__(self, label_matrix: np.ndarray, lf_names: list[str] | None = None):
        label_matrix = np.asarray(label_matrix, dtype=int)
        if label_matrix.ndim != 2:
            raise ValueError("label_matrix must be 2-dimensional")
        self.label_matrix = label_matrix
        n_lfs = label_matrix.shape[1]
        if lf_names is None:
            lf_names = [f"lf_{j}" for j in range(n_lfs)]
        if len(lf_names) != n_lfs:
            raise ValueError("lf_names length must match the number of LF columns")
        self.lf_names = list(lf_names)

    # ------------------------------------------------------------ aggregates
    def coverage(self) -> np.ndarray:
        """Per-LF fraction of labelled instances."""
        if self.label_matrix.shape[1] == 0:
            return np.zeros(0)
        return np.mean(self.label_matrix != ABSTAIN, axis=0)

    def overall_coverage(self) -> float:
        """Fraction of instances labelled by at least one LF."""
        if self.label_matrix.shape[1] == 0:
            return 0.0
        return float(np.mean(np.any(self.label_matrix != ABSTAIN, axis=1)))

    def overlap(self) -> np.ndarray:
        """Per-LF fraction of instances shared with at least one other LF."""
        matrix = self.label_matrix
        n_instances, n_lfs = matrix.shape
        if n_lfs == 0:
            return np.zeros(0)
        active = matrix != ABSTAIN
        active_counts = active.sum(axis=1)
        result = np.zeros(n_lfs)
        for j in range(n_lfs):
            both = active[:, j] & (active_counts >= 2)
            result[j] = both.mean() if n_instances else 0.0
        return result

    def conflict(self) -> np.ndarray:
        """Per-LF fraction of instances where another LF disagrees."""
        matrix = self.label_matrix
        n_instances, n_lfs = matrix.shape
        if n_lfs == 0:
            return np.zeros(0)
        active = matrix != ABSTAIN
        result = np.zeros(n_lfs)
        for j in range(n_lfs):
            conflicts = np.zeros(n_instances, dtype=bool)
            for k in range(n_lfs):
                if k == j:
                    continue
                disagrees = active[:, j] & active[:, k] & (matrix[:, j] != matrix[:, k])
                conflicts |= disagrees
            result[j] = conflicts.mean() if n_instances else 0.0
        return result

    def accuracies(self, y_true: np.ndarray) -> np.ndarray:
        """Per-LF empirical accuracy on labelled instances (0 if never fires)."""
        y_true = np.asarray(y_true, dtype=int)
        matrix = self.label_matrix
        if len(y_true) != matrix.shape[0]:
            raise ValueError("y_true length must match the label matrix rows")
        result = np.zeros(matrix.shape[1])
        for j in range(matrix.shape[1]):
            fired = matrix[:, j] != ABSTAIN
            if not np.any(fired):
                result[j] = 0.0
                continue
            result[j] = float(np.mean(matrix[fired, j] == y_true[fired]))
        return result

    # --------------------------------------------------------------- summary
    def summary(self, y_true: np.ndarray | None = None) -> list[LFSummary]:
        """Return one :class:`LFSummary` per LF."""
        matrix = self.label_matrix
        coverage = self.coverage()
        overlap = self.overlap()
        conflict = self.conflict()
        accuracies = self.accuracies(y_true) if y_true is not None else None

        summaries = []
        for j, name in enumerate(self.lf_names):
            fired = matrix[:, j] != ABSTAIN
            labels = tuple(sorted(set(matrix[fired, j].tolist()))) if np.any(fired) else ()
            n_labeled = int(fired.sum())
            if y_true is not None and n_labeled:
                n_correct = int(np.sum(matrix[fired, j] == np.asarray(y_true)[fired]))
            else:
                n_correct = 0
            summaries.append(
                LFSummary(
                    name=name,
                    polarity=labels,
                    coverage=float(coverage[j]),
                    overlap=float(overlap[j]),
                    conflict=float(conflict[j]),
                    accuracy=float(accuracies[j]) if accuracies is not None else None,
                    n_correct=n_correct,
                    n_labeled=n_labeled,
                )
            )
        return summaries
