"""Data-programming substrate: label functions and label-matrix machinery.

A label function (LF) maps an instance to a class label or abstains
(``ABSTAIN = -1``).  This package provides the LF abstractions used by the
simulated user (keyword LFs for text, decision-stump LFs for tabular data),
applies LF sets to datasets to produce label matrices, and computes the
standard LF diagnostics (coverage, overlap, conflict, empirical accuracy).
"""

from repro.labeling.lf import (
    ABSTAIN,
    KeywordLF,
    LabelFunction,
    LambdaLF,
    ThresholdLF,
)
from repro.labeling.label_matrix import apply_lfs, label_matrix_from_outputs
from repro.labeling.incremental import IncrementalLabelMatrix
from repro.labeling.analysis import LFAnalysis, LFSummary
from repro.labeling.wire import (
    WireFormatError,
    canonical_wire_lfs,
    lf_from_wire,
    lf_to_wire,
)

__all__ = [
    "WireFormatError",
    "canonical_wire_lfs",
    "lf_from_wire",
    "lf_to_wire",
    "IncrementalLabelMatrix",
    "ABSTAIN",
    "LabelFunction",
    "KeywordLF",
    "ThresholdLF",
    "LambdaLF",
    "apply_lfs",
    "label_matrix_from_outputs",
    "LFAnalysis",
    "LFSummary",
]
