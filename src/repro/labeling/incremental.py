"""Incrementally grown label matrices.

The interactive frameworks collect one LF per iteration, so the label matrix
gains one column at a time.  Rebuilding it with ``np.hstack`` on every
addition costs O(n_instances * n_lfs) per iteration — O(n * k^2) over a run.
:class:`IncrementalLabelMatrix` instead writes each new column into a
preallocated buffer with amortised-geometric growth (the classic dynamic
array), making an addition O(n_instances) amortised.

The store is bound to one dataset and also memoises LF applications: the
framework applies the same LF to the same dataset from several places
(matrix column, pseudo-label lookup, duplicate handling), and user-style
LFs are hashable by construction, so a per-LF cache removes the repeated
full-dataset scans.
"""

from __future__ import annotations

import numpy as np

from repro.labeling.lf import ABSTAIN, LabelFunction


class IncrementalLabelMatrix:
    """Amortised-growth column store of LF outputs on one dataset.

    Parameters
    ----------
    dataset:
        The dataset every appended LF is applied to.  Treated as immutable;
        snapshots share it instead of copying it.
    initial_capacity:
        Number of preallocated columns.
    growth_factor:
        Capacity multiplier when the buffer is full (must be > 1).
    """

    def __init__(self, dataset, initial_capacity: int = 8, growth_factor: float = 2.0):
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must be > 1")
        self.dataset = dataset
        self.growth_factor = float(growth_factor)
        self._n_rows = len(dataset)
        self._buffer = np.full((self._n_rows, initial_capacity), ABSTAIN, dtype=int)
        self._n_cols = 0
        self._apply_cache: dict[LabelFunction, np.ndarray] = {}

    # ------------------------------------------------------------- properties
    @property
    def n_rows(self) -> int:
        """Number of dataset instances (rows)."""
        return self._n_rows

    @property
    def n_cols(self) -> int:
        """Number of LF columns stored so far."""
        return self._n_cols

    @property
    def capacity(self) -> int:
        """Number of preallocated columns."""
        return self._buffer.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(n_rows, n_cols)`` view of the stored columns."""
        view = self._buffer[:, : self._n_cols]
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return self._n_rows

    # ------------------------------------------------------------- operations
    def apply(self, lf: LabelFunction) -> np.ndarray:
        """Return ``lf``'s output on the bound dataset, memoised per LF."""
        cached = self._apply_cache.get(lf)
        if cached is None:
            cached = np.asarray(lf.apply(self.dataset), dtype=int)
            if cached.shape != (self._n_rows,):
                raise ValueError(
                    f"LF {lf.name!r} returned shape {cached.shape}, "
                    f"expected ({self._n_rows},)"
                )
            cached.flags.writeable = False
            self._apply_cache[lf] = cached
        return cached

    def append(self, lf: LabelFunction) -> np.ndarray:
        """Apply *lf* and store its output as the next column; return the column."""
        column = self.apply(lf)
        if self._n_cols == self._buffer.shape[1]:
            self._grow()
        self._buffer[:, self._n_cols] = column
        self._n_cols += 1
        return column

    def columns(self, indices) -> np.ndarray:
        """Copy of the columns at *indices* (an ``(n_rows, len(indices))`` array)."""
        # np.take copies exactly once; fancy indexing + .copy() would copy
        # the submatrix twice per call — in the refit hot loop.
        return np.take(self._buffer[:, : self._n_cols], self._int_indices(indices), axis=1)

    def rows(self, indices) -> np.ndarray:
        """Copy of the rows at *indices* (an ``(len(indices), n_cols)`` array)."""
        return np.take(self._buffer[:, : self._n_cols], self._int_indices(indices), axis=0)

    @staticmethod
    def _int_indices(indices) -> np.ndarray:
        indices = np.asarray(indices)
        if indices.dtype == bool:
            # Coercing a mask to int would silently select columns 0/1.
            raise TypeError("boolean masks are not supported; pass integer indices")
        if indices.size and not np.issubdtype(indices.dtype, np.integer):
            # astype would silently truncate float "indices" (e.g. scores
            # passed by mistake); the empty case keeps `[]` working.
            raise TypeError(f"indices must be integers, got dtype {indices.dtype}")
        return indices.astype(int, copy=False)

    # -------------------------------------------------------------- internals
    def _grow(self) -> None:
        old_capacity = self._buffer.shape[1]
        new_capacity = max(old_capacity + 1, int(old_capacity * self.growth_factor))
        grown = np.full((self._n_rows, new_capacity), ABSTAIN, dtype=int)
        grown[:, :old_capacity] = self._buffer
        self._buffer = grown

    def __deepcopy__(self, memo) -> "IncrementalLabelMatrix":
        # Datasets are immutable and LF output vectors are frozen, so a
        # snapshot shares both and only copies the writable column buffer.
        clone = type(self).__new__(type(self))
        memo[id(self)] = clone
        clone.dataset = self.dataset
        clone.growth_factor = self.growth_factor
        clone._n_rows = self._n_rows
        clone._buffer = self._buffer.copy()
        clone._n_cols = self._n_cols
        clone._apply_cache = dict(self._apply_cache)
        return clone
