"""Label-function abstractions.

The paper's simulated user produces two families of label functions:

* **Keyword LFs** for textual datasets: ``lambda_{w, y}`` returns class *y*
  when keyword *w* occurs in the document and abstains otherwise
  (Section 4.1.4).
* **Threshold LFs (decision stumps)** for tabular datasets:
  ``lambda_{j, v, op, y}`` returns class *y* when ``x_j >= v`` (or ``<= v``)
  and abstains otherwise.

Both are implemented as small, hashable, picklable objects so LF sets can be
deduplicated, compared and logged.  ``LambdaLF`` wraps an arbitrary callable
for users who want to write ad-hoc rules against the public API.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

ABSTAIN = -1


class LabelFunction(abc.ABC):
    """A weak-supervision rule mapping instances to a class label or abstain."""

    name: str

    @abc.abstractmethod
    def apply(self, dataset) -> np.ndarray:
        """Vectorised application: return one weak label per dataset instance."""

    def __call__(self, dataset) -> np.ndarray:
        return self.apply(dataset)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}({self.name})"


class KeywordLF(LabelFunction):
    """Return *label* when *keyword* appears in the document's tokens.

    Parameters
    ----------
    keyword:
        The unigram trigger.
    label:
        Class label emitted when the keyword is present.
    """

    def __init__(self, keyword: str, label: int):
        if not keyword:
            raise ValueError("keyword must be a non-empty string")
        if label < 0:
            raise ValueError("label must be a valid class index (>= 0)")
        self.keyword = keyword
        self.label = int(label)
        self.name = f"keyword[{keyword}]->{label}"

    def apply(self, dataset) -> np.ndarray:
        """Apply against a :class:`~repro.datasets.TextDataset` (uses token sets)."""
        token_sets = dataset.token_sets
        output = np.full(len(token_sets), ABSTAIN, dtype=int)
        for i, tokens in enumerate(token_sets):
            if self.keyword in tokens:
                output[i] = self.label
        return output

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, KeywordLF)
            and self.keyword == other.keyword
            and self.label == other.label
        )

    def __hash__(self) -> int:
        return hash(("keyword", self.keyword, self.label))


class ThresholdLF(LabelFunction):
    """Decision-stump LF for tabular data: ``x[feature] op value -> label``.

    Parameters
    ----------
    feature:
        Feature column index.
    value:
        Threshold value.
    op:
        Either ``">="`` or ``"<="``.
    label:
        Class label emitted when the comparison holds.
    """

    _OPS = (">=", "<=")

    def __init__(self, feature: int, value: float, op: str, label: int):
        if op not in self._OPS:
            raise ValueError(f"op must be one of {self._OPS}, got {op!r}")
        if feature < 0:
            raise ValueError("feature index must be non-negative")
        if label < 0:
            raise ValueError("label must be a valid class index (>= 0)")
        self.feature = int(feature)
        self.value = float(value)
        self.op = op
        self.label = int(label)
        self.name = f"x[{feature}]{op}{value:.4g}->{label}"

    def apply(self, dataset) -> np.ndarray:
        """Apply against a :class:`~repro.datasets.TabularDataset` (raw features)."""
        column = dataset.raw_features[:, self.feature]
        if self.op == ">=":
            fires = column >= self.value
        else:
            fires = column <= self.value
        output = np.full(len(column), ABSTAIN, dtype=int)
        output[fires] = self.label
        return output

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ThresholdLF)
            and self.feature == other.feature
            and self.value == other.value
            and self.op == other.op
            and self.label == other.label
        )

    def __hash__(self) -> int:
        return hash(("threshold", self.feature, self.value, self.op, self.label))


class LambdaLF(LabelFunction):
    """Wrap an arbitrary per-instance callable as a label function.

    Parameters
    ----------
    func:
        Callable taking one instance (a document string for text datasets or
        a feature vector for tabular datasets) and returning a class label or
        :data:`ABSTAIN`.
    name:
        Human-readable identifier.
    """

    def __init__(self, func: Callable, name: str):
        if not callable(func):
            raise TypeError("func must be callable")
        self.func = func
        self.name = name

    def apply(self, dataset) -> np.ndarray:
        instances: Sequence = dataset.instances
        output = np.full(len(instances), ABSTAIN, dtype=int)
        for i, instance in enumerate(instances):
            output[i] = int(self.func(instance))
        return output

    def __eq__(self, other) -> bool:
        return isinstance(other, LambdaLF) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("lambda", self.name))
