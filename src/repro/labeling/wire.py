"""JSON wire schema for label functions.

The serving layer receives LF sets as JSON and turns them into
content-hashable trial descriptions; the worker fleet turns the same dicts
back into live :class:`~repro.labeling.lf.LabelFunction` objects.  This
module is the single definition of that encoding, used from both ends:

* ``{"type": "keyword", "keyword": "...", "label": 0}`` —
  :class:`~repro.labeling.lf.KeywordLF`;
* ``{"type": "threshold", "feature": 3, "value": 0.5, "op": ">=",
  "label": 1}`` — :class:`~repro.labeling.lf.ThresholdLF`.

``lf_to_wire(lf_from_wire(d))`` is the canonical form of a wire dict:
key-complete, value-normalised (ints are ints, values are floats), so two
requests describing the same LF always produce the same content hash.
``LambdaLF`` carries arbitrary code and deliberately has no wire form.
"""

from __future__ import annotations

from typing import Sequence

from repro.labeling.lf import KeywordLF, LabelFunction, ThresholdLF


class WireFormatError(ValueError):
    """A wire dict does not describe a valid label function."""


def lf_from_wire(payload: dict) -> LabelFunction:
    """Build a :class:`LabelFunction` from its JSON wire dict.

    Raises :class:`WireFormatError` on unknown types, missing fields or
    values the LF constructors reject — the serving layer turns these into
    400 responses instead of enqueueing a trial doomed to fail.
    """
    if not isinstance(payload, dict):
        raise WireFormatError(f"LF wire form must be an object, got {type(payload).__name__}")
    kind = payload.get("type")
    try:
        if kind == "keyword":
            return KeywordLF(
                keyword=str(_require(payload, "keyword")),
                label=int(_require(payload, "label")),
            )
        if kind == "threshold":
            return ThresholdLF(
                feature=int(_require(payload, "feature")),
                value=float(_require(payload, "value")),
                op=str(_require(payload, "op")),
                label=int(_require(payload, "label")),
            )
    except WireFormatError:
        raise
    except (TypeError, ValueError) as error:
        raise WireFormatError(f"invalid {kind!r} LF: {error}") from error
    raise WireFormatError(
        f"unknown LF type {kind!r}; supported types are 'keyword' and 'threshold'"
    )


def lf_to_wire(lf: LabelFunction) -> dict:
    """Encode a :class:`LabelFunction` as its JSON wire dict.

    Only keyword and threshold LFs have a wire form; anything else (e.g.
    ``LambdaLF`` wrapping arbitrary code) raises :class:`WireFormatError`.
    """
    if isinstance(lf, KeywordLF):
        return {"type": "keyword", "keyword": lf.keyword, "label": lf.label}
    if isinstance(lf, ThresholdLF):
        return {
            "type": "threshold",
            "feature": lf.feature,
            "value": lf.value,
            "op": lf.op,
            "label": lf.label,
        }
    raise WireFormatError(f"{type(lf).__name__} has no JSON wire form")


def canonical_wire_lfs(payloads: Sequence[dict]) -> list[dict]:
    """Validate and canonicalise a wire LF list (round-trip through objects).

    The result is what goes into a trial's content-hashed
    ``pipeline_kwargs``: equivalent requests (``"label": 1`` vs
    ``"label": 1.0``, extra whitespace-insignificant variations) normalise
    to identical dicts and therefore identical content keys.
    """
    return [lf_to_wire(lf_from_wire(payload)) for payload in payloads]


def _require(payload: dict, field: str):
    """Fetch a required wire field or raise :class:`WireFormatError`."""
    try:
        return payload[field]
    except KeyError:
        raise WireFormatError(
            f"{payload.get('type')!r} LF is missing required field {field!r}"
        ) from None
