"""Constructing label matrices from sets of label functions.

The label matrix ``W`` has one row per instance and one column per LF, with
``W[i, j] = lf_j(x_i)`` and ``-1`` for abstention — the standard data-
programming representation consumed by every label model in
``repro.label_models``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.labeling.lf import ABSTAIN, LabelFunction


def apply_lfs(lfs: Sequence[LabelFunction], dataset) -> np.ndarray:
    """Apply every LF in *lfs* to *dataset* and stack the outputs column-wise.

    Returns an ``(n_instances, n_lfs)`` integer matrix; an empty LF list
    yields an ``(n_instances, 0)`` matrix so downstream shapes stay valid.
    """
    n_instances = len(dataset)
    if len(lfs) == 0:
        return np.empty((n_instances, 0), dtype=int)
    columns = []
    for lf in lfs:
        output = np.asarray(lf.apply(dataset), dtype=int)
        if output.shape != (n_instances,):
            raise ValueError(
                f"LF {lf.name!r} returned shape {output.shape}, "
                f"expected ({n_instances},)"
            )
        columns.append(output)
    return np.column_stack(columns)


def label_matrix_from_outputs(outputs: Sequence[np.ndarray]) -> np.ndarray:
    """Stack precomputed per-LF output vectors into a label matrix."""
    if len(outputs) == 0:
        raise ValueError("outputs must contain at least one LF output vector")
    lengths = {len(o) for o in outputs}
    if len(lengths) != 1:
        raise ValueError(f"LF outputs have inconsistent lengths: {sorted(lengths)}")
    return np.column_stack([np.asarray(o, dtype=int) for o in outputs])


def coverage_mask(label_matrix: np.ndarray) -> np.ndarray:
    """Boolean mask of instances covered by at least one non-abstaining LF."""
    if label_matrix.ndim != 2:
        raise ValueError("label_matrix must be 2-dimensional")
    if label_matrix.shape[1] == 0:
        return np.zeros(label_matrix.shape[0], dtype=bool)
    return np.any(label_matrix != ABSTAIN, axis=1)
