"""repro: a full reproduction of "ActiveDP: Bridging Active Learning and Data
Programming" (Guan & Koudas, EDBT 2024).

The package is organised as a layered library:

* ``repro.models`` / ``repro.text`` / ``repro.graphical`` — NumPy/SciPy
  substrates (logistic regression, TF-IDF, graphical lasso) replacing the
  scikit-learn components the paper builds on;
* ``repro.labeling`` / ``repro.label_models`` — the data-programming stack
  (label functions, label matrices, MeTaL-style label models);
* ``repro.active_learning`` — query-selection strategies, including the
  paper's ADP sampler;
* ``repro.core`` — the ActiveDP framework itself (ConFusion, LabelPick,
  pseudo-labelling, the interactive loop);
* ``repro.datasets`` / ``repro.simulation`` — synthetic stand-ins for the
  paper's eight benchmark datasets and the simulated user protocol;
* ``repro.baselines`` — Nemo, IWS, Revising LF and uncertainty-sampling
  pipelines used in the end-to-end comparison;
* ``repro.experiments`` — the evaluation protocol and the runners that
  regenerate Figure 3 and Tables 2-5.

Quickstart::

    from repro import ActiveDP, ActiveDPConfig, load_dataset
    from repro.simulation import SimulatedUser

    split = load_dataset("youtube", random_state=0)
    framework = ActiveDP(split.train, split.valid,
                         ActiveDPConfig.for_dataset_kind(split.kind),
                         random_state=0)
    user = SimulatedUser(split.train, random_state=0)
    framework.run(user, n_iterations=50)
    print(framework.label_quality())
    print(framework.evaluate_end_model(split.test))
"""

from repro.core import ActiveDP, ActiveDPConfig, ConFusion, LabelPick
from repro.active_learning import ADPSampler
from repro.datasets import load_dataset, dataset_names
from repro.labeling import ABSTAIN, KeywordLF, LabelFunction, ThresholdLF

__version__ = "1.0.0"

__all__ = [
    "ActiveDP",
    "ActiveDPConfig",
    "ConFusion",
    "LabelPick",
    "ADPSampler",
    "load_dataset",
    "dataset_names",
    "ABSTAIN",
    "LabelFunction",
    "KeywordLF",
    "ThresholdLF",
    "__version__",
]
