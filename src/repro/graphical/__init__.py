"""Sparse graphical-model substrate used by the LabelPick LF selector.

LabelPick (paper Section 3.4) learns the dependency structure between label
functions and the class label with the graphical lasso [Friedman et al. 2008]
and keeps the label functions inside the Markov blanket of the label.  This
package implements the estimator stack from scratch: empirical covariance,
an L1-penalised (lasso) coordinate-descent inner solver, the block
coordinate-descent graphical lasso, and helpers to read the Markov blanket
off the estimated precision matrix.
"""

from repro.graphical.covariance import (
    RunningCovariance,
    empirical_covariance,
    shrink_covariance,
)
from repro.graphical.lasso import lasso_coordinate_descent
from repro.graphical.glasso import GraphicalLassoResult, graphical_lasso
from repro.graphical.markov_blanket import dependency_graph, markov_blanket

__all__ = [
    "empirical_covariance",
    "shrink_covariance",
    "RunningCovariance",
    "lasso_coordinate_descent",
    "graphical_lasso",
    "GraphicalLassoResult",
    "markov_blanket",
    "dependency_graph",
]
