"""Empirical covariance estimation with optional shrinkage.

Besides the one-shot :func:`empirical_covariance`, the module provides
:class:`RunningCovariance`, an incrementally maintained estimate for data
matrices that only ever *grow* — new rows appended at the bottom (new
observations) and new columns appended at the right (new variables).  That is
exactly the access pattern of LabelPick across ActiveDP iterations: the
pseudo-labelled query set gains rows and the LF set gains columns, but
nothing already seen ever changes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d


def empirical_covariance(X, assume_centered: bool = False, shrinkage: float = 0.0) -> np.ndarray:
    """Return the (optionally shrunk) empirical covariance matrix of *X*.

    Parameters
    ----------
    X:
        Data matrix of shape ``(n_samples, n_features)``.
    assume_centered:
        If ``True`` the data is not recentred before computing the covariance.
    shrinkage:
        Convex combination weight toward the scaled identity
        (``shrinkage * trace/p * I``), in ``[0, 1]``.  A little shrinkage keeps
        the matrix well-conditioned when the labelled subset is tiny, which is
        exactly the regime LabelPick operates in early in a run.
    """
    X = check_2d(X, "X")
    if not 0.0 <= shrinkage <= 1.0:
        raise ValueError(f"shrinkage must be in [0, 1], got {shrinkage}")
    if not assume_centered:
        X = X - X.mean(axis=0)
    n_samples = X.shape[0]
    covariance = (X.T @ X) / max(n_samples, 1)
    if shrinkage > 0.0:
        covariance = shrink_covariance(covariance, shrinkage)
    return covariance


def shrink_covariance(covariance: np.ndarray, shrinkage: float) -> np.ndarray:
    """Convex combination of *covariance* with its scaled-identity target.

    The same ``shrinkage * trace/p * I`` regulariser
    :func:`empirical_covariance` applies, factored out so covariances built
    elsewhere (e.g. sub-blocks of a :class:`RunningCovariance`) can be shrunk
    identically.
    """
    if not 0.0 <= shrinkage <= 1.0:
        raise ValueError(f"shrinkage must be in [0, 1], got {shrinkage}")
    if shrinkage == 0.0:
        return covariance
    p = covariance.shape[0]
    mu = np.trace(covariance) / p
    return (1.0 - shrinkage) * covariance + shrinkage * mu * np.eye(p)


class RunningCovariance:
    """Exact empirical covariance over a row- and column-growing data matrix.

    Maintains the uncentered sufficient statistics (row count, per-column
    sums, Gram matrix ``X^T X``) so that

    * appending ``r`` rows is a rank-``r`` update — ``O(r * p**2)`` instead of
      the ``O(n * p**2)`` full recompute, and
    * appending ``k`` columns costs one ``(p, n) @ (n, k)`` cross-product —
      ``O(n * p * k)`` instead of ``O(n * (p + k)**2)``.

    The raw data seen so far is kept (it is needed to cross new columns with
    old rows), so this trades memory for recompute — appropriate for the
    small, append-only matrices LabelPick operates on.

    The produced covariance equals
    ``empirical_covariance(data, shrinkage=...)`` up to floating-point
    accumulation order, and any variable subset can be read off the full
    estimate with :meth:`covariance` — centring is per-column, so the
    sub-block of the full covariance *is* the covariance of the sub-matrix.
    """

    def __init__(self):
        self._data: np.ndarray | None = None
        self._sum: np.ndarray | None = None
        self._gram: np.ndarray | None = None

    @property
    def n_rows(self) -> int:
        return 0 if self._data is None else self._data.shape[0]

    @property
    def n_features(self) -> int:
        return 0 if self._data is None else self._data.shape[1]

    # ------------------------------------------------------------- updates
    def add_rows(self, rows: np.ndarray) -> None:
        """Append observations (must match the current column count)."""
        rows = check_2d(rows, "rows")
        if self._data is None:
            self._data = np.array(rows, dtype=float)
            self._sum = self._data.sum(axis=0)
            self._gram = self._data.T @ self._data
            return
        if rows.shape[1] != self.n_features:
            raise ValueError(
                f"rows have {rows.shape[1]} columns, accumulator has "
                f"{self.n_features}"
            )
        rows = np.asarray(rows, dtype=float)
        self._sum = self._sum + rows.sum(axis=0)
        self._gram = self._gram + rows.T @ rows
        self._data = np.vstack([self._data, rows])

    def add_columns(self, columns: np.ndarray) -> None:
        """Append variables, given their full history on every seen row."""
        columns = check_2d(columns, "columns")
        if self._data is None:
            raise ValueError("add_columns requires at least one seen row block")
        if columns.shape[0] != self.n_rows:
            raise ValueError(
                f"columns have {columns.shape[0]} rows, accumulator has "
                f"{self.n_rows}"
            )
        columns = np.asarray(columns, dtype=float)
        cross = self._data.T @ columns
        self._gram = np.block(
            [[self._gram, cross], [cross.T, columns.T @ columns]]
        )
        self._sum = np.concatenate([self._sum, columns.sum(axis=0)])
        self._data = np.hstack([self._data, columns])

    def update(self, data: np.ndarray) -> None:
        """Absorb the current full data matrix, diffing against what was seen.

        *data* must extend the previously absorbed matrix: at least as many
        rows and columns, with the already-seen top-left block unchanged
        (appends only — the caller guarantees prefix stability).  New columns
        are crossed with the old rows first, then the new rows are absorbed
        at full width.
        """
        data = check_2d(data, "data")
        if self._data is None:
            self.add_rows(data)
            return
        old_rows, old_cols = self._data.shape
        if data.shape[0] < old_rows or data.shape[1] < old_cols:
            raise ValueError(
                f"data {data.shape} does not extend the seen matrix "
                f"({old_rows}, {old_cols}); the accumulator is append-only"
            )
        if data.shape[1] > old_cols:
            self.add_columns(np.asarray(data, dtype=float)[:old_rows, old_cols:])
        if data.shape[0] > old_rows:
            self.add_rows(np.asarray(data, dtype=float)[old_rows:, :])

    # -------------------------------------------------------------- readout
    def covariance(self, shrinkage: float = 0.0) -> np.ndarray:
        """The covariance of everything absorbed so far, optionally shrunk."""
        if self._data is None:
            raise ValueError("no data absorbed yet")
        n = max(self.n_rows, 1)
        mean = self._sum / n
        covariance = self._gram / n - np.outer(mean, mean)
        covariance = 0.5 * (covariance + covariance.T)
        return shrink_covariance(covariance, shrinkage)
