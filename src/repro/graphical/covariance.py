"""Empirical covariance estimation with optional shrinkage."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d


def empirical_covariance(X, assume_centered: bool = False, shrinkage: float = 0.0) -> np.ndarray:
    """Return the (optionally shrunk) empirical covariance matrix of *X*.

    Parameters
    ----------
    X:
        Data matrix of shape ``(n_samples, n_features)``.
    assume_centered:
        If ``True`` the data is not recentred before computing the covariance.
    shrinkage:
        Convex combination weight toward the scaled identity
        (``shrinkage * trace/p * I``), in ``[0, 1]``.  A little shrinkage keeps
        the matrix well-conditioned when the labelled subset is tiny, which is
        exactly the regime LabelPick operates in early in a run.
    """
    X = check_2d(X, "X")
    if not 0.0 <= shrinkage <= 1.0:
        raise ValueError(f"shrinkage must be in [0, 1], got {shrinkage}")
    if not assume_centered:
        X = X - X.mean(axis=0)
    n_samples = X.shape[0]
    covariance = (X.T @ X) / max(n_samples, 1)
    if shrinkage > 0.0:
        p = covariance.shape[0]
        mu = np.trace(covariance) / p
        covariance = (1.0 - shrinkage) * covariance + shrinkage * mu * np.eye(p)
    return covariance
