"""Markov-blanket extraction from an estimated precision matrix.

In a Gaussian graphical model two variables are conditionally independent
given all others exactly when their precision-matrix entry is zero, so the
Markov blanket of a target variable is the set of variables with non-zero
precision entries against it.  LabelPick uses this to keep only the label
functions adjacent to the class label in the learned dependency structure.
"""

from __future__ import annotations

import networkx as nx
import numpy as np


def markov_blanket(precision: np.ndarray, target: int, threshold: float = 1e-6) -> list[int]:
    """Return the indices adjacent to *target* in the precision graph.

    Parameters
    ----------
    precision:
        Symmetric precision matrix.
    target:
        Index of the target variable (e.g. the class-label column).
    threshold:
        Absolute values below this are treated as exact zeros.
    """
    precision = np.asarray(precision, dtype=float)
    if precision.ndim != 2 or precision.shape[0] != precision.shape[1]:
        raise ValueError("precision must be a square matrix")
    p = precision.shape[0]
    if not 0 <= target < p:
        raise ValueError(f"target index {target} out of range for {p} variables")
    neighbours = [
        j for j in range(p)
        if j != target and abs(precision[target, j]) > threshold
    ]
    return neighbours


def dependency_graph(
    precision: np.ndarray,
    names: list[str] | None = None,
    threshold: float = 1e-6,
) -> nx.Graph:
    """Build an undirected dependency graph from a precision matrix.

    Nodes carry the provided *names* (defaulting to integer indices) and each
    edge stores the corresponding precision entry as its ``weight``.
    """
    precision = np.asarray(precision, dtype=float)
    p = precision.shape[0]
    if names is None:
        names = [str(i) for i in range(p)]
    if len(names) != p:
        raise ValueError("names must match the precision matrix dimension")
    graph = nx.Graph()
    graph.add_nodes_from(names)
    for i in range(p):
        for j in range(i + 1, p):
            if abs(precision[i, j]) > threshold:
                graph.add_edge(names[i], names[j], weight=float(precision[i, j]))
    return graph
