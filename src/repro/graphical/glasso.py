"""Graphical lasso: sparse inverse-covariance estimation.

Implements the block coordinate-descent algorithm of Friedman, Hastie and
Tibshirani (2008).  Each sweep updates one row/column of the covariance
estimate by solving a lasso problem on the remaining block; the precision
matrix is recovered at the end.  The estimated precision's sparsity pattern
defines the undirected dependency graph LabelPick uses to extract the Markov
blanket of the class label.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphical.covariance import empirical_covariance
from repro.graphical.lasso import lasso_coordinate_descent


@dataclass
class GraphicalLassoResult:
    """Output of :func:`graphical_lasso`.

    Attributes
    ----------
    covariance:
        Regularised covariance estimate ``W``.
    precision:
        Sparse precision (inverse covariance) estimate ``Theta``.
    n_iter:
        Number of outer sweeps performed.
    converged:
        Whether the outer loop reached its tolerance before ``max_iter``.
    """

    covariance: np.ndarray
    precision: np.ndarray
    n_iter: int
    converged: bool


def graphical_lasso(
    data_or_cov: np.ndarray,
    alpha: float = 0.05,
    from_covariance: bool = False,
    max_iter: int = 100,
    tol: float = 1e-4,
    shrinkage: float = 0.05,
) -> GraphicalLassoResult:
    """Estimate a sparse precision matrix with an L1 penalty *alpha*.

    Parameters
    ----------
    data_or_cov:
        Either a data matrix ``(n_samples, n_features)`` or, when
        ``from_covariance=True``, a precomputed covariance matrix.
    alpha:
        L1 penalty on off-diagonal precision entries; larger values give
        sparser dependency graphs.
    from_covariance:
        Interpret the first argument as a covariance matrix directly.
    max_iter:
        Maximum number of outer block-coordinate sweeps.
    tol:
        Convergence threshold on the mean absolute change of the covariance
        estimate between sweeps.
    shrinkage:
        Identity shrinkage applied to the empirical covariance for numerical
        stability (ignored when ``from_covariance=True``).
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    if from_covariance:
        emp_cov = np.asarray(data_or_cov, dtype=float)
        if emp_cov.ndim != 2 or emp_cov.shape[0] != emp_cov.shape[1]:
            raise ValueError("covariance matrix must be square")
    else:
        emp_cov = empirical_covariance(data_or_cov, shrinkage=shrinkage)

    p = emp_cov.shape[0]
    if p == 1:
        precision = np.array([[1.0 / max(emp_cov[0, 0], 1e-12)]])
        return GraphicalLassoResult(emp_cov.copy(), precision, 0, True)

    covariance = emp_cov.copy()
    # Keep the diagonal slightly inflated so every sub-block stays invertible.
    covariance.flat[:: p + 1] = emp_cov.flat[:: p + 1] + alpha
    precision = np.linalg.pinv(covariance)
    indices = np.arange(p)

    converged = False
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        previous = covariance.copy()
        for j in range(p):
            rest = indices != j
            sub_cov = covariance[np.ix_(rest, rest)]
            target = emp_cov[rest, j]
            beta = lasso_coordinate_descent(sub_cov, target, alpha)
            covariance[rest, j] = sub_cov @ beta
            covariance[j, rest] = covariance[rest, j]

            # Recover the corresponding precision entries (standard glasso
            # update): theta_jj = 1 / (w_jj - w_12^T beta).
            denom = covariance[j, j] - covariance[rest, j] @ beta
            denom = max(denom, 1e-12)
            precision[j, j] = 1.0 / denom
            precision[rest, j] = -beta / denom
            precision[j, rest] = precision[rest, j]
        change = np.mean(np.abs(covariance - previous))
        if change < tol:
            converged = True
            break

    precision = 0.5 * (precision + precision.T)
    return GraphicalLassoResult(covariance, precision, n_iter, converged)
