"""Graphical lasso: sparse inverse-covariance estimation.

Implements the block coordinate-descent algorithm of Friedman, Hastie and
Tibshirani (2008).  Each sweep updates one row/column of the covariance
estimate by solving a lasso problem on the remaining block; the precision
matrix is recovered at the end.  The estimated precision's sparsity pattern
defines the undirected dependency graph LabelPick uses to extract the Markov
blanket of the class label.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphical.covariance import empirical_covariance
from repro.numerics import get_backend
from repro.numerics.glasso import glasso_block_sweeps


@dataclass
class GraphicalLassoResult:
    """Output of :func:`graphical_lasso`.

    Attributes
    ----------
    covariance:
        Regularised covariance estimate ``W``.
    precision:
        Sparse precision (inverse covariance) estimate ``Theta``.
    n_iter:
        Number of outer sweeps performed.
    converged:
        Whether the outer loop reached its tolerance before ``max_iter``.
    warm_started:
        Whether the iterates were seeded from a previous result.
    final_change:
        Mean absolute covariance change of the last sweep (``None`` when no
        sweep ran).
    """

    covariance: np.ndarray
    precision: np.ndarray
    n_iter: int
    converged: bool
    warm_started: bool = False
    final_change: float | None = None


def graphical_lasso(
    data_or_cov: np.ndarray,
    alpha: float = 0.05,
    from_covariance: bool = False,
    max_iter: int = 100,
    tol: float = 1e-4,
    shrinkage: float = 0.05,
    warm_start: GraphicalLassoResult | None = None,
    warm_start_map: np.ndarray | None = None,
    backend: str | None = None,
    early_stop: bool = False,
) -> GraphicalLassoResult:
    """Estimate a sparse precision matrix with an L1 penalty *alpha*.

    Parameters
    ----------
    data_or_cov:
        Either a data matrix ``(n_samples, n_features)`` or, when
        ``from_covariance=True``, a precomputed covariance matrix.
    alpha:
        L1 penalty on off-diagonal precision entries; larger values give
        sparser dependency graphs.
    from_covariance:
        Interpret the first argument as a covariance matrix directly.
    max_iter:
        Maximum number of outer block-coordinate sweeps.
    tol:
        Convergence threshold on the mean absolute change of the covariance
        estimate between sweeps.
    shrinkage:
        Identity shrinkage applied to the empirical covariance for numerical
        stability (ignored when ``from_covariance=True``).
    warm_start:
        A previous :class:`GraphicalLassoResult` to seed the covariance
        iterate from.  The problem is convex, so the solution is unchanged —
        a near-solution initialiser (e.g. the previous ActiveDP iteration's
        estimate) just needs far fewer sweeps to reach it.
    warm_start_map:
        For each variable of the *new* problem, the variable index in the
        warm-start result it corresponds to, or ``-1`` for a variable the
        previous result did not cover.  ``None`` means the identity map
        (requires matching dimensions).  Mapped pairs seed their covariance
        entries from the previous estimate; pairs involving a new variable
        keep the cold initialisation.  An inapplicable payload (wrong
        dimensions, out-of-range map) degrades to a cold start, never raises.
    backend:
        Array-backend name for the block coordinate-descent sweeps (``None``
        resolves through ``REPRO_BACKEND`` to the numpy reference backend;
        see :mod:`repro.numerics`).
    early_stop:
        Judge the mean absolute covariance change against ``tol`` *relative
        to the iterate's own scale* instead of as an absolute threshold,
        making the stopping rule invariant to the covariance's units.
        ``False`` (default) keeps the historical semantics exactly.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    if from_covariance:
        emp_cov = np.asarray(data_or_cov, dtype=float)
        if emp_cov.ndim != 2 or emp_cov.shape[0] != emp_cov.shape[1]:
            raise ValueError("covariance matrix must be square")
    else:
        emp_cov = empirical_covariance(data_or_cov, shrinkage=shrinkage)

    p = emp_cov.shape[0]
    if p == 1:
        precision = np.array([[1.0 / max(emp_cov[0, 0], 1e-12)]])
        return GraphicalLassoResult(emp_cov.copy(), precision, 0, True)

    covariance = emp_cov.copy()
    # Keep the diagonal slightly inflated so every sub-block stays invertible.
    covariance.flat[:: p + 1] = emp_cov.flat[:: p + 1] + alpha
    warm_started = _seed_covariance(covariance, warm_start, warm_start_map)
    if warm_started:
        # The diagonal is a fixed constraint of the glasso solution
        # (W_jj = S_jj + alpha), so it always comes from the *new* data.
        covariance.flat[:: p + 1] = emp_cov.flat[:: p + 1] + alpha
        # A previous estimate's off-diagonal block combined with the new
        # diagonal can be indefinite (the block coordinate descent diverges
        # on an indefinite iterate); only a positive-definite seed is usable.
        if np.linalg.eigvalsh(covariance).min() <= 1e-10:
            covariance = emp_cov.copy()
            covariance.flat[:: p + 1] = emp_cov.flat[:: p + 1] + alpha
            warm_started = False
    precision = np.linalg.pinv(covariance)

    resolved = get_backend(backend)
    covariance, precision, n_iter, converged, final_change = glasso_block_sweeps(
        resolved,
        covariance,
        precision,
        emp_cov,
        alpha,
        max_iter=max_iter,
        tol=tol,
        early_stop=early_stop,
    )
    covariance = resolved.to_numpy(covariance)
    precision = resolved.to_numpy(precision)

    precision = 0.5 * (precision + precision.T)
    return GraphicalLassoResult(
        covariance, precision, n_iter, converged, warm_started, final_change
    )


def _seed_covariance(
    covariance: np.ndarray,
    warm_start: GraphicalLassoResult | None,
    warm_start_map: np.ndarray | None,
) -> bool:
    """Overwrite mapped off-diagonal entries of *covariance* in place.

    Returns whether any entry was seeded; an inapplicable payload leaves the
    cold initialisation untouched.
    """
    if warm_start is None:
        return False
    previous = np.asarray(warm_start.covariance, dtype=float)
    if previous.ndim != 2 or previous.shape[0] != previous.shape[1]:
        return False
    p = covariance.shape[0]
    p_prev = previous.shape[0]
    if warm_start_map is None:
        # The implicit identity map is only meaningful for identical
        # dimensions; seeding a smaller problem positionally would silently
        # pair the wrong variables.
        if p_prev != p:
            return False
        column_map = np.arange(p)
    else:
        column_map = np.asarray(warm_start_map, dtype=int)
    if column_map.shape != (p,) or np.any(column_map >= p_prev):
        return False
    mapped = np.flatnonzero(column_map >= 0)
    if mapped.size < 2:
        # Warm information lives in the off-diagonal entries; fewer than two
        # mapped variables carry none.
        return False
    covariance[np.ix_(mapped, mapped)] = previous[
        np.ix_(column_map[mapped], column_map[mapped])
    ]
    return True
