"""Coordinate-descent solver for the lasso problem.

The graphical lasso repeatedly solves lasso regressions of each variable on
all others; this module provides that inner solver for problems expressed in
terms of a Gram matrix (``Q = X^T X``) and linear term (``b = X^T y``), which
is the form needed inside the block coordinate-descent glasso loop.
"""

from __future__ import annotations

import numpy as np

from repro.numerics import get_backend
from repro.numerics.glasso import lasso_cd


def lasso_coordinate_descent(
    gram: np.ndarray,
    linear: np.ndarray,
    alpha: float,
    max_iter: int = 200,
    tol: float = 1e-6,
    initial: np.ndarray | None = None,
) -> np.ndarray:
    """Minimise ``0.5 w^T Q w - b^T w + alpha * ||w||_1`` by coordinate descent.

    Parameters
    ----------
    gram:
        Positive semi-definite matrix ``Q`` of shape ``(p, p)``.
    linear:
        Vector ``b`` of shape ``(p,)``.
    alpha:
        Non-negative L1 penalty.
    max_iter:
        Maximum number of full coordinate sweeps.
    tol:
        Convergence threshold on the largest coefficient update in a sweep.
    initial:
        Optional warm-start coefficients.
    """
    gram = np.asarray(gram, dtype=float)
    linear = np.asarray(linear, dtype=float)
    if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
        raise ValueError(f"gram must be square, got shape {gram.shape}")
    if linear.shape != (gram.shape[0],):
        raise ValueError("linear term has incompatible shape")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")

    return lasso_cd(
        get_backend("numpy"),
        gram,
        linear,
        alpha,
        max_iter=max_iter,
        tol=tol,
        initial=initial,
    )
