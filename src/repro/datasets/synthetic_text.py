"""Synthetic text-classification corpora.

The real benchmark corpora (Youtube Spam, IMDB, Yelp, Amazon, Bios-PT,
Bios-JP) are not available offline, so each is replaced by a seeded generative
process with the same *structure* the paper's labelling dynamics rely on:

* every class has a pool of **signal keywords** that occur much more often in
  documents of that class than in the other classes, so keyword label
  functions with accuracy above the paper's 0.6 threshold exist and differ in
  coverage and precision;
* documents also contain **background words** drawn from a Zipf-like
  distribution that carry no class signal, so TF-IDF features are
  high-dimensional and noisy exactly like real text;
* per-keyword occurrence rates vary, so some user-returned LFs are much more
  useful than others — the regime LabelPick is designed for.

Class separability (``signal_strength`` vs ``noise_strength`` and the number
of signal words) is tuned per dataset profile in the registry so the relative
difficulty ordering of the paper's datasets (Youtube easy, Yelp/Amazon harder,
Bios in between) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import DataSplit, TextDataset
from repro.models.model_selection import train_valid_test_split
from repro.text.tokenizer import tokenize
from repro.text.vectorizer import TfidfVectorizer
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class SyntheticTextConfig:
    """Parameters of the synthetic text generator.

    Attributes
    ----------
    name, task:
        Identifier and task description (propagated into the DataSplit).
    n_documents:
        Total number of documents before the 80/10/10 split.
    n_classes:
        Number of classes (all paper datasets are binary).
    class_balance:
        Prior over classes; ``None`` means uniform.
    signal_words:
        Mapping class -> list of keywords that indicate the class.  When
        empty, ``n_signal_words`` synthetic keywords per class are generated.
    n_signal_words:
        Number of signal keywords generated per class when ``signal_words``
        does not provide them.
    signal_strength:
        Peak probability that a signal keyword appears in a document of its
        own class (individual keywords get decayed versions of this value).
    noise_strength:
        Probability that a signal keyword appears in a document of another
        class (controls LF precision / task difficulty).
    n_ambiguous_words:
        Number of *ambiguous* keywords per class: words that lean toward one
        class only moderately (accuracy just above the simulated user's 0.6
        threshold) but occur in documents of both classes.  Real corpora are
        full of such words; they are what makes the paper's label-noise
        mechanism (an accurate-overall LF that misfires on its query
        instance, Section 4.3.3) possible.
    ambiguous_strength:
        Occurrence probability of an ambiguous keyword in documents of its
        leaning class; the other class sees it at 55 % of this rate, giving
        LF accuracies around 0.62-0.67.
    n_background_words:
        Size of the class-independent background vocabulary.
    background_words_per_doc:
        Mean number of background tokens per document (Poisson).
    max_features:
        Cap on the TF-IDF vocabulary.
    valid_fraction, test_fraction:
        Split fractions (paper: 0.1 / 0.1).
    """

    name: str = "synthetic-text"
    task: str = "Text classification"
    n_documents: int = 1000
    n_classes: int = 2
    class_balance: tuple[float, ...] | None = None
    signal_words: dict[int, list[str]] = field(default_factory=dict)
    n_signal_words: int = 30
    signal_strength: float = 0.35
    noise_strength: float = 0.04
    n_ambiguous_words: int = 8
    ambiguous_strength: float = 0.15
    n_background_words: int = 400
    background_words_per_doc: float = 12.0
    max_features: int = 3000
    valid_fraction: float = 0.1
    test_fraction: float = 0.1

    def __post_init__(self):
        if self.n_documents < 10:
            raise ValueError("n_documents must be at least 10")
        if self.n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        if not 0 < self.signal_strength <= 1:
            raise ValueError("signal_strength must be in (0, 1]")
        if not 0 <= self.noise_strength < self.signal_strength:
            raise ValueError("noise_strength must be in [0, signal_strength)")
        if self.class_balance is not None:
            balance = np.asarray(self.class_balance, dtype=float)
            if balance.shape != (self.n_classes,):
                raise ValueError("class_balance must have one entry per class")
            if np.any(balance <= 0):
                raise ValueError("class_balance entries must be positive")


_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def _alpha_suffix(index: int, length: int = 3) -> str:
    """Encode *index* as a fixed-length lowercase-letter string (base 26).

    Generated tokens must be purely alphabetic so the word tokeniser keeps
    them intact (digits would be stripped and distinct words would collide).
    """
    letters = []
    for _ in range(length):
        letters.append(_ALPHABET[index % 26])
        index //= 26
    return "".join(reversed(letters))


def _build_signal_words(config: SyntheticTextConfig) -> dict[int, list[str]]:
    """Return the per-class signal keyword lists, generating names if needed."""
    words: dict[int, list[str]] = {}
    for cls in range(config.n_classes):
        provided = list(config.signal_words.get(cls, []))
        needed = max(config.n_signal_words - len(provided), 0)
        class_tag = _ALPHABET[cls % 26]
        generated = [f"sig{class_tag}{_alpha_suffix(i)}" for i in range(needed)]
        words[cls] = provided + generated
    return words


def _build_ambiguous_words(config: SyntheticTextConfig) -> dict[int, list[str]]:
    """Per-class ambiguous keywords (moderately correlated with their class)."""
    words: dict[int, list[str]] = {}
    for cls in range(config.n_classes):
        class_tag = _ALPHABET[cls % 26]
        words[cls] = [
            f"amb{class_tag}{_alpha_suffix(i)}" for i in range(config.n_ambiguous_words)
        ]
    return words


def _background_vocabulary(config: SyntheticTextConfig) -> list[str]:
    return [f"filler{_alpha_suffix(i)}" for i in range(config.n_background_words)]


def generate_text_dataset(
    config: SyntheticTextConfig,
    random_state: RandomState = 0,
) -> DataSplit:
    """Generate a synthetic text classification :class:`DataSplit`.

    The generator draws a class for every document, inserts class signal
    keywords with per-keyword decayed probabilities, sprinkles in signal
    keywords of *other* classes at ``noise_strength`` (these are what make
    some candidate LFs fall below the accuracy threshold), and pads the
    document with Zipf-distributed background words.  TF-IDF features are
    fitted on the training split only.
    """
    rng = ensure_rng(random_state)
    signal_words = _build_signal_words(config)
    ambiguous_words = _build_ambiguous_words(config)
    background = _background_vocabulary(config)

    balance = (
        np.asarray(config.class_balance, dtype=float)
        if config.class_balance is not None
        else np.full(config.n_classes, 1.0)
    )
    balance = balance / balance.sum()

    # Per-keyword occurrence probability decays with keyword rank so LFs have
    # a spread of coverages (a handful of frequent keywords, a long tail).
    keyword_probs: dict[int, np.ndarray] = {}
    for cls, words in signal_words.items():
        ranks = np.arange(len(words))
        keyword_probs[cls] = config.signal_strength * np.power(0.95, ranks)

    # Zipf weights over the background vocabulary.
    background_weights = 1.0 / np.arange(1, len(background) + 1)
    background_weights /= background_weights.sum()

    labels = rng.choice(config.n_classes, size=config.n_documents, p=balance)
    documents: list[str] = []
    for label in labels:
        tokens: list[str] = []
        for cls in range(config.n_classes):
            probs = keyword_probs[cls] if cls == label else np.full(
                len(signal_words[cls]), config.noise_strength
            )
            fires = rng.random(len(probs)) < probs
            tokens.extend(word for word, fire in zip(signal_words[cls], fires) if fire)
        for cls in range(config.n_classes):
            rate = (
                config.ambiguous_strength
                if cls == label
                else 0.55 * config.ambiguous_strength
            )
            fires = rng.random(len(ambiguous_words[cls])) < rate
            tokens.extend(
                word for word, fire in zip(ambiguous_words[cls], fires) if fire
            )
        n_background = rng.poisson(config.background_words_per_doc)
        if n_background > 0:
            tokens.extend(
                rng.choice(background, size=n_background, p=background_weights).tolist()
            )
        if not tokens:
            tokens = [background[int(rng.integers(len(background)))]]
        rng.shuffle(tokens)
        documents.append(" ".join(tokens))

    train_idx, valid_idx, test_idx = train_valid_test_split(
        config.n_documents,
        valid_fraction=config.valid_fraction,
        test_fraction=config.test_fraction,
        stratify=labels,
        random_state=rng,
    )

    vectorizer = TfidfVectorizer(min_df=2, max_features=config.max_features)
    train_texts = [documents[i] for i in train_idx]
    vectorizer.fit(train_texts)

    def build_split(indices: np.ndarray, split_name: str) -> TextDataset:
        texts = [documents[i] for i in indices]
        token_sets = [frozenset(tokenize(text)) for text in texts]
        features = vectorizer.transform(texts)
        return TextDataset(
            texts,
            token_sets,
            features,
            labels[indices],
            config.n_classes,
            name=f"{config.name}/{split_name}",
        )

    metadata = {
        "signal_words": signal_words,
        "ambiguous_words": ambiguous_words,
        "vectorizer": vectorizer,
        "class_balance": balance.tolist(),
        "config": config,
    }
    return DataSplit(
        name=config.name,
        task=config.task,
        kind="text",
        train=build_split(train_idx, "train"),
        valid=build_split(valid_idx, "valid"),
        test=build_split(test_idx, "test"),
        metadata=metadata,
    )
