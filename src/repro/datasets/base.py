"""Dataset containers shared by the whole framework.

Two concrete dataset kinds exist, matching the two LF families of the paper:

* :class:`TextDataset` — raw documents plus their token sets (consumed by
  keyword LFs) and a dense feature matrix (TF-IDF) for the ML models.
* :class:`TabularDataset` — raw feature values (consumed by threshold LFs)
  plus a standardised feature matrix for the ML models.

A :class:`DataSplit` groups the train/validation/test portions of one
benchmark dataset together with task metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


class Dataset:
    """Base container: features, labels and task metadata.

    Parameters
    ----------
    features:
        Dense ``(n_instances, n_features)`` model-ready feature matrix.
    labels:
        Ground-truth integer labels (used by the simulated user / oracle and
        for evaluation; the frameworks never read training labels directly).
    n_classes:
        Number of classes in the task.
    name:
        Human-readable dataset (split) name.
    """

    def __init__(self, features: np.ndarray, labels: np.ndarray, n_classes: int, name: str = ""):
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if features.ndim != 2:
            raise ValueError("features must be a 2-dimensional array")
        if labels.ndim != 1:
            raise ValueError("labels must be a 1-dimensional array")
        if len(features) != len(labels):
            raise ValueError(
                f"features ({len(features)}) and labels ({len(labels)}) lengths differ"
            )
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
            raise ValueError("labels must lie in [0, n_classes)")
        self.features = features
        self.labels = labels
        self.n_classes = n_classes
        self.name = name

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def n_features(self) -> int:
        """Number of model-ready feature columns."""
        return self.features.shape[1]

    @property
    def instances(self) -> Sequence:
        """Raw instances (documents or feature rows); overridden by subclasses."""
        return self.features

    def class_balance(self) -> np.ndarray:
        """Empirical class distribution."""
        counts = np.bincount(self.labels, minlength=self.n_classes).astype(float)
        total = counts.sum()
        return counts / total if total else np.full(self.n_classes, 1.0 / self.n_classes)

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return a new dataset restricted to *indices*."""
        indices = np.asarray(indices, dtype=int)
        return Dataset(self.features[indices], self.labels[indices], self.n_classes, self.name)


class TextDataset(Dataset):
    """Text classification dataset.

    Parameters
    ----------
    texts:
        Raw documents.
    token_sets:
        Set of tokens per document (what keyword LFs match against).
    features:
        Dense TF-IDF (or other) feature matrix aligned with *texts*.
    labels, n_classes, name:
        See :class:`Dataset`.
    """

    def __init__(
        self,
        texts: Sequence[str],
        token_sets: Sequence[frozenset],
        features: np.ndarray,
        labels: np.ndarray,
        n_classes: int,
        name: str = "",
    ):
        super().__init__(features, labels, n_classes, name)
        if len(texts) != len(self.labels) or len(token_sets) != len(self.labels):
            raise ValueError("texts, token_sets and labels must have equal lengths")
        self.texts = list(texts)
        self.token_sets = [frozenset(tokens) for tokens in token_sets]

    @property
    def instances(self) -> Sequence[str]:
        """Raw documents."""
        return self.texts

    def subset(self, indices: np.ndarray) -> "TextDataset":
        indices = np.asarray(indices, dtype=int)
        return TextDataset(
            [self.texts[i] for i in indices],
            [self.token_sets[i] for i in indices],
            self.features[indices],
            self.labels[indices],
            self.n_classes,
            self.name,
        )


class TabularDataset(Dataset):
    """Tabular classification dataset.

    Parameters
    ----------
    raw_features:
        Unscaled feature values (what threshold LFs compare against).
    features:
        Standardised feature matrix used by the ML models.
    feature_names:
        Optional column names.
    labels, n_classes, name:
        See :class:`Dataset`.
    """

    def __init__(
        self,
        raw_features: np.ndarray,
        features: np.ndarray,
        labels: np.ndarray,
        n_classes: int,
        feature_names: Sequence[str] | None = None,
        name: str = "",
    ):
        super().__init__(features, labels, n_classes, name)
        raw_features = np.asarray(raw_features, dtype=float)
        if raw_features.shape[0] != len(self.labels):
            raise ValueError("raw_features and labels must have equal lengths")
        self.raw_features = raw_features
        if feature_names is None:
            feature_names = [f"feature_{j}" for j in range(raw_features.shape[1])]
        if len(feature_names) != raw_features.shape[1]:
            raise ValueError("feature_names must match the raw feature count")
        self.feature_names = list(feature_names)

    @property
    def instances(self) -> np.ndarray:
        """Raw (unscaled) feature rows."""
        return self.raw_features

    def subset(self, indices: np.ndarray) -> "TabularDataset":
        indices = np.asarray(indices, dtype=int)
        return TabularDataset(
            self.raw_features[indices],
            self.features[indices],
            self.labels[indices],
            self.n_classes,
            self.feature_names,
            self.name,
        )


@dataclass
class DataSplit:
    """Train/validation/test splits of one benchmark dataset.

    Attributes
    ----------
    name:
        Registry name (e.g. ``"youtube"``).
    task:
        Task description from Table 2 (e.g. ``"Spam classification"``).
    kind:
        ``"text"`` or ``"tabular"``.
    train, valid, test:
        The three dataset splits.
    metadata:
        Free-form extra information recorded by the generator.
    """

    name: str
    task: str
    kind: str
    train: Dataset
    valid: Dataset
    test: Dataset
    metadata: dict = field(default_factory=dict)

    @property
    def n_classes(self) -> int:
        """Number of classes in the task."""
        return self.train.n_classes

    def sizes(self) -> tuple[int, int, int]:
        """Return ``(n_train, n_valid, n_test)``."""
        return len(self.train), len(self.valid), len(self.test)
