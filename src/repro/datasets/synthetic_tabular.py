"""Synthetic tabular datasets (Occupancy and Census stand-ins).

The paper's two tabular datasets are replaced by seeded generators with the
properties the evaluation depends on:

* the class signal is carried by *individual features with shifted means*,
  so single-feature decision-stump LFs above the 0.6 accuracy threshold
  exist — exactly the candidate LF space of the simulated user;
* **Occupancy** is nearly linearly separable with a handful of strongly
  informative sensor-like features (the paper's downstream model reaches
  ~0.99), while **Census** has weaker, partially redundant signal and class
  imbalance (the paper's model plateaus around 0.8);
* a configurable fraction of pure-noise features keeps the learning problem
  from being trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import DataSplit, TabularDataset
from repro.models.model_selection import train_valid_test_split
from repro.models.preprocessing import StandardScaler
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class SyntheticTabularConfig:
    """Parameters of the synthetic tabular generator.

    Attributes
    ----------
    name, task:
        Identifier and task description.
    n_samples:
        Total number of rows before the 80/10/10 split.
    n_informative:
        Number of features whose class-conditional means differ.
    n_noise:
        Number of pure-noise features.
    separation:
        Mean shift (in units of the feature's standard deviation) between the
        two classes on informative features; larger = easier dataset.
    feature_scales:
        Optional per-feature scale factors to give raw features realistic,
        heterogeneous ranges (sensor readings, incomes, ages, ...).
    class_balance:
        Prior over the two classes; ``None`` means uniform.
    correlated_noise:
        Strength of shared latent noise across informative features, which
        makes some features partially redundant (as in Census).
    feature_names:
        Optional column names.
    valid_fraction, test_fraction:
        Split fractions (paper: 0.1 / 0.1).
    """

    name: str = "synthetic-tabular"
    task: str = "Tabular classification"
    n_samples: int = 1000
    n_informative: int = 5
    n_noise: int = 3
    separation: float = 1.5
    feature_scales: tuple[float, ...] | None = None
    class_balance: tuple[float, ...] | None = None
    correlated_noise: float = 0.3
    feature_names: list[str] = field(default_factory=list)
    valid_fraction: float = 0.1
    test_fraction: float = 0.1

    def __post_init__(self):
        if self.n_samples < 10:
            raise ValueError("n_samples must be at least 10")
        if self.n_informative < 1:
            raise ValueError("n_informative must be >= 1")
        if self.n_noise < 0:
            raise ValueError("n_noise must be >= 0")
        if self.separation <= 0:
            raise ValueError("separation must be positive")

    @property
    def n_features(self) -> int:
        """Total feature count."""
        return self.n_informative + self.n_noise


def generate_tabular_dataset(
    config: SyntheticTabularConfig,
    random_state: RandomState = 0,
) -> DataSplit:
    """Generate a synthetic tabular classification :class:`DataSplit`."""
    rng = ensure_rng(random_state)
    n_classes = 2
    balance = (
        np.asarray(config.class_balance, dtype=float)
        if config.class_balance is not None
        else np.full(n_classes, 1.0)
    )
    balance = balance / balance.sum()

    labels = rng.choice(n_classes, size=config.n_samples, p=balance)
    n_features = config.n_features

    # Informative features: class-dependent mean shift with per-feature
    # decreasing strength so stumps on different features have different
    # accuracies, plus a shared latent factor for partial redundancy.
    strengths = config.separation * np.power(0.8, np.arange(config.n_informative))
    latent = rng.standard_normal(config.n_samples)
    raw = np.zeros((config.n_samples, n_features))
    signed_labels = 2.0 * labels - 1.0
    for j in range(config.n_informative):
        noise = rng.standard_normal(config.n_samples)
        raw[:, j] = (
            signed_labels * strengths[j] / 2.0
            + np.sqrt(1.0 - config.correlated_noise) * noise
            + np.sqrt(config.correlated_noise) * latent
        )
    for j in range(config.n_informative, n_features):
        raw[:, j] = rng.standard_normal(config.n_samples)

    # Rescale/offset so raw features live in heterogeneous, realistic ranges.
    if config.feature_scales is not None:
        scales = np.asarray(config.feature_scales, dtype=float)
        if scales.shape != (n_features,):
            raise ValueError("feature_scales must have one entry per feature")
    else:
        scales = 1.0 + 9.0 * rng.random(n_features)
    offsets = 10.0 * rng.random(n_features)
    raw = raw * scales + offsets

    feature_names = list(config.feature_names) if config.feature_names else [
        f"feature_{j}" for j in range(n_features)
    ]
    if len(feature_names) != n_features:
        raise ValueError("feature_names must match the total feature count")

    train_idx, valid_idx, test_idx = train_valid_test_split(
        config.n_samples,
        valid_fraction=config.valid_fraction,
        test_fraction=config.test_fraction,
        stratify=labels,
        random_state=rng,
    )

    scaler = StandardScaler()
    scaler.fit(raw[train_idx])

    def build_split(indices: np.ndarray, split_name: str) -> TabularDataset:
        return TabularDataset(
            raw[indices],
            scaler.transform(raw[indices]),
            labels[indices],
            n_classes,
            feature_names,
            name=f"{config.name}/{split_name}",
        )

    metadata = {
        "scaler": scaler,
        "class_balance": balance.tolist(),
        "config": config,
        "feature_names": feature_names,
    }
    return DataSplit(
        name=config.name,
        task=config.task,
        kind="tabular",
        train=build_split(train_idx, "train"),
        valid=build_split(valid_idx, "valid"),
        test=build_split(test_idx, "test"),
        metadata=metadata,
    )
