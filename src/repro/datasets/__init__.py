"""Datasets: containers, synthetic generators and the benchmark registry.

The paper evaluates on six public textual datasets (Youtube Spam, IMDB, Yelp,
Amazon, Bios-PT, Bios-JP) and two tabular datasets (Occupancy, Census).  The
environment is offline, so this package provides seeded synthetic generators
that mimic each dataset's task structure — class-correlated keywords for text,
single-feature threshold signal for tabular data — at a configurable scale.
``load_dataset(name)`` is the single entry point used by examples, tests and
benchmarks.
"""

from repro.datasets.base import DataSplit, Dataset, TabularDataset, TextDataset
from repro.datasets.registry import (
    DATASET_PROFILES,
    DatasetProfile,
    dataset_names,
    dataset_summary,
    load_dataset,
)
from repro.datasets.synthetic_text import SyntheticTextConfig, generate_text_dataset
from repro.datasets.synthetic_tabular import (
    SyntheticTabularConfig,
    generate_tabular_dataset,
)

__all__ = [
    "Dataset",
    "TextDataset",
    "TabularDataset",
    "DataSplit",
    "SyntheticTextConfig",
    "generate_text_dataset",
    "SyntheticTabularConfig",
    "generate_tabular_dataset",
    "DatasetProfile",
    "DATASET_PROFILES",
    "load_dataset",
    "dataset_names",
    "dataset_summary",
]
