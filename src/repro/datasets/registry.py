"""Benchmark dataset registry mirroring Table 2 of the paper.

Each :class:`DatasetProfile` records the paper's dataset statistics (task and
train/valid/test sizes from Table 2) together with the synthetic generator
configuration used as the offline stand-in.  ``load_dataset(name)`` builds
the synthetic :class:`~repro.datasets.base.DataSplit`; the ``scale`` argument
shrinks or grows the generated corpus relative to the profile's default size
so benchmarks stay fast while the paper-scale protocol remains reachable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DataSplit
from repro.datasets.synthetic_tabular import SyntheticTabularConfig, generate_tabular_dataset
from repro.datasets.synthetic_text import SyntheticTextConfig, generate_text_dataset
from repro.utils.rng import RandomState


@dataclass(frozen=True)
class DatasetProfile:
    """Registry entry describing one benchmark dataset.

    Attributes
    ----------
    name:
        Registry key (lowercase, e.g. ``"youtube"``).
    task:
        Task description, as reported in Table 2.
    kind:
        ``"text"`` or ``"tabular"``.
    paper_train, paper_valid, paper_test:
        Split sizes reported in Table 2 of the paper.
    default_size:
        Total synthetic instances generated at ``scale=1.0``.
    difficulty:
        Separation knob passed to the generator (higher = easier).
    class_balance:
        Class prior used by the generator.
    """

    name: str
    task: str
    kind: str
    paper_train: int
    paper_valid: int
    paper_test: int
    default_size: int
    difficulty: float
    class_balance: tuple[float, float] = (0.5, 0.5)


_SPAM_WORDS = [
    "check", "subscribe", "channel", "free", "click", "visit", "follow",
    "money", "win", "giveaway", "promo", "link", "earn", "cash", "offer",
]
_HAM_WORDS = [
    "song", "love", "music", "video", "best", "beautiful", "voice", "amazing",
    "remember", "childhood", "classic", "melody", "lyrics", "favorite", "great",
]
_POSITIVE_WORDS = [
    "excellent", "wonderful", "amazing", "delicious", "perfect", "loved",
    "fantastic", "awesome", "brilliant", "enjoyable", "recommend", "superb",
    "charming", "delightful", "satisfying",
]
_NEGATIVE_WORDS = [
    "terrible", "awful", "horrible", "waste", "boring", "disappointing",
    "worst", "bland", "rude", "broken", "refund", "mediocre", "annoying",
    "poor", "dull",
]
_PROFESSOR_WORDS = [
    "professor", "research", "university", "phd", "lecture", "publications",
    "faculty", "grant", "laboratory", "thesis", "conference", "scholar",
    "tenure", "seminar", "journal",
]
_TEACHER_WORDS = [
    "teacher", "classroom", "students", "school", "curriculum", "elementary",
    "grade", "lesson", "teaching", "kindergarten", "homework", "pupils",
    "literacy", "tutoring", "education",
]
_JOURNALIST_WORDS = [
    "journalist", "reporter", "news", "editor", "newspaper", "coverage",
    "investigative", "press", "column", "stories", "broadcast", "media",
    "correspondent", "editorial", "interview",
]
_PHOTOGRAPHER_WORDS = [
    "photographer", "camera", "portrait", "wedding", "studio", "lens",
    "photography", "shoot", "exhibition", "landscape", "prints", "editorial",
    "lighting", "gallery", "images",
]


DATASET_PROFILES: dict[str, DatasetProfile] = {
    "youtube": DatasetProfile(
        name="youtube", task="Spam classification", kind="text",
        paper_train=1566, paper_valid=195, paper_test=195,
        default_size=800, difficulty=1.3,
    ),
    "imdb": DatasetProfile(
        name="imdb", task="Sentiment analysis", kind="text",
        paper_train=20000, paper_valid=2500, paper_test=2500,
        default_size=1200, difficulty=0.9,
    ),
    "yelp": DatasetProfile(
        name="yelp", task="Sentiment analysis", kind="text",
        paper_train=20000, paper_valid=2500, paper_test=2500,
        default_size=1200, difficulty=0.8,
    ),
    "amazon": DatasetProfile(
        name="amazon", task="Sentiment analysis", kind="text",
        paper_train=20000, paper_valid=2500, paper_test=2500,
        default_size=1200, difficulty=0.7,
    ),
    "bios-pt": DatasetProfile(
        name="bios-pt", task="Biography classification", kind="text",
        paper_train=19672, paper_valid=2458, paper_test=2458,
        default_size=1200, difficulty=1.1,
    ),
    "bios-jp": DatasetProfile(
        name="bios-jp", task="Biography classification", kind="text",
        paper_train=25808, paper_valid=3225, paper_test=3225,
        default_size=1200, difficulty=1.2,
    ),
    "occupancy": DatasetProfile(
        name="occupancy", task="Occupancy prediction", kind="tabular",
        paper_train=14317, paper_valid=1789, paper_test=1789,
        default_size=1200, difficulty=3.5, class_balance=(0.65, 0.35),
    ),
    "census": DatasetProfile(
        name="census", task="Income classification", kind="tabular",
        paper_train=25541, paper_valid=3192, paper_test=3192,
        default_size=1200, difficulty=2.0, class_balance=(0.7, 0.3),
    ),
}

_TEXT_SIGNAL_WORDS: dict[str, dict[int, list[str]]] = {
    "youtube": {1: _SPAM_WORDS, 0: _HAM_WORDS},
    "imdb": {1: _POSITIVE_WORDS, 0: _NEGATIVE_WORDS},
    "yelp": {1: _POSITIVE_WORDS, 0: _NEGATIVE_WORDS},
    "amazon": {1: _POSITIVE_WORDS, 0: _NEGATIVE_WORDS},
    "bios-pt": {0: _PROFESSOR_WORDS, 1: _TEACHER_WORDS},
    "bios-jp": {0: _JOURNALIST_WORDS, 1: _PHOTOGRAPHER_WORDS},
}

_TABULAR_FEATURE_NAMES: dict[str, list[str]] = {
    "occupancy": ["light", "temperature", "co2", "humidity", "humidity_ratio", "hour", "noise_a"],
    "census": [
        "age", "education_num", "hours_per_week", "capital_gain", "capital_loss",
        "occupation_code", "marital_code", "relationship_code", "noise_a", "noise_b",
    ],
}


def dataset_names(kind: str | None = None) -> list[str]:
    """Return the registry keys, optionally filtered by ``kind``."""
    if kind is None:
        return list(DATASET_PROFILES)
    if kind not in ("text", "tabular"):
        raise ValueError("kind must be None, 'text' or 'tabular'")
    return [name for name, profile in DATASET_PROFILES.items() if profile.kind == kind]


def load_dataset(
    name: str,
    scale: float = 1.0,
    random_state: RandomState = 0,
) -> DataSplit:
    """Generate the synthetic stand-in for benchmark dataset *name*.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case-insensitive).
    scale:
        Multiplier on the profile's default synthetic size (``scale=1.0``
        generates ``default_size`` instances before the 80/10/10 split).
    random_state:
        Seed for the generator; the same seed always yields the same corpus.
    """
    key = name.lower()
    if key not in DATASET_PROFILES:
        raise ValueError(f"unknown dataset {name!r}; choose from {sorted(DATASET_PROFILES)}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    profile = DATASET_PROFILES[key]
    total = max(int(round(profile.default_size * scale)), 50)

    if profile.kind == "text":
        config = SyntheticTextConfig(
            name=profile.name,
            task=profile.task,
            n_documents=total,
            class_balance=profile.class_balance,
            signal_words=_TEXT_SIGNAL_WORDS[key],
            n_signal_words=30,
            signal_strength=min(0.26 * profile.difficulty, 0.6),
            noise_strength=0.06 / (1.0 + 2.0 * profile.difficulty),
            n_background_words=300,
            background_words_per_doc=10.0,
            max_features=2500,
        )
        split = generate_text_dataset(config, random_state=random_state)
    else:
        feature_names = _TABULAR_FEATURE_NAMES[key]
        n_noise = sum(1 for f in feature_names if f.startswith("noise"))
        config = SyntheticTabularConfig(
            name=profile.name,
            task=profile.task,
            n_samples=total,
            n_informative=len(feature_names) - n_noise,
            n_noise=n_noise,
            separation=profile.difficulty,
            class_balance=profile.class_balance,
            correlated_noise=0.3 if key == "census" else 0.15,
            feature_names=feature_names,
        )
        split = generate_tabular_dataset(config, random_state=random_state)

    split.metadata["profile"] = profile
    return split


def dataset_summary(split: DataSplit) -> dict:
    """Return a Table-2-style summary row for a generated :class:`DataSplit`."""
    profile: DatasetProfile | None = split.metadata.get("profile")
    n_train, n_valid, n_test = split.sizes()
    summary = {
        "name": split.name,
        "task": split.task,
        "kind": split.kind,
        "n_train": n_train,
        "n_valid": n_valid,
        "n_test": n_test,
        "n_classes": split.n_classes,
        "n_features": split.train.n_features,
    }
    if profile is not None:
        summary.update(
            paper_train=profile.paper_train,
            paper_valid=profile.paper_valid,
            paper_test=profile.paper_test,
        )
    return summary
