"""Random-number-generator helpers.

All stochastic components in the library accept either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  ``ensure_rng``
normalises any of these into a ``Generator`` so downstream code never has to
special-case seed handling, and ``spawn_seeds`` derives independent child
seeds for multi-seed experiment protocols.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *random_state*.

    Parameters
    ----------
    random_state:
        ``None`` (fresh entropy), an ``int`` seed, or an existing generator
        (returned unchanged).

    Raises
    ------
    TypeError
        If *random_state* is of an unsupported type.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValueError(f"seed must be non-negative, got {random_state}")
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int seed or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_seeds(base_seed: int, n_seeds: int) -> list[int]:
    """Derive *n_seeds* reproducible, well-separated child seeds.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children are
    statistically independent regardless of how close the base seeds are.
    """
    if n_seeds <= 0:
        raise ValueError(f"n_seeds must be positive, got {n_seeds}")
    sequence = np.random.SeedSequence(base_seed)
    children = sequence.spawn(n_seeds)
    return [int(child.generate_state(1)[0]) for child in children]
