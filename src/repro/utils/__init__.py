"""Shared utilities: random-number helpers and argument validation."""

from repro.utils.rng import ensure_rng, spawn_seeds
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_consistent_length,
    check_labels,
    check_probability_matrix,
)

__all__ = [
    "ensure_rng",
    "spawn_seeds",
    "check_1d",
    "check_2d",
    "check_consistent_length",
    "check_labels",
    "check_probability_matrix",
]
