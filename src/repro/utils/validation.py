"""Input-validation helpers used across the library.

These are deliberately small and explicit: every public estimator and
framework entry point funnels its array arguments through these checks so
that user errors surface as clear ``ValueError`` messages rather than cryptic
NumPy broadcasting failures deep inside a solver.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_1d(array, name: str = "array") -> np.ndarray:
    """Coerce *array* to a 1-D ``ndarray`` or raise ``ValueError``."""
    result = np.asarray(array)
    if result.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {result.shape}")
    return result


def check_2d(array, name: str = "array") -> np.ndarray:
    """Coerce *array* to a 2-D float ``ndarray`` or raise ``ValueError``."""
    result = np.asarray(array, dtype=float)
    if result.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {result.shape}")
    if result.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one row")
    if not np.all(np.isfinite(result)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return result


def check_consistent_length(*arrays: Sequence) -> None:
    """Raise ``ValueError`` unless all arguments have the same first dimension."""
    lengths = [len(a) for a in arrays if a is not None]
    if len(set(lengths)) > 1:
        raise ValueError(f"inconsistent numbers of samples: {lengths}")


def check_labels(y, n_classes: int | None = None, name: str = "y") -> np.ndarray:
    """Validate a vector of integer class labels in ``{0, ..., C-1}``.

    Parameters
    ----------
    y:
        Label vector.
    n_classes:
        If given, labels must lie in ``[0, n_classes)``.
    """
    labels = check_1d(y, name=name)
    if labels.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.issubdtype(labels.dtype, np.integer):
        as_int = labels.astype(int)
        if not np.allclose(as_int, labels):
            raise ValueError(f"{name} must contain integer class labels")
        labels = as_int
    if labels.min() < 0:
        raise ValueError(f"{name} contains negative labels")
    if n_classes is not None and labels.max() >= n_classes:
        raise ValueError(
            f"{name} contains label {labels.max()} outside [0, {n_classes})"
        )
    return labels


def check_probability_matrix(proba, name: str = "proba", atol: float = 1e-6) -> np.ndarray:
    """Validate an ``(n, C)`` matrix of class probabilities (rows sum to 1)."""
    matrix = check_2d(proba, name=name)
    if matrix.min() < -atol or matrix.max() > 1 + atol:
        raise ValueError(f"{name} entries must lie in [0, 1]")
    row_sums = matrix.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-3):
        raise ValueError(f"{name} rows must sum to 1, got sums in "
                         f"[{row_sums.min():.4f}, {row_sums.max():.4f}]")
    return matrix
