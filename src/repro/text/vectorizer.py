"""Bag-of-words and TF-IDF vectorisers built on :class:`Vocabulary`.

Dense NumPy output is used throughout: the synthetic benchmark corpora keep
vocabularies small (a few thousand terms), so dense matrices stay well within
memory while keeping the downstream linear algebra simple and fast.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.text.tokenizer import tokenize
from repro.text.vocabulary import Vocabulary


class CountVectorizer:
    """Convert raw documents into a dense term-count matrix.

    Parameters
    ----------
    min_df:
        Minimum document frequency for a term to enter the vocabulary.
    max_features:
        Optional cap on vocabulary size (most document-frequent terms kept).
    binary:
        If ``True`` record term presence (0/1) instead of counts.
    tokenizer:
        Callable mapping a document to a token list; defaults to
        :func:`repro.text.tokenize`.
    """

    def __init__(
        self,
        min_df: int = 1,
        max_features: int | None = None,
        binary: bool = False,
        tokenizer: Callable[[str], list[str]] | None = None,
    ):
        self.min_df = min_df
        self.max_features = max_features
        self.binary = binary
        self.tokenizer = tokenizer or tokenize

    def fit(self, documents: Sequence[str]) -> "CountVectorizer":
        """Learn the vocabulary from *documents*."""
        tokenized = [self.tokenizer(doc) for doc in documents]
        self.vocabulary_ = Vocabulary(min_df=self.min_df, max_features=self.max_features)
        self.vocabulary_.fit(tokenized)
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Return the ``(n_documents, n_terms)`` count matrix."""
        if not hasattr(self, "vocabulary_"):
            raise RuntimeError("CountVectorizer is not fitted yet; call fit() first")
        vocab = self.vocabulary_
        matrix = np.zeros((len(documents), len(vocab)), dtype=float)
        for row, doc in enumerate(documents):
            for token in self.tokenizer(doc):
                if token in vocab:
                    column = vocab.index(token)
                    if self.binary:
                        matrix[row, column] = 1.0
                    else:
                        matrix[row, column] += 1.0
        return matrix

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """Fit the vocabulary and return the count matrix for *documents*."""
        return self.fit(documents).transform(documents)

    def get_feature_names(self) -> list[str]:
        """Return vocabulary terms in column order."""
        if not hasattr(self, "vocabulary_"):
            raise RuntimeError("CountVectorizer is not fitted yet; call fit() first")
        return self.vocabulary_.tokens


class TfidfVectorizer(CountVectorizer):
    """TF-IDF features with smoothed IDF and L2 row normalisation.

    Matches the scikit-learn defaults the paper relies on:
    ``idf(t) = ln((1 + n) / (1 + df(t))) + 1`` and unit-L2 rows.
    """

    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        """Learn the vocabulary and per-term IDF weights."""
        super().fit(documents)
        n_docs = self.vocabulary_.n_documents_
        df = np.array(
            [self.vocabulary_.document_frequency[t] for t in self.vocabulary_.tokens],
            dtype=float,
        )
        self.idf_ = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Return the L2-normalised TF-IDF matrix for *documents*."""
        counts = super().transform(documents)
        if not hasattr(self, "idf_"):
            raise RuntimeError("TfidfVectorizer is not fitted yet; call fit() first")
        tfidf = counts * self.idf_
        norms = np.linalg.norm(tfidf, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return tfidf / norms

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """Fit IDF weights and return the TF-IDF matrix for *documents*."""
        return self.fit(documents).transform(documents)
