"""Vocabulary: a bidirectional token <-> index mapping with frequency pruning."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence


class Vocabulary:
    """Ordered token vocabulary built from tokenised documents.

    Parameters
    ----------
    min_df:
        Minimum number of documents a token must appear in to be kept.
    max_features:
        If set, keep only the *max_features* most document-frequent tokens
        (ties broken alphabetically for determinism).
    """

    def __init__(self, min_df: int = 1, max_features: int | None = None):
        if min_df < 1:
            raise ValueError("min_df must be >= 1")
        if max_features is not None and max_features < 1:
            raise ValueError("max_features must be >= 1 when given")
        self.min_df = min_df
        self.max_features = max_features
        self._token_to_index: dict[str, int] = {}
        self._tokens: list[str] = []
        self.document_frequency: dict[str, int] = {}

    # ------------------------------------------------------------------ build
    def fit(self, tokenized_documents: Iterable[Sequence[str]]) -> "Vocabulary":
        """Build the vocabulary from an iterable of token lists."""
        doc_freq: Counter[str] = Counter()
        n_docs = 0
        for tokens in tokenized_documents:
            n_docs += 1
            doc_freq.update(set(tokens))
        if n_docs == 0:
            raise ValueError("cannot fit a vocabulary on zero documents")

        kept = [(token, freq) for token, freq in doc_freq.items() if freq >= self.min_df]
        # Sort by descending document frequency, then alphabetically, so the
        # vocabulary is deterministic across runs.
        kept.sort(key=lambda item: (-item[1], item[0]))
        if self.max_features is not None:
            kept = kept[: self.max_features]
        kept.sort(key=lambda item: item[0])

        self._tokens = [token for token, _ in kept]
        self._token_to_index = {token: idx for idx, token in enumerate(self._tokens)}
        self.document_frequency = {token: doc_freq[token] for token in self._tokens}
        self.n_documents_ = n_docs
        return self

    # ----------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_index

    def index(self, token: str) -> int:
        """Return the column index for *token* (raises ``KeyError`` if absent)."""
        return self._token_to_index[token]

    def token(self, index: int) -> str:
        """Return the token stored at *index*."""
        return self._tokens[index]

    @property
    def tokens(self) -> list[str]:
        """All tokens in index order (copy)."""
        return list(self._tokens)
