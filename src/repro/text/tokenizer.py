"""Simple word tokeniser with a small English stop-word list.

Keyword label functions in ActiveDP fire on unigram tokens, so the tokeniser
is deliberately conservative: lowercase, strip punctuation/digits, split on
non-alphabetic characters, drop single-character tokens and (optionally)
stop words.
"""

from __future__ import annotations

import re

_TOKEN_PATTERN = re.compile(r"[a-z]+")

# Compact stop-word list: high-frequency English function words that carry no
# class signal for the spam / sentiment / biography tasks in the paper.
STOP_WORDS = frozenset(
    """
    a about above after again all am an and any are as at be because been
    before being below between both but by could did do does doing down
    during each few for from further had has have having he her here hers
    him his how i if in into is it its itself just me more most my myself
    no nor not now of off on once only or other our ours out over own same
    she should so some such than that the their theirs them then there
    these they this those through to too under until up very was we were
    what when where which while who whom why will with you your yours
    """.split()
)


def tokenize(text: str, remove_stop_words: bool = True, min_length: int = 2) -> list[str]:
    """Split *text* into lowercase alphabetic tokens.

    Parameters
    ----------
    text:
        The raw document.
    remove_stop_words:
        Drop tokens in :data:`STOP_WORDS`.
    min_length:
        Drop tokens shorter than this many characters.
    """
    if not isinstance(text, str):
        raise TypeError(f"text must be a string, got {type(text).__name__}")
    tokens = _TOKEN_PATTERN.findall(text.lower())
    result = []
    for token in tokens:
        if len(token) < min_length:
            continue
        if remove_stop_words and token in STOP_WORDS:
            continue
        result.append(token)
    return result
