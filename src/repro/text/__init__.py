"""Text-feature substrate: tokenisation, vocabularies and TF-IDF vectorisers.

The paper extracts TF-IDF representations of the input text for both the
active-learning model and the downstream model; this package provides those
representations without relying on scikit-learn.
"""

from repro.text.tokenizer import STOP_WORDS, tokenize
from repro.text.vocabulary import Vocabulary
from repro.text.vectorizer import CountVectorizer, TfidfVectorizer

__all__ = [
    "tokenize",
    "STOP_WORDS",
    "Vocabulary",
    "CountVectorizer",
    "TfidfVectorizer",
]
