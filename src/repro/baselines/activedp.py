"""ActiveDP wrapped in the common pipeline interface.

The wrapper owns the simulated user (optionally noisy, for the Table 5
study), builds the paper's default configuration for the dataset kind
(alpha = 0.5 text / 0.99 tabular) and forwards each ``step()`` to the core
framework.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines.base import InteractivePipeline
from repro.core.config import ActiveDPConfig
from repro.core.framework import ActiveDP
from repro.datasets.base import DataSplit
from repro.simulation.label_noise import NoisySimulatedUser
from repro.simulation.simulated_user import SimulatedUser
from repro.utils.rng import RandomState


class ActiveDPPipeline(InteractivePipeline):
    """The paper's framework bound to a dataset split and a simulated user.

    Parameters
    ----------
    data_split:
        Benchmark dataset.
    random_state:
        Seed shared by the sampler and the simulated user.
    config:
        Optional :class:`ActiveDPConfig` override (defaults to the paper's
        per-kind configuration).
    config_overrides:
        Individual :class:`ActiveDPConfig` fields to replace on top of the
        per-kind defaults (or on top of *config* when both are given).  A
        plain dict, so engine grids can vary single knobs (e.g.
        ``{"warm_start_label_model": False}``) through content-hashed
        ``pipeline_kwargs`` without spelling out a whole config.
    noise_rate:
        Label-noise rate for the simulated user (Table 5; default 0).
    accuracy_threshold:
        Candidate-LF accuracy threshold of the simulated user (paper: 0.6).
    """

    name = "activedp"

    def __init__(
        self,
        data_split: DataSplit,
        random_state: RandomState = None,
        config: ActiveDPConfig | None = None,
        config_overrides: dict | None = None,
        noise_rate: float = 0.0,
        accuracy_threshold: float = 0.6,
    ):
        super().__init__(data_split, random_state)
        self.config = config or ActiveDPConfig.for_dataset_kind(data_split.kind)
        if config_overrides:
            self.config = dataclasses.replace(self.config, **config_overrides)
        seed = int(self.rng.integers(2**31 - 1))
        self.framework = ActiveDP(
            data_split.train, data_split.valid, self.config, random_state=seed
        )
        user_seed = int(self.rng.integers(2**31 - 1))
        if noise_rate > 0.0:
            self.user = NoisySimulatedUser(
                data_split.train,
                noise_rate=noise_rate,
                accuracy_threshold=accuracy_threshold,
                random_state=user_seed,
            )
        else:
            self.user = SimulatedUser(
                data_split.train,
                accuracy_threshold=accuracy_threshold,
                random_state=user_seed,
            )

    def step(self):
        """Run one ActiveDP training iteration; returns its real record."""
        record = self.framework.step(self.user)
        self.iteration += 1
        return record

    def generate_labels(self) -> tuple[np.ndarray, np.ndarray]:
        """ConFusion-aggregated training labels (indices, hard labels)."""
        indices, labels, _ = self.framework.generate_labels()
        return indices, labels

    def refit_counters(self) -> dict:
        """Cumulative fit counters (including evaluation-time flush refits)."""
        return self.framework.state.fit_counters()
