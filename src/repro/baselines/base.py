"""Common interface for interactive labelling frameworks.

The evaluation protocol (Section 4.1.3) treats every framework as a black
box that consumes one simulated-user interaction per iteration and, at any
point, can produce training labels for the downstream model.  This module
defines that contract plus the shared downstream-model training/evaluation
logic (TF-IDF / tabular features into logistic regression, as in the paper).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.results import IterationRecord
from repro.datasets.base import DataSplit
from repro.models.logistic_regression import LogisticRegression
from repro.models.metrics import accuracy_score
from repro.utils.rng import RandomState, ensure_rng


class InteractivePipeline(abc.ABC):
    """One interactive data-labelling framework bound to one dataset split.

    Parameters
    ----------
    data_split:
        The benchmark dataset (train/valid/test).
    random_state:
        Seed or generator shared by the framework's stochastic components.
    """

    name: str = "pipeline"

    def __init__(self, data_split: DataSplit, random_state: RandomState = None):
        self.data = data_split
        self.rng = ensure_rng(random_state)
        self.n_classes = data_split.n_classes
        self.iteration = 0

    # ------------------------------------------------------------- interface
    @abc.abstractmethod
    def step(self) -> IterationRecord | None:
        """Consume one simulated-user interaction (one unit of labelling budget).

        Pipelines that introspect their iteration return an
        :class:`~repro.core.results.IterationRecord` (query index, LF name,
        pseudo-label, ...) which the evaluation protocol propagates into the
        run history; returning ``None`` makes the harness record a bare row.
        """

    @abc.abstractmethod
    def generate_labels(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(train_indices, hard_labels)`` for downstream training."""

    def run(self, n_iterations: int) -> None:
        """Run *n_iterations* consecutive interactions."""
        for _ in range(n_iterations):
            self.step()

    def export_artifacts(self) -> dict | None:
        """Final outputs to persist on the trial's ``RunHistory.artifacts``.

        Called once by the trial loop after the last iteration.  Pipelines
        whose product is more than the metric curve (e.g. the aggregated
        labels a serving request asked for) return a plain JSON-able dict
        here; the default exports nothing.
        """
        return None

    def refit_counters(self) -> dict | None:
        """Current cumulative fit counters, or ``None`` for pipelines without them.

        Evaluation can itself trigger refits (the dirty-state flush with
        ``retrain_every > 1``), *after* the iteration's record was built; the
        trial loop re-reads these counters post-evaluation so that work is
        attributed to the iteration whose evaluation caused it.  Keys must
        match :class:`~repro.core.results.IterationRecord` field names.
        """
        return None

    # ------------------------------------------------- downstream evaluation
    def train_end_model(self, C: float = 1.0) -> LogisticRegression | None:
        """Train the downstream logistic-regression model on generated labels."""
        indices, labels = self.generate_labels()
        if len(indices) == 0:
            return None
        model = LogisticRegression(C=C, n_classes=self.n_classes)
        model.fit(self.data.train.features[indices], labels)
        return model

    def evaluate_end_model(self, C: float = 1.0) -> float:
        """Test-set accuracy of the downstream model (majority-class fallback)."""
        model = self.train_end_model(C=C)
        test = self.data.test
        if model is None:
            majority = int(np.argmax(np.bincount(self.data.valid.labels, minlength=self.n_classes)))
            return accuracy_score(test.labels, np.full(len(test), majority))
        return float(model.score(test.features, test.labels))

    def label_quality(self) -> dict:
        """Coverage and accuracy of the generated training labels (diagnostics)."""
        indices, labels = self.generate_labels()
        n_train = len(self.data.train)
        if len(indices) == 0:
            return {"coverage": 0.0, "accuracy": 0.0}
        accuracy = accuracy_score(self.data.train.labels[indices], labels)
        return {"coverage": len(indices) / n_train, "accuracy": accuracy}
