"""Replay a fixed LF set through ActiveDP: the serving layer's batch pipeline.

A label request to the serving layer names a dataset and a JSON list of
label functions (:mod:`repro.labeling.wire`).  To execute that request on
the existing worker fleet it must be an ordinary content-hashed trial, so
this pipeline turns the LF list into one: iteration *i* adds the *i*-th LF
to an :class:`~repro.core.framework.ActiveDP` instance and refits, exactly
as an interactive user streaming the same LFs would.  There is no simulated
user and no query sampling — the LF set *is* the user input, replayed.

Because the wire dicts are plain JSON values they content-hash cleanly
through ``pipeline_kwargs``, so two requests for the same dataset + LF set
share one cache entry, and the fleet never executes the same request twice.

After the last iteration :meth:`LFSetPipeline.export_artifacts` persists the
request's actual product on the trial history: aggregated training labels,
per-LF diagnostics and end-model test predictions, all as plain JSON-able
Python (see :func:`export_labeling_artifacts`, which interactive serving
sessions share so a streamed session and a batch replay of the same LFs
report identical payloads).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines.base import InteractivePipeline
from repro.core.config import ActiveDPConfig
from repro.core.framework import ActiveDP
from repro.core.results import IterationRecord
from repro.datasets.base import DataSplit
from repro.labeling.analysis import LFAnalysis
from repro.labeling.wire import lf_from_wire
from repro.utils.rng import RandomState


def export_labeling_artifacts(
    framework: ActiveDP, data_split: DataSplit, end_model_C: float = 1.0
) -> dict:
    """Final serving payload of an ActiveDP run, as plain JSON-able Python.

    One definition for both execution styles — the batch replay pipeline
    below and the serving layer's interactive sessions — so streaming N LFs
    and replaying the same N LFs produce byte-identical payloads:

    * ``labels`` — ConFusion-aggregated training labels: hard values
      (``-1`` for rejected instances), acceptance mask, coverage and the
      confidence threshold in effect;
    * ``lf_diagnostics`` — per-LF coverage / overlap / conflict / empirical
      accuracy on the validation split (gold labels are legitimate there);
    * ``end_model`` — downstream logistic-regression test-set predictions
      and accuracy (``None`` while no labels exist to train on).
    """
    aggregated = framework.aggregate_labels()
    labels = {
        "values": [int(value) for value in aggregated.labels],
        "accepted": [bool(flag) for flag in aggregated.accepted],
        "coverage": float(aggregated.coverage),
        "threshold": float(aggregated.threshold),
    }
    diagnostics = []
    if framework.lfs:
        analysis = LFAnalysis(
            framework.state.valid_matrix.matrix,
            [lf.name for lf in framework.lfs],
        )
        for summary in analysis.summary(data_split.valid.labels):
            diagnostics.append(
                {
                    "name": summary.name,
                    "polarity": [int(label) for label in summary.polarity],
                    "coverage": float(summary.coverage),
                    "overlap": float(summary.overlap),
                    "conflict": float(summary.conflict),
                    "accuracy": None
                    if summary.accuracy is None
                    else float(summary.accuracy),
                    "n_correct": int(summary.n_correct),
                    "n_labeled": int(summary.n_labeled),
                }
            )
    end_model = None
    model = framework.train_end_model(C=end_model_C)
    if model is not None:
        test = data_split.test
        predictions = model.predict(test.features)
        end_model = {
            "test_predictions": [int(label) for label in predictions],
            "test_accuracy": float(np.mean(predictions == test.labels)),
        }
    return {"labels": labels, "lf_diagnostics": diagnostics, "end_model": end_model}


class LFSetPipeline(InteractivePipeline):
    """Replay a wire-schema LF list through ActiveDP, one LF per iteration.

    Parameters
    ----------
    data_split:
        Benchmark dataset the LFs are applied to.
    random_state:
        Seed for the wrapped framework (replay itself is deterministic; the
        seed keeps the trial contract uniform with the other pipelines).
    lfs:
        Non-empty list of JSON wire dicts (see :mod:`repro.labeling.wire`).
        Iteration *i* adds ``lfs[i]``; iterations beyond the list length
        refit only (so any ``n_iterations >= len(lfs)`` protocol is valid).
    config_overrides:
        Individual :class:`ActiveDPConfig` fields to replace on top of the
        dataset-kind defaults, exactly as for ``ActiveDPPipeline``.
    end_model_C:
        Inverse regularisation of the exported end model (part of the
        content hash via ``pipeline_kwargs``).
    """

    name = "lfset"

    def __init__(
        self,
        data_split: DataSplit,
        random_state: RandomState = None,
        lfs: list[dict] | None = None,
        config_overrides: dict | None = None,
        end_model_C: float = 1.0,
    ):
        super().__init__(data_split, random_state)
        if not lfs:
            raise ValueError("lfs must be a non-empty list of wire-schema LF dicts")
        self.lfs = [lf_from_wire(payload) for payload in lfs]
        self.end_model_C = float(end_model_C)
        self.config = ActiveDPConfig.for_dataset_kind(data_split.kind)
        if config_overrides:
            self.config = dataclasses.replace(self.config, **config_overrides)
        seed = int(self.rng.integers(2**31 - 1))
        self.framework = ActiveDP(
            data_split.train, data_split.valid, self.config, random_state=seed
        )

    def step(self) -> IterationRecord:
        """Add the next LF from the list (if any remain) and refit."""
        lf = None
        if self.iteration < len(self.lfs):
            lf = self.lfs[self.iteration]
            if lf not in self.framework.lfs:
                self.framework.add_lf(lf)
        self.framework.refit()
        state = self.framework.state
        record = IterationRecord(
            iteration=self.iteration,
            query_index=-1,
            lf_name=lf.name if lf is not None else None,
            n_lfs=len(state.lfs),
            n_selected_lfs=len(state.selection.selected_indices),
            threshold=state.threshold,
            **state.fit_counters(),
        )
        self.iteration += 1
        return record

    def generate_labels(self) -> tuple[np.ndarray, np.ndarray]:
        """Aggregated training labels (indices, hard labels)."""
        indices, labels, _ = self.framework.generate_labels()
        return indices, labels

    def refit_counters(self) -> dict:
        """Cumulative fit counters (including evaluation-time flush refits)."""
        return self.framework.state.fit_counters()

    def export_artifacts(self) -> dict:
        """The request's product: labels, per-LF diagnostics, predictions."""
        return export_labeling_artifacts(
            self.framework, self.data, end_model_C=self.end_model_C
        )
