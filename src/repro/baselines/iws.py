"""IWS baseline: interactive weak supervision via LF verification.

IWS [Boecking et al. 2020] flips the interaction around: instead of asking
the user to *write* LFs, the system proposes one candidate LF per iteration
and the user only answers whether it looks accurate.  In the unbounded
setting evaluated by the paper (IWS-LSE-a), the final LF set contains every
candidate the system believes to be accurate, and the label model trained on
that set labels the covered instances.

The candidate space mirrors the simulated user's LF families (keyword LFs
for text, decision stumps for tabular data).  Candidate proposal follows the
spirit of IWS's learned acquisition: candidates are scored by coverage times
an accuracy estimate that blends the verified feedback collected so far with
the candidate's agreement with the current label model, and the highest-
scoring unproposed candidate is shown to the (simulated) expert.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import InteractivePipeline
from repro.datasets.base import DataSplit, TabularDataset, TextDataset
from repro.labeling.lf import ABSTAIN, LabelFunction, ThresholdLF
from repro.label_models import get_label_model
from repro.simulation.candidate_space import CandidateLF, enumerate_keyword_lfs
from repro.simulation.simulated_user import SimulatedUser
from repro.utils.rng import RandomState


class IWSPipeline(InteractivePipeline):
    """LF-verification pipeline in the unbounded (IWS-LSE-a) setting.

    Parameters
    ----------
    data_split, random_state:
        See :class:`InteractivePipeline`.
    label_model:
        Label-model registry name.
    accuracy_threshold:
        Verification threshold of the simulated expert (paper: 0.6).
    max_candidates:
        Size of the global candidate LF pool.
    """

    name = "iws"

    def __init__(
        self,
        data_split: DataSplit,
        random_state: RandomState = None,
        label_model: str = "metal",
        accuracy_threshold: float = 0.6,
        max_candidates: int = 500,
    ):
        super().__init__(data_split, random_state)
        self.user = SimulatedUser(
            data_split.train,
            accuracy_threshold=accuracy_threshold,
            random_state=int(self.rng.integers(2**31 - 1)),
        )
        self.label_model_name = label_model
        self.candidates = self._build_candidates(max_candidates)
        self.proposed: set[int] = set()
        self.accepted: list[LabelFunction] = []
        self.verified: list[tuple[int, bool]] = []
        self.label_model = None
        self._train_matrix = np.empty((len(data_split.train), 0), dtype=int)
        self._candidate_outputs: dict[int, np.ndarray] = {}

    # ---------------------------------------------------------------- steps
    def step(self) -> None:
        """Propose the next candidate LF and record the expert's verdict."""
        candidate_id = self._next_candidate()
        if candidate_id is None:
            self.iteration += 1
            return
        self.proposed.add(candidate_id)
        candidate = self.candidates[candidate_id]
        accepted = self.user.verify_lf(candidate.lf)
        self.verified.append((candidate_id, accepted))
        if accepted:
            self.accepted.append(candidate.lf)
            column = self._candidate_output(candidate_id).reshape(-1, 1)
            self._train_matrix = np.hstack([self._train_matrix, column])
            self._retrain()
        self.iteration += 1

    def generate_labels(self) -> tuple[np.ndarray, np.ndarray]:
        """Label-model hard labels on the instances covered by accepted LFs."""
        if self._train_matrix.shape[1] == 0 or self.label_model is None:
            return np.array([], dtype=int), np.array([], dtype=int)
        covered = np.any(self._train_matrix != ABSTAIN, axis=1)
        indices = np.flatnonzero(covered)
        proba = self.label_model.predict_proba(self._train_matrix[indices])
        return indices, np.argmax(proba, axis=1)

    # ------------------------------------------------------------- internals
    def _build_candidates(self, max_candidates: int) -> list[CandidateLF]:
        train = self.data.train
        if isinstance(train, TextDataset):
            return enumerate_keyword_lfs(train, min_coverage=0.01, max_candidates=max_candidates)
        if isinstance(train, TabularDataset):
            return self._enumerate_stumps(train, max_candidates)
        raise TypeError("IWS requires a TextDataset or TabularDataset")

    def _enumerate_stumps(self, train: TabularDataset, max_candidates: int) -> list[CandidateLF]:
        """Quantile-grid decision stumps as the tabular candidate LF space."""
        candidates: list[CandidateLF] = []
        raw = train.raw_features
        quantiles = np.linspace(0.1, 0.9, 9)
        for feature in range(raw.shape[1]):
            thresholds = np.unique(np.quantile(raw[:, feature], quantiles))
            for value in thresholds:
                for op in (">=", "<="):
                    fires = raw[:, feature] >= value if op == ">=" else raw[:, feature] <= value
                    if not np.any(fires):
                        continue
                    coverage = float(fires.mean())
                    fired_labels = train.labels[fires]
                    label = int(np.argmax(np.bincount(fired_labels, minlength=train.n_classes)))
                    accuracy = float(np.mean(fired_labels == label))
                    candidates.append(
                        CandidateLF(ThresholdLF(feature, float(value), op, label), coverage, accuracy)
                    )
        candidates.sort(key=lambda c: c.coverage, reverse=True)
        return candidates[:max_candidates]

    def _candidate_output(self, candidate_id: int) -> np.ndarray:
        if candidate_id not in self._candidate_outputs:
            self._candidate_outputs[candidate_id] = self.candidates[candidate_id].lf.apply(
                self.data.train
            )
        return self._candidate_outputs[candidate_id]

    def _next_candidate(self) -> int | None:
        """Score unproposed candidates by coverage x estimated accuracy."""
        remaining = [i for i in range(len(self.candidates)) if i not in self.proposed]
        if not remaining:
            return None
        if self.label_model is None or self._train_matrix.shape[1] == 0:
            # Cold start: largest-coverage candidate first.
            return max(remaining, key=lambda i: self.candidates[i].coverage)

        lm_labels = np.full(len(self.data.train), ABSTAIN, dtype=int)
        covered = np.any(self._train_matrix != ABSTAIN, axis=1)
        if np.any(covered):
            proba = self.label_model.predict_proba(self._train_matrix[covered])
            lm_labels[covered] = np.argmax(proba, axis=1)

        best_id, best_score = None, -np.inf
        for i in remaining:
            outputs = self._candidate_output(i)
            fired = (outputs != ABSTAIN) & (lm_labels != ABSTAIN)
            if np.any(fired):
                agreement = float(np.mean(outputs[fired] == lm_labels[fired]))
            else:
                agreement = 0.5
            score = self.candidates[i].coverage * agreement
            if score > best_score:
                best_score, best_id = score, i
        return best_id

    def _retrain(self) -> None:
        self.label_model = get_label_model(self.label_model_name, n_classes=self.n_classes)
        self.label_model.fit(self._train_matrix)
