"""Nemo baseline: interactive data programming with SEU instance selection.

Nemo [Hsieh et al. 2022] guides LF development by actively choosing which
instance to show the user (Select-by-Expected-Utility) and then trains a
label model on *all* user-returned LFs; the downstream model is trained on
the label model's outputs over the covered instances.  Unlike ActiveDP it
neither trains an instance-level AL model nor selects a subset of LFs, which
is exactly the behaviour the paper contrasts against.

The paper only evaluates Nemo on the six textual datasets (its SEU strategy
is designed for text); on tabular data this implementation degrades SEU to
uncertainty over the label model, but the experiment harness follows the
paper and skips Nemo for tabular datasets.
"""

from __future__ import annotations

import numpy as np

from repro.active_learning.base import QueryContext
from repro.active_learning.seu import SEUSampler
from repro.baselines.base import InteractivePipeline
from repro.core.results import IterationRecord
from repro.datasets.base import DataSplit
from repro.labeling.label_matrix import apply_lfs
from repro.labeling.lf import ABSTAIN, LabelFunction
from repro.label_models import get_label_model
from repro.simulation.simulated_user import SimulatedUser
from repro.utils.rng import RandomState


class NemoPipeline(InteractivePipeline):
    """SEU-guided interactive LF development with a label model.

    Parameters
    ----------
    data_split, random_state:
        See :class:`InteractivePipeline`.
    label_model:
        Label-model registry name (paper: MeTaL).
    accuracy_threshold:
        Candidate-LF accuracy threshold of the simulated user.
    """

    name = "nemo"

    def __init__(
        self,
        data_split: DataSplit,
        random_state: RandomState = None,
        label_model: str = "metal",
        accuracy_threshold: float = 0.6,
    ):
        super().__init__(data_split, random_state)
        self.sampler = SEUSampler()
        self.user = SimulatedUser(
            data_split.train,
            accuracy_threshold=accuracy_threshold,
            random_state=int(self.rng.integers(2**31 - 1)),
        )
        self.label_model_name = label_model
        self.lfs: list[LabelFunction] = []
        self.queried: list[int] = []
        self.label_model = None
        self._train_matrix = np.empty((len(data_split.train), 0), dtype=int)
        self._lm_proba: np.ndarray | None = None

    def step(self):
        """Select a query with SEU, collect an LF and retrain the label model."""
        candidates = np.setdiff1d(
            np.arange(len(self.data.train)), np.asarray(self.queried, dtype=int)
        )
        if candidates.size == 0:
            return
        context = QueryContext(
            dataset=self.data.train,
            candidates=candidates,
            lm_proba=self._lm_proba,
            queried_indices=np.asarray(self.queried, dtype=int),
            queried_labels=np.full(len(self.queried), ABSTAIN, dtype=int),
            iteration=self.iteration,
            rng=self.rng,
        )
        query = self.sampler.select(context)
        self.queried.append(query)

        lf = self.user.design_lf(query)
        if lf is not None and lf not in self.lfs:
            self.lfs.append(lf)
            column = lf.apply(self.data.train).reshape(-1, 1)
            self._train_matrix = np.hstack([self._train_matrix, column])
            self._retrain()
        record = IterationRecord(
            iteration=self.iteration,
            query_index=int(query),
            lf_name=lf.name if lf is not None else None,
            n_lfs=len(self.lfs),
        )
        self.iteration += 1
        return record

    def generate_labels(self) -> tuple[np.ndarray, np.ndarray]:
        """Label-model hard labels on the LF-covered training instances."""
        if self._train_matrix.shape[1] == 0 or self.label_model is None:
            return np.array([], dtype=int), np.array([], dtype=int)
        covered = np.any(self._train_matrix != ABSTAIN, axis=1)
        indices = np.flatnonzero(covered)
        proba = self.label_model.predict_proba(self._train_matrix[indices])
        return indices, np.argmax(proba, axis=1)

    def _retrain(self) -> None:
        self.label_model = get_label_model(self.label_model_name, n_classes=self.n_classes)
        self.label_model.fit(self._train_matrix)
        self._lm_proba = self.label_model.predict_proba(self._train_matrix)
