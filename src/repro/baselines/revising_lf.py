"""Revising LF baseline (Nashaat et al. 2018).

Revising LF iteratively selects the instance on which the current label
model is most uncertain, asks the user for its true label, and *corrects the
LF outputs* on that instance (every activated LF's vote is overwritten with
the correct label).  The label model is then retrained on the revised label
matrix.

The method requires a pre-specified LF set, which the other frameworks do
not need; following the paper's protocol, the LF set used at iteration *t*
is the same LF set an ActiveDP-style simulated user would have produced
after *t* queries (Section 4.1.3).  Each iteration therefore both (a) grows
the LF set by one simulated-user LF and (b) spends the iteration's manual
label on revising the most uncertain instance.
"""

from __future__ import annotations

import numpy as np

from repro.active_learning.base import prediction_entropy
from repro.baselines.base import InteractivePipeline
from repro.datasets.base import DataSplit
from repro.labeling.lf import ABSTAIN, LabelFunction
from repro.label_models import get_label_model
from repro.simulation.oracle import Oracle
from repro.simulation.simulated_user import SimulatedUser
from repro.utils.rng import RandomState


class RevisingLFPipeline(InteractivePipeline):
    """Uncertainty-driven LF-output revision with a growing LF set.

    Parameters
    ----------
    data_split, random_state:
        See :class:`InteractivePipeline`.
    label_model:
        Label-model registry name.
    accuracy_threshold:
        Candidate-LF accuracy threshold of the simulated user that produces
        the input LF set.
    """

    name = "revising_lf"

    def __init__(
        self,
        data_split: DataSplit,
        random_state: RandomState = None,
        label_model: str = "metal",
        accuracy_threshold: float = 0.6,
    ):
        super().__init__(data_split, random_state)
        self.user = SimulatedUser(
            data_split.train,
            accuracy_threshold=accuracy_threshold,
            random_state=int(self.rng.integers(2**31 - 1)),
        )
        self.oracle = Oracle(
            data_split.train, random_state=int(self.rng.integers(2**31 - 1))
        )
        self.label_model_name = label_model
        self.lfs: list[LabelFunction] = []
        self.lf_queried: list[int] = []
        self.revised: dict[int, int] = {}
        self.label_model = None
        self._matrix = np.empty((len(data_split.train), 0), dtype=int)
        self._lm_proba: np.ndarray | None = None

    def step(self) -> None:
        """Grow the LF set by one LF and revise the most uncertain instance."""
        self._grow_lf_set()
        self._revise_most_uncertain()
        self._retrain()
        self.iteration += 1

    def generate_labels(self) -> tuple[np.ndarray, np.ndarray]:
        """Label-model labels on covered instances, with revised instances pinned."""
        if self._matrix.shape[1] == 0 or self.label_model is None:
            if not self.revised:
                return np.array([], dtype=int), np.array([], dtype=int)
            indices = np.array(sorted(self.revised), dtype=int)
            return indices, np.array([self.revised[i] for i in indices], dtype=int)

        covered = np.any(self._matrix != ABSTAIN, axis=1)
        indices = np.flatnonzero(covered)
        proba = self.label_model.predict_proba(self._matrix[indices])
        labels = np.argmax(proba, axis=1)
        # Queried instances keep their manually provided labels.
        label_map = dict(zip(indices.tolist(), labels.tolist()))
        label_map.update(self.revised)
        all_indices = np.array(sorted(label_map), dtype=int)
        return all_indices, np.array([label_map[i] for i in all_indices], dtype=int)

    # ------------------------------------------------------------- internals
    def _grow_lf_set(self) -> None:
        """Add one simulated-user LF (mirrors the ActiveDP LF-creation protocol)."""
        candidates = np.setdiff1d(
            np.arange(len(self.data.train)), np.asarray(self.lf_queried, dtype=int)
        )
        if candidates.size == 0:
            return
        query = int(self.rng.choice(candidates))
        self.lf_queried.append(query)
        lf = self.user.design_lf(query)
        if lf is None or lf in self.lfs:
            return
        self.lfs.append(lf)
        column = lf.apply(self.data.train).reshape(-1, 1)
        self._matrix = np.hstack([self._matrix, column])
        # Re-apply earlier revisions to the new column.
        for index, label in self.revised.items():
            if self._matrix[index, -1] != ABSTAIN:
                self._matrix[index, -1] = label

    def _revise_most_uncertain(self) -> None:
        """Query the label-model-most-uncertain instance and fix LF outputs on it."""
        unrevised = np.setdiff1d(
            np.arange(len(self.data.train)), np.array(sorted(self.revised), dtype=int)
        )
        if unrevised.size == 0:
            return
        if self._lm_proba is not None:
            entropy = prediction_entropy(self._lm_proba[unrevised])
            target = int(unrevised[int(np.argmax(entropy))])
        else:
            target = int(self.rng.choice(unrevised))
        true_label = self.oracle.label(target)
        self.revised[target] = true_label
        if self._matrix.shape[1]:
            fired = self._matrix[target] != ABSTAIN
            self._matrix[target, fired] = true_label

    def _retrain(self) -> None:
        if self._matrix.shape[1] == 0:
            self.label_model = None
            self._lm_proba = None
            return
        self.label_model = get_label_model(self.label_model_name, n_classes=self.n_classes)
        self.label_model.fit(self._matrix)
        self._lm_proba = self.label_model.predict_proba(self._matrix)
