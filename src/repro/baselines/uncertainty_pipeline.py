"""Classical pool-based uncertainty sampling (the "US" baseline).

Each iteration queries the instance with the highest predictive entropy of
the current model and asks the oracle for its true label; the downstream
model is trained on the labelled subset only.  This is the pure
active-learning end of the design space the paper explores.
"""

from __future__ import annotations

import numpy as np

from repro.active_learning.base import QueryContext
from repro.active_learning.uncertainty import UncertaintySampler
from repro.baselines.base import InteractivePipeline
from repro.core.results import IterationRecord
from repro.datasets.base import DataSplit
from repro.models.logistic_regression import LogisticRegression
from repro.simulation.oracle import Oracle
from repro.utils.rng import RandomState


class UncertaintySamplingPipeline(InteractivePipeline):
    """Uncertainty sampling with an instance-labelling oracle.

    Parameters
    ----------
    data_split, random_state:
        See :class:`InteractivePipeline`.
    model_C:
        Inverse regularisation of the logistic-regression model trained on
        the labelled subset.
    """

    name = "uncertainty"

    def __init__(
        self,
        data_split: DataSplit,
        random_state: RandomState = None,
        model_C: float = 1.0,
    ):
        super().__init__(data_split, random_state)
        self.sampler = UncertaintySampler()
        self.oracle = Oracle(data_split.train, random_state=int(self.rng.integers(2**31 - 1)))
        self.model_C = model_C
        self.labeled_indices: list[int] = []
        self.labels: list[int] = []
        self._proba: np.ndarray | None = None

    def step(self):
        """Query the most uncertain instance and record its oracle label."""
        candidates = np.setdiff1d(
            np.arange(len(self.data.train)), np.asarray(self.labeled_indices, dtype=int)
        )
        if candidates.size == 0:
            return
        context = QueryContext(
            dataset=self.data.train,
            candidates=candidates,
            al_proba=self._proba,
            queried_indices=np.asarray(self.labeled_indices, dtype=int),
            queried_labels=np.asarray(self.labels, dtype=int),
            iteration=self.iteration,
            rng=self.rng,
        )
        query = self.sampler.select(context)
        self.labeled_indices.append(query)
        self.labels.append(self.oracle.label(query))
        self._retrain()
        record = IterationRecord(
            iteration=self.iteration, query_index=int(query), pseudo_label=self.labels[-1]
        )
        self.iteration += 1
        return record

    def generate_labels(self) -> tuple[np.ndarray, np.ndarray]:
        """The manually labelled subset."""
        return (
            np.asarray(self.labeled_indices, dtype=int),
            np.asarray(self.labels, dtype=int),
        )

    def _retrain(self) -> None:
        labels = np.asarray(self.labels, dtype=int)
        if len(labels) < 2 or len(np.unique(labels)) < 2:
            self._proba = None
            return
        model = LogisticRegression(C=self.model_C, n_classes=self.n_classes)
        model.fit(self.data.train.features[np.asarray(self.labeled_indices)], labels)
        self._proba = model.predict_proba(self.data.train.features)
