"""Baseline interactive-labelling frameworks from the paper's evaluation.

Every framework implements the same :class:`InteractivePipeline` interface —
one ``step()`` per simulated-user interaction, ``generate_labels()`` for the
training labels produced so far, and ``evaluate_end_model(test)`` to train
and score the downstream model — so the experiment harness can run them
interchangeably:

* :class:`ActiveDPPipeline` — the paper's method (wraps ``repro.core``);
* :class:`LFSetPipeline` — non-interactive replay of a fixed wire-schema LF
  list through ActiveDP (the serving layer's batch pipeline);
* :class:`NemoPipeline` — interactive data programming with SEU selection;
* :class:`IWSPipeline` — interactive weak supervision (LF verification);
* :class:`RevisingLFPipeline` — LF-output revision on queried instances;
* :class:`UncertaintySamplingPipeline` — classical pool-based AL.
"""

from repro.baselines.base import InteractivePipeline
from repro.baselines.activedp import ActiveDPPipeline
from repro.baselines.lfset import LFSetPipeline
from repro.baselines.nemo import NemoPipeline
from repro.baselines.iws import IWSPipeline
from repro.baselines.revising_lf import RevisingLFPipeline
from repro.baselines.uncertainty_pipeline import UncertaintySamplingPipeline

__all__ = [
    "InteractivePipeline",
    "ActiveDPPipeline",
    "LFSetPipeline",
    "NemoPipeline",
    "IWSPipeline",
    "RevisingLFPipeline",
    "UncertaintySamplingPipeline",
    "get_pipeline",
    "pipeline_names",
]

_REGISTRY = {
    "activedp": ActiveDPPipeline,
    "lfset": LFSetPipeline,
    "nemo": NemoPipeline,
    "iws": IWSPipeline,
    "revising_lf": RevisingLFPipeline,
    "rlf": RevisingLFPipeline,
    "uncertainty": UncertaintySamplingPipeline,
    "us": UncertaintySamplingPipeline,
}


def pipeline_names() -> list[str]:
    """Canonical names of the paper's benchmark frameworks.

    ``lfset`` — the serving layer's replay pipeline — is reachable through
    :func:`get_pipeline` but deliberately not enumerated here: it requires
    an explicit LF list and is not a framework the evaluation protocol
    benchmarks on its own.
    """
    return ["activedp", "nemo", "iws", "revising_lf", "uncertainty"]


def get_pipeline(name: str, data_split, random_state=None, **kwargs) -> InteractivePipeline:
    """Instantiate a framework by name against a :class:`~repro.datasets.DataSplit`."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown framework {name!r}; choose from {pipeline_names()}"
        ) from None
    return cls(data_split, random_state=random_state, **kwargs)
