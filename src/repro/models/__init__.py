"""Machine-learning substrate: classifiers, metrics and preprocessing.

The paper uses scikit-learn's logistic regression as both the active-learning
model and the downstream (end) model; this package provides an equivalent
implementation built only on NumPy/SciPy, plus the helper estimators, metrics
and data-splitting utilities needed by the rest of the library.
"""

from repro.models.base import BaseClassifier
from repro.models.decision_stump import DecisionStump
from repro.models.logistic_regression import LogisticRegression
from repro.models.metrics import (
    accuracy_score,
    confusion_matrix,
    coverage_score,
    f1_score,
    log_loss,
    precision_score,
    recall_score,
)
from repro.models.model_selection import train_valid_test_split
from repro.models.naive_bayes import GaussianNaiveBayes
from repro.models.preprocessing import StandardScaler

__all__ = [
    "BaseClassifier",
    "LogisticRegression",
    "GaussianNaiveBayes",
    "DecisionStump",
    "StandardScaler",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "log_loss",
    "coverage_score",
    "confusion_matrix",
    "train_valid_test_split",
]
