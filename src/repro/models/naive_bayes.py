"""Gaussian naive Bayes classifier.

Used as an alternative cheap probabilistic model (e.g. as a committee member
in query-by-committee sampling, and as a sanity baseline in tests).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseClassifier
from repro.utils.validation import check_2d, check_consistent_length, check_labels


class GaussianNaiveBayes(BaseClassifier):
    """Naive Bayes with per-class Gaussian feature likelihoods.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every variance for
        numerical stability.
    n_classes:
        Optional fixed class count (see :class:`LogisticRegression`).
    """

    def __init__(self, var_smoothing: float = 1e-9, n_classes: int | None = None):
        self.var_smoothing = var_smoothing
        self.n_classes = n_classes

    def fit(self, X, y, sample_weight=None) -> "GaussianNaiveBayes":
        """Estimate per-class priors, means and variances."""
        X = check_2d(X, "X")
        y = check_labels(y, name="y")
        check_consistent_length(X, y)
        if sample_weight is None:
            sample_weight = np.ones(len(y))
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)

        observed = np.unique(y)
        total = self.n_classes if self.n_classes is not None else int(observed.max()) + 1
        total = max(total, int(observed.max()) + 1, 2)
        self.classes_ = np.arange(total)
        self.n_classes_ = total
        self.n_features_in_ = X.shape[1]

        self.theta_ = np.zeros((total, X.shape[1]))
        self.var_ = np.ones((total, X.shape[1]))
        self.class_prior_ = np.full(total, 1.0 / total)

        global_var = X.var(axis=0).max() if X.shape[0] > 1 else 1.0
        epsilon = self.var_smoothing * max(global_var, 1e-12)

        counts = np.zeros(total)
        for cls in observed:
            mask = y == cls
            weights = sample_weight[mask]
            if weights.sum() == 0:
                continue
            counts[cls] = weights.sum()
            self.theta_[cls] = np.average(X[mask], axis=0, weights=weights)
            diff = X[mask] - self.theta_[cls]
            self.var_[cls] = np.average(diff**2, axis=0, weights=weights) + epsilon
        if counts.sum() > 0:
            # Laplace-smoothed priors so unseen classes keep non-zero mass.
            self.class_prior_ = (counts + 1.0) / (counts.sum() + total)
        self.var_ = np.maximum(self.var_, epsilon if epsilon > 0 else 1e-12)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Return posterior class probabilities under the Gaussian model."""
        self._check_is_fitted()
        X = check_2d(X, "X")
        log_prior = np.log(self.class_prior_)
        log_likelihood = np.zeros((X.shape[0], self.n_classes_))
        for cls in range(self.n_classes_):
            diff = X - self.theta_[cls]
            log_likelihood[:, cls] = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[cls]) + diff**2 / self.var_[cls], axis=1
            )
        joint = log_prior + log_likelihood
        joint -= joint.max(axis=1, keepdims=True)
        proba = np.exp(joint)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba
