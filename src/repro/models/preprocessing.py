"""Feature preprocessing: standardisation for tabular datasets."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d


class StandardScaler:
    """Standardise features to zero mean and unit variance.

    Constant features (zero variance) are left centred but unscaled so that
    the transform never divides by zero.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X) -> "StandardScaler":
        """Learn per-feature mean and standard deviation from *X*."""
        X = check_2d(X, "X")
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the learned standardisation to *X*."""
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted yet; call fit() first")
        X = check_2d(X, "X")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted with "
                f"{self.n_features_in_}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        """Fit to *X* and return the transformed array."""
        return self.fit(X).transform(X)
