"""Dataset splitting utilities.

The paper partitions every dataset 80/10/10 into train/validation/test
(Section 4.1.1); ``train_valid_test_split`` reproduces that protocol with
optional stratification so small datasets keep both classes in every split.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, ensure_rng


def train_valid_test_split(
    n_samples: int,
    valid_fraction: float = 0.1,
    test_fraction: float = 0.1,
    stratify: np.ndarray | None = None,
    random_state: RandomState = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return index arrays ``(train_idx, valid_idx, test_idx)``.

    Parameters
    ----------
    n_samples:
        Total number of instances to split.
    valid_fraction, test_fraction:
        Fractions assigned to the validation and test splits (the remainder
        goes to training).  The paper uses 0.1/0.1.
    stratify:
        Optional label vector; when provided each class is split with the
        same proportions.
    random_state:
        Seed or generator for the shuffle.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if valid_fraction < 0 or test_fraction < 0 or valid_fraction + test_fraction >= 1:
        raise ValueError(
            "valid_fraction and test_fraction must be non-negative and sum to < 1"
        )
    rng = ensure_rng(random_state)

    if stratify is None:
        permutation = rng.permutation(n_samples)
        n_valid = int(round(valid_fraction * n_samples))
        n_test = int(round(test_fraction * n_samples))
        valid_idx = permutation[:n_valid]
        test_idx = permutation[n_valid:n_valid + n_test]
        train_idx = permutation[n_valid + n_test:]
        return np.sort(train_idx), np.sort(valid_idx), np.sort(test_idx)

    stratify = np.asarray(stratify)
    if len(stratify) != n_samples:
        raise ValueError("stratify must have length n_samples")
    train_parts, valid_parts, test_parts = [], [], []
    for cls in np.unique(stratify):
        cls_indices = np.flatnonzero(stratify == cls)
        cls_perm = rng.permutation(cls_indices)
        n_valid = int(round(valid_fraction * len(cls_perm)))
        n_test = int(round(test_fraction * len(cls_perm)))
        valid_parts.append(cls_perm[:n_valid])
        test_parts.append(cls_perm[n_valid:n_valid + n_test])
        train_parts.append(cls_perm[n_valid + n_test:])
    train_idx = np.sort(np.concatenate(train_parts))
    valid_idx = np.sort(np.concatenate(valid_parts)) if valid_parts else np.array([], dtype=int)
    test_idx = np.sort(np.concatenate(test_parts)) if test_parts else np.array([], dtype=int)
    return train_idx, valid_idx, test_idx
