"""Classification metrics used throughout the evaluation harness.

The paper reports downstream test-set accuracy, but internally the framework
also needs label *coverage* (fraction of instances that received a label at
all) and per-class precision/recall/F1 for analysis, so all of these are
provided here with explicit handling of abstentions (label ``-1``).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, check_consistent_length

ABSTAIN = -1


def accuracy_score(y_true, y_pred, ignore_abstain: bool = False) -> float:
    """Fraction of correct predictions.

    Parameters
    ----------
    y_true, y_pred:
        Integer label vectors.  ``y_pred`` may contain ``-1`` (abstain).
    ignore_abstain:
        If ``True``, abstained predictions are excluded from the denominator;
        if no prediction remains the score is ``0.0``.  If ``False`` abstains
        simply count as errors.
    """
    y_true = check_1d(y_true, "y_true")
    y_pred = check_1d(y_pred, "y_pred")
    check_consistent_length(y_true, y_pred)
    if ignore_abstain:
        mask = y_pred != ABSTAIN
        if not np.any(mask):
            return 0.0
        return float(np.mean(y_true[mask] == y_pred[mask]))
    return float(np.mean(y_true == y_pred))


def coverage_score(y_pred) -> float:
    """Fraction of instances with a non-abstain prediction."""
    y_pred = check_1d(y_pred, "y_pred")
    if y_pred.size == 0:
        return 0.0
    return float(np.mean(y_pred != ABSTAIN))


def confusion_matrix(y_true, y_pred, n_classes: int | None = None) -> np.ndarray:
    """Return the ``(C, C)`` confusion matrix, ignoring abstains in y_pred."""
    y_true = check_1d(y_true, "y_true").astype(int)
    y_pred = check_1d(y_pred, "y_pred").astype(int)
    check_consistent_length(y_true, y_pred)
    if n_classes is None:
        valid = y_pred[y_pred != ABSTAIN]
        candidates = [y_true.max()] + ([valid.max()] if valid.size else [])
        n_classes = int(max(candidates)) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=int)
    for true, pred in zip(y_true, y_pred):
        if pred == ABSTAIN:
            continue
        matrix[true, pred] += 1
    return matrix


def precision_score(y_true, y_pred, positive_class: int = 1) -> float:
    """Precision for *positive_class* (0 when nothing is predicted positive)."""
    y_true = check_1d(y_true, "y_true")
    y_pred = check_1d(y_pred, "y_pred")
    check_consistent_length(y_true, y_pred)
    predicted = y_pred == positive_class
    if not np.any(predicted):
        return 0.0
    return float(np.mean(y_true[predicted] == positive_class))


def recall_score(y_true, y_pred, positive_class: int = 1) -> float:
    """Recall for *positive_class* (0 when the class is absent from y_true)."""
    y_true = check_1d(y_true, "y_true")
    y_pred = check_1d(y_pred, "y_pred")
    check_consistent_length(y_true, y_pred)
    actual = y_true == positive_class
    if not np.any(actual):
        return 0.0
    return float(np.mean(y_pred[actual] == positive_class))


def f1_score(y_true, y_pred, positive_class: int = 1) -> float:
    """Harmonic mean of precision and recall for *positive_class*."""
    precision = precision_score(y_true, y_pred, positive_class)
    recall = recall_score(y_true, y_pred, positive_class)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def log_loss(y_true, proba, eps: float = 1e-12) -> float:
    """Multiclass cross-entropy between integer labels and predicted probabilities."""
    y_true = check_1d(y_true, "y_true").astype(int)
    proba = np.asarray(proba, dtype=float)
    if proba.ndim != 2:
        raise ValueError(f"proba must be 2-dimensional, got shape {proba.shape}")
    check_consistent_length(y_true, proba)
    clipped = np.clip(proba, eps, 1.0)
    picked = clipped[np.arange(len(y_true)), y_true]
    return float(-np.mean(np.log(picked)))
