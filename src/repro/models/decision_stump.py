"""Single-feature decision stump classifier.

The paper's simulated user for tabular datasets writes label functions that
are decision stumps (``x_j >= v -> class y``).  This module provides both a
standalone stump classifier (used in tests and as a weak committee member)
whose threshold is chosen to maximise weighted accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseClassifier
from repro.utils.validation import check_2d, check_consistent_length, check_labels


class DecisionStump(BaseClassifier):
    """Axis-aligned one-split classifier.

    Parameters
    ----------
    n_thresholds:
        Number of candidate thresholds (quantiles of each feature) examined
        per feature during fitting.
    n_classes:
        Optional fixed class count.
    """

    def __init__(self, n_thresholds: int = 32, n_classes: int | None = None):
        if n_thresholds < 1:
            raise ValueError("n_thresholds must be >= 1")
        self.n_thresholds = n_thresholds
        self.n_classes = n_classes

    def fit(self, X, y, sample_weight=None) -> "DecisionStump":
        """Search features x quantile thresholds for the best weighted split."""
        X = check_2d(X, "X")
        y = check_labels(y, name="y")
        check_consistent_length(X, y)
        if sample_weight is None:
            sample_weight = np.ones(len(y))
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)

        observed = np.unique(y)
        total = self.n_classes if self.n_classes is not None else int(observed.max()) + 1
        total = max(total, int(observed.max()) + 1, 2)
        self.classes_ = np.arange(total)
        self.n_classes_ = total
        self.n_features_in_ = X.shape[1]

        best = (-np.inf, 0, 0.0, 0, 0)  # score, feature, threshold, left_class, right_class
        quantiles = np.linspace(0.05, 0.95, self.n_thresholds)
        for feature in range(X.shape[1]):
            values = X[:, feature]
            thresholds = np.unique(np.quantile(values, quantiles))
            for threshold in thresholds:
                right = values >= threshold
                left = ~right
                left_class, left_score = self._best_class(y[left], sample_weight[left], total)
                right_class, right_score = self._best_class(y[right], sample_weight[right], total)
                score = left_score + right_score
                if score > best[0]:
                    best = (score, feature, float(threshold), left_class, right_class)
        _, self.feature_, self.threshold_, self.left_class_, self.right_class_ = best

        # Per-side class frequencies give smoothed probability estimates.
        right_mask = X[:, self.feature_] >= self.threshold_
        self.right_proba_ = self._side_proba(y[right_mask], sample_weight[right_mask], total)
        self.left_proba_ = self._side_proba(y[~right_mask], sample_weight[~right_mask], total)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Return smoothed per-side class frequencies."""
        self._check_is_fitted()
        X = check_2d(X, "X")
        right = X[:, self.feature_] >= self.threshold_
        proba = np.where(right[:, None], self.right_proba_, self.left_proba_)
        return proba

    @staticmethod
    def _best_class(y_side, weights, n_classes) -> tuple[int, float]:
        if len(y_side) == 0:
            return 0, 0.0
        counts = np.bincount(y_side, weights=weights, minlength=n_classes)
        cls = int(np.argmax(counts))
        return cls, float(counts[cls])

    @staticmethod
    def _side_proba(y_side, weights, n_classes) -> np.ndarray:
        counts = np.bincount(y_side, weights=weights, minlength=n_classes) if len(y_side) else np.zeros(n_classes)
        smoothed = counts + 1.0
        return smoothed / smoothed.sum()
