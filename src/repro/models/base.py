"""Abstract classifier interface shared by all models in the library."""

from __future__ import annotations

import abc

import numpy as np


class BaseClassifier(abc.ABC):
    """Minimal probabilistic-classifier interface.

    Every classifier exposes ``fit``, ``predict_proba`` and ``predict`` with
    NumPy arrays, mirroring the scikit-learn conventions the paper relies on.
    Subclasses must set ``classes_`` and ``n_classes_`` during ``fit``.
    """

    classes_: np.ndarray
    n_classes_: int

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray | None = None):
        """Fit the classifier and return ``self``."""

    @abc.abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Return an ``(n_samples, n_classes)`` matrix of class probabilities."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Return hard class labels (argmax of ``predict_proba``)."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Return mean accuracy on the given data."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    def _check_is_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise RuntimeError(
                f"{type(self).__name__} is not fitted yet; call fit() first"
            )
