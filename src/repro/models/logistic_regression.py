"""Multinomial logistic regression trained with L-BFGS.

This is the workhorse classifier of the reproduction: the paper trains a
logistic-regression active-learning model on the pseudo-labelled subset and a
logistic-regression downstream model on TF-IDF features.  The implementation
supports

* binary and multiclass problems (softmax parameterisation),
* per-sample weights (needed when training on probabilistic labels),
* L2 regularisation,
* graceful handling of degenerate training sets (a single observed class),

and exposes the familiar ``fit`` / ``predict_proba`` / ``predict`` API.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize
from scipy.special import softmax

from repro.models.base import BaseClassifier
from repro.utils.validation import check_2d, check_consistent_length, check_labels


class LogisticRegression(BaseClassifier):
    """L2-regularised multinomial logistic regression.

    Parameters
    ----------
    C:
        Inverse regularisation strength (larger = weaker regularisation),
        matching the scikit-learn convention.
    max_iter:
        Maximum number of L-BFGS iterations.
    fit_intercept:
        Whether to learn a bias term.
    n_classes:
        Optional total number of classes.  When the training subset happens
        to contain fewer classes than the task defines (common early in an
        active-learning run), passing the task's class count keeps the
        probability matrix shape stable.
    tol:
        Optimiser convergence tolerance.
    """

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 200,
        fit_intercept: bool = True,
        n_classes: int | None = None,
        tol: float = 1e-6,
    ):
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = C
        self.max_iter = max_iter
        self.fit_intercept = fit_intercept
        self.n_classes = n_classes
        self.tol = tol

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        X,
        y,
        sample_weight=None,
        coef_init=None,
        intercept_init=None,
    ) -> "LogisticRegression":
        """Fit the model on integer labels ``y`` (optionally sample-weighted).

        ``coef_init`` / ``intercept_init`` optionally seed the optimiser with
        a previous fit's parameters (shapes ``(n_classes, n_features)`` and
        ``(n_classes,)``).  The objective is convex, so the solution is
        unchanged — a near-solution initialiser just converges in fewer
        L-BFGS iterations.  Mismatched shapes degrade to the zero (cold)
        initialisation, never raise; :attr:`warm_started_` records which
        happened.
        """
        X = check_2d(X, "X")
        y = check_labels(y, name="y")
        check_consistent_length(X, y)
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=float)
            check_consistent_length(X, sample_weight)
            if np.any(sample_weight < 0):
                raise ValueError("sample_weight must be non-negative")
        else:
            sample_weight = np.ones(len(y))

        observed = np.unique(y)
        total_classes = self.n_classes if self.n_classes is not None else int(observed.max()) + 1
        total_classes = max(total_classes, int(observed.max()) + 1, 2)
        self.classes_ = np.arange(total_classes)
        self.n_classes_ = total_classes
        n_samples, n_features = X.shape
        self.n_features_in_ = n_features

        if len(observed) == 1:
            # Degenerate training set: remember the constant class but keep a
            # softly-calibrated probability so downstream entropy is finite.
            self._constant_class = int(observed[0])
            self.coef_ = np.zeros((total_classes, n_features))
            self.intercept_ = np.zeros(total_classes)
            self.warm_started_ = False
            return self
        self._constant_class = None

        design = self._add_intercept(X)
        n_params = design.shape[1]
        one_hot = np.zeros((n_samples, total_classes))
        one_hot[np.arange(n_samples), y] = 1.0
        weight_sum = sample_weight.sum()
        alpha = 1.0 / self.C

        def objective(flat_weights):
            W = flat_weights.reshape(total_classes, n_params)
            logits = design @ W.T
            probs = softmax(logits, axis=1)
            clipped = np.clip(probs, 1e-12, 1.0)
            nll = -np.sum(sample_weight[:, None] * one_hot * np.log(clipped)) / weight_sum
            penalty_matrix = W[:, :-1] if self.fit_intercept else W
            penalty = 0.5 * alpha * np.sum(penalty_matrix**2) / weight_sum
            grad = ((probs - one_hot) * sample_weight[:, None]).T @ design / weight_sum
            grad_penalty = np.zeros_like(W)
            if self.fit_intercept:
                grad_penalty[:, :-1] = alpha * W[:, :-1] / weight_sum
            else:
                grad_penalty = alpha * W / weight_sum
            return nll + penalty, (grad + grad_penalty).ravel()

        initial_weights = np.zeros((total_classes, n_params))
        self.warm_started_ = False
        if coef_init is not None:
            coef_init = np.asarray(coef_init, dtype=float)
            if coef_init.shape == (total_classes, n_features) and np.all(
                np.isfinite(coef_init)
            ):
                initial_weights[:, :n_features] = coef_init
                self.warm_started_ = True
                if self.fit_intercept and intercept_init is not None:
                    intercept_init = np.asarray(intercept_init, dtype=float)
                    if intercept_init.shape == (total_classes,) and np.all(
                        np.isfinite(intercept_init)
                    ):
                        initial_weights[:, -1] = intercept_init
        initial = initial_weights.ravel()
        result = minimize(
            objective,
            initial,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        weights = result.x.reshape(total_classes, n_params)
        if self.fit_intercept:
            self.coef_ = weights[:, :-1]
            self.intercept_ = weights[:, -1]
        else:
            self.coef_ = weights
            self.intercept_ = np.zeros(total_classes)
        return self

    # -------------------------------------------------------------- predict
    def predict_proba(self, X) -> np.ndarray:
        """Return softmax class probabilities for each row of *X*."""
        self._check_is_fitted()
        X = check_2d(X, "X")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        if getattr(self, "_constant_class", None) is not None:
            proba = np.full((X.shape[0], self.n_classes_), 0.1 / max(self.n_classes_ - 1, 1))
            proba[:, self._constant_class] = 0.9
            proba /= proba.sum(axis=1, keepdims=True)
            return proba
        logits = X @ self.coef_.T + self.intercept_
        return softmax(logits, axis=1)

    def decision_function(self, X) -> np.ndarray:
        """Return raw class scores (logits) for each row of *X*."""
        self._check_is_fitted()
        X = check_2d(X, "X")
        return X @ self.coef_.T + self.intercept_

    # -------------------------------------------------------------- helpers
    def _add_intercept(self, X: np.ndarray) -> np.ndarray:
        if not self.fit_intercept:
            return X
        return np.hstack([X, np.ones((X.shape[0], 1))])
