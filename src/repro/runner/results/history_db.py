"""The queryable run-history database: trial metrics as real SQLite columns.

The pickle-shard blob store is write-optimised and opaque — any analytical
question ("all trials where warm-start was off and accuracy dropped",
cross-grid leaderboards, dedup probes at millions-of-trials scale) means
unpickling everything.  :class:`RunHistoryDB` is the read-optimised sibling:
one WAL-mode SQLite file (``results.sqlite3``, the same file family as the
broker's ``broker.sqlite3``) whose rows materialise what the blobs bury —
spec fields, headline metrics and per-iteration records — so those questions
become indexed ``SELECT``\\ s that never touch a blob.

Schema (registered-table style — each table is declared once in
:data:`_TABLES` and created idempotently, with ``PRAGMA user_version``
recording the schema generation)::

    trials(key PRIMARY KEY, framework, dataset, seed,
           n_iterations, n_evaluations, average_accuracy, final_accuracy,
           label_coverage, label_accuracy, n_lfs, n_selected_lfs,
           lm_em_iterations, lm_fits, lm_warm_fits, al_fits, al_warm_fits,
           glasso_fits, glasso_warm_fits, lm_converged_fits, lm_final_loss,
           glasso_sweeps, wall_seconds,
           cache_version, protocol, pipeline_kwargs, group_label)
        + index (dataset, framework)     -- cross-grid filters/leaderboards
    iterations(key, iteration, query_index, lf_name, pseudo_label,
               n_lfs, n_selected_lfs, label_coverage, label_accuracy,
               test_accuracy)            -- PK (key, iteration)
    benchmark_runs(id, benchmark, recorded_at, values_json)
        + index (benchmark, recorded_at) -- the per-PR benchmark trajectory

Two ingredient classes of columns, because the index must stay *rebuildable
from the blobs alone*:

* **blob-derived** — everything a :class:`~repro.core.results.RunHistory`
  carries (framework/dataset/seed, accuracy aggregates, the final record's
  cumulative fit counters, the per-iteration child rows).
  ``--reindex`` reproduces these exactly from a pickle-only cache.
* **spec enrichments** (``cache_version``, ``protocol``,
  ``pipeline_kwargs``, ``group_label``, ``wall_seconds``) — known only at
  publish time, stored as canonical JSON when the ``put`` carried a
  :class:`~repro.runner.spec.TrialSpec`, ``NULL`` otherwise.  A rebuild
  from blobs leaves them ``NULL``; everything else is identical.

The index is *derived state*: blobs are the source of truth, index writes
are eventually consistent (a crash between blob write and index write loses
only the index row), and :meth:`reindex` rebuilds the whole thing by walking
the shards.

Concurrency mirrors :class:`~repro.runner.brokers.sqlite.SqliteBroker`: one
lazily opened connection per instance (``check_same_thread=False`` plus an
instance lock), short ``BEGIN IMMEDIATE`` write transactions, WAL so readers
never block on writers, ``busy_timeout`` for bounded cross-process lock
waits.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Sequence

from repro.core.results import RunHistory
from repro.runner.spec import CACHE_FORMAT_VERSION, TrialSpec, canonical_value

__all__ = ["RunHistoryDB", "DB_FILENAME", "TRIAL_METRICS"]

#: File name used when :class:`RunHistoryDB` is pointed at a directory: the
#: database lands *inside* it, next to the blob shards it indexes (and next
#: to ``broker.sqlite3`` when the cache dir doubles as the queue location).
DB_FILENAME = "results.sqlite3"

#: Path suffixes treated as "this is the database file itself".
_DB_SUFFIXES = (".sqlite3", ".sqlite", ".db")

#: Schema generation stamped into ``PRAGMA user_version``.
_SCHEMA_VERSION = 1

#: Numeric ``trials`` columns accepted as ``--metric`` / predicate targets
#: by the query helpers (kept in one place so the CLI can validate names).
TRIAL_METRICS = (
    "average_accuracy",
    "final_accuracy",
    "n_iterations",
    "n_evaluations",
    "label_coverage",
    "label_accuracy",
    "n_lfs",
    "n_selected_lfs",
    "lm_em_iterations",
    "lm_fits",
    "lm_warm_fits",
    "al_fits",
    "al_warm_fits",
    "glasso_fits",
    "glasso_warm_fits",
    "lm_converged_fits",
    "lm_final_loss",
    "glasso_sweeps",
    "wall_seconds",
)

# Registered tables: declared once, created idempotently on first use.
# Adding a table means adding an entry here and bumping _SCHEMA_VERSION.
_TABLES = {
    "trials": """
        CREATE TABLE IF NOT EXISTS trials (
            key               TEXT PRIMARY KEY,
            framework         TEXT NOT NULL,
            dataset           TEXT NOT NULL,
            seed              INTEGER NOT NULL,
            n_iterations      INTEGER NOT NULL,
            n_evaluations     INTEGER NOT NULL,
            average_accuracy  REAL NOT NULL,
            final_accuracy    REAL NOT NULL,
            label_coverage    REAL,
            label_accuracy    REAL,
            n_lfs             INTEGER,
            n_selected_lfs    INTEGER,
            lm_em_iterations  INTEGER,
            lm_fits           INTEGER,
            lm_warm_fits      INTEGER,
            al_fits           INTEGER,
            al_warm_fits      INTEGER,
            glasso_fits       INTEGER,
            glasso_warm_fits  INTEGER,
            lm_converged_fits INTEGER,
            lm_final_loss     REAL,
            glasso_sweeps     INTEGER,
            wall_seconds      REAL,
            cache_version     INTEGER,
            protocol          TEXT,
            pipeline_kwargs   TEXT,
            group_label       TEXT
        )
    """,
    "iterations": """
        CREATE TABLE IF NOT EXISTS iterations (
            key            TEXT NOT NULL,
            iteration      INTEGER NOT NULL,
            query_index    INTEGER NOT NULL,
            lf_name        TEXT,
            pseudo_label   INTEGER,
            n_lfs          INTEGER,
            n_selected_lfs INTEGER,
            label_coverage REAL,
            label_accuracy REAL,
            test_accuracy  REAL,
            PRIMARY KEY (key, iteration)
        )
    """,
    "benchmark_runs": """
        CREATE TABLE IF NOT EXISTS benchmark_runs (
            id          INTEGER PRIMARY KEY AUTOINCREMENT,
            benchmark   TEXT NOT NULL,
            recorded_at REAL NOT NULL,
            values_json TEXT NOT NULL
        )
    """,
}

_INDEXES = (
    "CREATE INDEX IF NOT EXISTS idx_trials_dataset_framework"
    " ON trials (dataset, framework)",
    "CREATE INDEX IF NOT EXISTS idx_bench_name_time"
    " ON benchmark_runs (benchmark, recorded_at)",
)

#: ``trials`` columns that are *spec enrichments* — present only when the
#: publish carried a :class:`TrialSpec` (or timing metadata), ``NULL`` after
#: a blob-only rebuild.  Everything else is blob-derived.
SPEC_ENRICHMENT_COLUMNS = (
    "wall_seconds",
    "cache_version",
    "protocol",
    "pipeline_kwargs",
    "group_label",
)


def _canonical_json(value) -> str:
    """Stable JSON text of *value* (the spec hash's canonical encoding)."""
    return json.dumps(canonical_value(value), sort_keys=True, separators=(",", ":"))


def _final(records, attribute: str):
    """The last record's value of *attribute* (``None`` with no records)."""
    return getattr(records[-1], attribute) if records else None


class RunHistoryDB:
    """Queryable SQLite index over trial results (see module docstring).

    Parameters
    ----------
    location:
        The database file, or a directory to put one in
        (``<location>/results.sqlite3``) — the latter lets the cache
        directory itself name the index.  Parent directories are created
        lazily on first use.
    """

    #: Shared state the lock-discipline checker holds to `with self._lock:`
    #: (or the `_tx`/`_read` scopes, which take the lock themselves).
    _GUARDED_BY_LOCK = ("_conn",)
    _LOCK_CONTEXTS = ("_tx", "_read")

    def __init__(self, location: str | Path):
        location = Path(location)
        self.path = (
            location if location.suffix in _DB_SUFFIXES else location / DB_FILENAME
        )
        self._lock = threading.RLock()
        self._conn: sqlite3.Connection | None = None

    # -- connection management --------------------------------------------

    def _connect(self) -> sqlite3.Connection:  # repro: locked
        """The lazily opened connection (schema ensured on first use)."""
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path),
                timeout=30.0,
                isolation_level=None,  # explicit BEGIN IMMEDIATE below
                check_same_thread=False,  # guarded by self._lock
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            for statement in _TABLES.values():
                conn.execute(statement)
            for statement in _INDEXES:
                conn.execute(statement)
            conn.execute(f"PRAGMA user_version={_SCHEMA_VERSION}")
            self._conn = conn
        return self._conn

    def close(self) -> None:
        """Close the connection (reopened lazily if the instance is reused)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    @contextmanager
    def _tx(self) -> Iterator[sqlite3.Connection]:
        # One bounded write-lock hold per logical update (trial row + its
        # child rows commit together, so readers never see half a trial).
        with self._lock:
            conn = self._connect()
            conn.execute("BEGIN IMMEDIATE")
            try:
                yield conn
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")

    def _read(self, sql: str, params: Sequence = ()) -> list[sqlite3.Row]:
        # WAL readers never block on the writers' lock.
        with self._lock:
            return self._connect().execute(sql, params).fetchall()

    # -- writing ----------------------------------------------------------

    def index_trial(
        self,
        key: str,
        history: RunHistory,
        spec: TrialSpec | None = None,
        wall_seconds: float | None = None,
    ) -> None:
        """(Re-)materialise one trial's index rows from its history.

        Blob-derived columns come from *history*; the spec-enrichment
        columns are filled from *spec* / *wall_seconds* when given and left
        ``NULL`` otherwise (a blob-only rebuild cannot know them).  The
        trial row and its per-iteration child rows commit in one
        transaction.
        """
        records = history.records
        row = {
            "key": key,
            "framework": history.framework,
            "dataset": history.dataset,
            "seed": history.seed,
            "n_iterations": history.n_iterations,
            "n_evaluations": len(history.evaluation_points()),
            "average_accuracy": history.average_test_accuracy(),
            "final_accuracy": history.final_test_accuracy(),
            "label_coverage": _final(records, "label_coverage"),
            "label_accuracy": _final(records, "label_accuracy"),
            "n_lfs": _final(records, "n_lfs"),
            "n_selected_lfs": _final(records, "n_selected_lfs"),
            "lm_em_iterations": _final(records, "lm_em_iterations"),
            "lm_fits": _final(records, "lm_fits"),
            "lm_warm_fits": _final(records, "lm_warm_fits"),
            "al_fits": _final(records, "al_fits"),
            "al_warm_fits": _final(records, "al_warm_fits"),
            "glasso_fits": _final(records, "glasso_fits"),
            "glasso_warm_fits": _final(records, "glasso_warm_fits"),
            "lm_converged_fits": _final(records, "lm_converged_fits"),
            "lm_final_loss": _final(records, "lm_final_loss"),
            "glasso_sweeps": _final(records, "glasso_sweeps"),
            "wall_seconds": wall_seconds,
            "cache_version": CACHE_FORMAT_VERSION if spec is not None else None,
            "protocol": _canonical_json(spec.protocol) if spec is not None else None,
            "pipeline_kwargs": (
                _canonical_json(spec.pipeline_kwargs) if spec is not None else None
            ),
            "group_label": spec.group if spec is not None else None,
        }
        columns = ", ".join(row)
        marks = ", ".join("?" * len(row))
        with self._tx() as conn:
            conn.execute(
                f"INSERT OR REPLACE INTO trials ({columns}) VALUES ({marks})",
                tuple(row.values()),
            )
            conn.execute("DELETE FROM iterations WHERE key = ?", (key,))
            conn.executemany(
                "INSERT INTO iterations (key, iteration, query_index, lf_name,"
                " pseudo_label, n_lfs, n_selected_lfs, label_coverage,"
                " label_accuracy, test_accuracy)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        key,
                        record.iteration,
                        record.query_index,
                        record.lf_name,
                        record.pseudo_label,
                        record.n_lfs,
                        record.n_selected_lfs,
                        record.label_coverage,
                        record.label_accuracy,
                        record.test_accuracy,
                    )
                    for record in records
                ],
            )

    def drop_trial(self, key: str) -> None:
        """Remove one trial's index rows (its blob vanished or was cleared)."""
        with self._tx() as conn:
            conn.execute("DELETE FROM trials WHERE key = ?", (key,))
            conn.execute("DELETE FROM iterations WHERE key = ?", (key,))

    def clear_trials(self) -> int:
        """Drop every trial/iteration row (benchmark trajectory survives)."""
        with self._tx() as conn:
            removed = conn.execute("DELETE FROM trials").rowcount
            conn.execute("DELETE FROM iterations")
        return removed

    def reindex(self, store) -> int:
        """Rebuild the whole index by walking *store*'s blobs; returns rows built.

        The backfill path for pre-existing pickle-only caches and the
        recovery path after index/blob divergence (crash between blob write
        and index write): existing trial/iteration rows are dropped and
        every readable blob is re-materialised.  Spec-enrichment columns
        come out ``NULL`` — blobs do not carry specs — so a rebuilt index
        is identical to the incrementally built one on every blob-derived
        column.  Unreadable blobs are quarantined by ``store.get`` exactly
        as on the serving path.
        """
        self.clear_trials()
        rebuilt = 0
        root = Path(store.root)
        if not root.is_dir():
            return rebuilt
        for path in sorted(root.glob("*/*.pkl")):
            key = path.name[: -len(".pkl")]
            history = store.get(key)
            if history is None:
                continue  # quarantined (or raced a concurrent clear)
            self.index_trial(key, history)
            rebuilt += 1
        return rebuilt

    # -- querying ----------------------------------------------------------

    @staticmethod
    def _predicates(
        framework: str | None,
        dataset: str | None,
        seed: int | None,
        where: str | None,
    ) -> tuple[str, list]:
        conditions, params = [], []
        if framework is not None:
            conditions.append("framework = ?")
            params.append(framework)
        if dataset is not None:
            conditions.append("dataset = ?")
            params.append(dataset)
        if seed is not None:
            conditions.append("seed = ?")
            params.append(seed)
        if where:
            conditions.append(f"({where})")
        clause = f" WHERE {' AND '.join(conditions)}" if conditions else ""
        return clause, params

    def query(
        self,
        framework: str | None = None,
        dataset: str | None = None,
        seed: int | None = None,
        where: str | None = None,
        order_by: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """Trial rows matching spec-field filters and metric predicates.

        *framework* / *dataset* / *seed* filter on the materialised spec
        fields; *where* is a raw SQL predicate over the ``trials`` columns
        (metric predicates like ``"final_accuracy < 0.8 AND lm_warm_fits =
        0"``, or spec predicates like ``"pipeline_kwargs LIKE
        '%warm_start_label_model%'"``).  Rows come back as plain dicts,
        *without unpickling a single blob*.
        """
        clause, params = self._predicates(framework, dataset, seed, where)
        sql = f"SELECT * FROM trials{clause}"
        sql += f" ORDER BY {order_by}" if order_by else " ORDER BY dataset, framework, seed"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return [dict(row) for row in self._read(sql, params)]

    def aggregate(
        self,
        metric: str = "average_accuracy",
        by: Sequence[str] = ("framework", "dataset"),
        framework: str | None = None,
        dataset: str | None = None,
        seed: int | None = None,
        where: str | None = None,
    ) -> list[dict]:
        """Cross-grid aggregation: mean/min/max/count of *metric* per group.

        *by* names the grouping columns (any ``trials`` columns — e.g.
        ``("framework",)`` for a cross-dataset view, ``("framework",
        "dataset")`` for per-cell aggregates); filters are as in
        :meth:`query`.  Each returned dict carries the group columns plus
        ``n_trials`` / ``mean`` / ``min`` / ``max``.
        """
        if metric not in TRIAL_METRICS:
            raise ValueError(f"metric must be one of {TRIAL_METRICS}, got {metric!r}")
        group = ", ".join(by)
        clause, params = self._predicates(framework, dataset, seed, where)
        rows = self._read(
            f"SELECT {group}, COUNT(*) AS n_trials, AVG({metric}) AS mean,"
            f" MIN({metric}) AS min, MAX({metric}) AS max"
            f" FROM trials{clause} GROUP BY {group} ORDER BY mean DESC",
            params,
        )
        return [dict(row) for row in rows]

    def leaderboard(
        self,
        metric: str = "average_accuracy",
        by: Sequence[str] = ("framework",),
        limit: int | None = None,
        **filters,
    ) -> list[dict]:
        """Groups ranked by mean *metric*, best first (a top-N of :meth:`aggregate`).

        With the default ``by=("framework",)`` this is the cross-grid
        framework leaderboard; pass ``by=("framework", "dataset")`` for a
        per-cell one.  *filters* are forwarded to :meth:`aggregate`.
        """
        rows = self.aggregate(metric=metric, by=by, **filters)
        return rows if limit is None else rows[:limit]

    def iterations(self, key: str) -> list[dict]:
        """Per-iteration index rows of one trial, in iteration order."""
        return [
            dict(row)
            for row in self._read(
                "SELECT * FROM iterations WHERE key = ? ORDER BY iteration", (key,)
            )
        ]

    def counts(self) -> dict[str, int]:
        """``{"trials", "iterations", "benchmark_runs"}`` size snapshot."""
        return {
            table: self._read(f"SELECT COUNT(*) AS n FROM {table}")[0]["n"]
            for table in ("trials", "iterations", "benchmark_runs")
        }

    # -- the benchmark trajectory -----------------------------------------

    def record_benchmark(
        self, benchmark: str, values: dict, recorded_at: float | None = None
    ) -> int:
        """Append one timestamped benchmark headline row; returns its id.

        Unlike trial rows these are *append-only* — consecutive runs of one
        benchmark accumulate, which is what makes the per-PR trajectory
        visible (``BENCH_core.json`` only ever holds the latest numbers).
        """
        stamp = time.time() if recorded_at is None else float(recorded_at)
        with self._tx() as conn:
            cursor = conn.execute(
                "INSERT INTO benchmark_runs (benchmark, recorded_at, values_json)"
                " VALUES (?, ?, ?)",
                (benchmark, stamp, json.dumps(values, sort_keys=True)),
            )
            return int(cursor.lastrowid)

    def benchmark_trajectory(self, benchmark: str | None = None) -> list[dict]:
        """Benchmark headline rows, oldest first (optionally one benchmark's).

        Each dict carries ``benchmark``, ``recorded_at`` and the decoded
        ``values`` payload.
        """
        sql = "SELECT benchmark, recorded_at, values_json FROM benchmark_runs"
        params: tuple = ()
        if benchmark is not None:
            sql += " WHERE benchmark = ?"
            params = (benchmark,)
        sql += " ORDER BY recorded_at, id"
        return [
            {
                "benchmark": row["benchmark"],
                "recorded_at": row["recorded_at"],
                "values": json.loads(row["values_json"]),
            }
            for row in self._read(sql, params)
        ]
