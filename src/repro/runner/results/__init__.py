"""Pluggable trial-result persistence behind one :class:`ResultStore` protocol.

The package splits the former ``repro.runner.cache`` module into:

* :mod:`~repro.runner.results.base` — the abstract :class:`ResultStore`
  protocol (get / put / keys_present / contains / len / clear + quarantine
  semantics);
* :mod:`~repro.runner.results.pickle_store` — the content-addressed
  pickle-shard blob store, the reference implementation;
* :mod:`~repro.runner.results.indexed` — any blob store wrapped with a
  WAL-mode SQLite run-history index (``results.sqlite3``);
* :mod:`~repro.runner.results.history_db` — :class:`RunHistoryDB`, the
  index schema and its first-class query API (spec-field filters, metric
  predicates, cross-grid aggregation, leaderboards, the benchmark
  trajectory).

Backends are selected by name through :func:`create_result_store` (the
string comes from ``ExecutionConfig.results``, the ``REPRO_RESULTS``
environment variable, or a ``--results`` flag); everything above the store —
the engine, the brokers' polling loop, the worker daemon — talks only to the
protocol.  ``repro.runner.cache`` remains importable and *is* the pickle
store module, so pre-split imports and monkeypatches keep working unchanged.
"""

from __future__ import annotations

from pathlib import Path

from repro.runner.results.base import RESULT_STORE_BACKENDS, ResultStore
from repro.runner.results.history_db import (
    DB_FILENAME,
    TRIAL_METRICS,
    RunHistoryDB,
)
from repro.runner.results.indexed import IndexedResultStore
from repro.runner.results.pickle_store import ResultCache, atomic_write_bytes

__all__ = [
    "DB_FILENAME",
    "IndexedResultStore",
    "RESULT_STORE_BACKENDS",
    "ResultCache",
    "ResultStore",
    "RunHistoryDB",
    "TRIAL_METRICS",
    "atomic_write_bytes",
    "create_result_store",
]


def create_result_store(backend: str, root: str | Path) -> ResultStore:
    """Build a result-store backend by name over a shared *root* directory.

    *root* is the one path both backends understand: the pickle store uses
    the directory's key-prefix shards, the indexed store additionally keeps
    ``results.sqlite3`` inside it — so a submitter and its workers can all
    be pointed at the same ``--cache-dir`` regardless of backend (and a
    pickle-only cache can be adopted by the indexed store at any time via
    ``--reindex``).

    Raises :class:`ValueError` for an unknown *backend* name.
    """
    if backend == "pickle":
        return ResultCache(root)
    if backend == "indexed":
        return IndexedResultStore(root)
    raise ValueError(
        f"results backend must be one of {RESULT_STORE_BACKENDS}, got {backend!r}"
    )
