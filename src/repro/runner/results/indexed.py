"""Indexed result store: any blob store plus a queryable SQLite index.

Wraps a blob backend (the pickle-shard :class:`ResultCache` by default) and
maintains a :class:`~repro.runner.results.history_db.RunHistoryDB` alongside
it — ``<root>/results.sqlite3``, the same file family as the SQLite broker's
``broker.sqlite3``, so one shared directory carries the queue, the blobs and
the analytics index.

The ordering contract that keeps distributed runs correct:

* **blobs first** — :meth:`put` writes the blob, then the index row.  The
  blob write is what completes a trial (the submitter's polling loop and
  the ``__contains__`` probes all watch the blobs), so a crash between the
  two writes loses only an index row — never a result;
* **index failures are soft** — an index write that fails (locked file,
  disk pressure on the database but not the shards) must not fail the
  ``put``: the blob already landed, and :meth:`RunHistoryDB.reindex
  <repro.runner.results.history_db.RunHistoryDB.reindex>` (or ``python -m
  repro.runner.query --reindex``) rebuilds the rows later;
* **byte-identity** — the index never touches the blob bytes: a grid run
  through this store produces blobs byte-identical to a plain
  :class:`ResultCache` run.
"""

from __future__ import annotations

import sqlite3
import sys
from pathlib import Path
from typing import Iterable

from repro.core.results import RunHistory
from repro.runner.results.base import ResultStore
from repro.runner.results.history_db import DB_FILENAME, RunHistoryDB
from repro.runner.results.pickle_store import ResultCache
from repro.runner.spec import TrialSpec

__all__ = ["IndexedResultStore", "DB_FILENAME"]


class IndexedResultStore(ResultStore):
    """Blob store + run-history index behind the :class:`ResultStore` protocol.

    Parameters
    ----------
    root:
        Shared store directory: blobs live in the usual ``<key[:2]>/``
        shards, the index in ``results.sqlite3`` next to them.
    blobs:
        The blob backend to wrap; defaults to a :class:`ResultCache` at
        *root*.  Any :class:`ResultStore` works — the index only ever
        *derives* from what the blob store serves.
    db_path:
        Index database override (a file path, or a directory to put
        ``results.sqlite3`` in); defaults to *root*.
    """

    def __init__(
        self,
        root: str | Path,
        blobs: ResultStore | None = None,
        db_path: str | Path | None = None,
    ):
        self.root = Path(root)
        self.blobs = blobs if blobs is not None else ResultCache(self.root)
        self.db = RunHistoryDB(self.root if db_path is None else db_path)

    # -- blob operations (delegated; the blobs are the source of truth) ----

    def path_for(self, spec: TrialSpec | str) -> Path:
        """The wrapped blob store's path for a spec (or raw content key)."""
        return self.blobs.path_for(spec)

    def get(self, spec: TrialSpec | str) -> RunHistory | None:
        """The stored history, straight from the blob store.

        Reads never consult the index: it is derived state and may lag a
        concurrent writer (or be missing entirely until a reindex).
        """
        return self.blobs.get(spec)

    def keys_present(self, specs: Iterable[TrialSpec | str]) -> set[str]:
        """Which of *specs* have blobs on disk (the completion signal)."""
        return self.blobs.keys_present(specs)

    def __len__(self) -> int:
        return len(self.blobs)

    def n_quarantined(self) -> int:
        """Quarantined blobs in the wrapped store."""
        return self.blobs.n_quarantined()

    def clear(self) -> int:
        """Delete every blob (and quarantined blob) *and* their index rows.

        The benchmark trajectory table survives — it records runs, not
        cached state.  Returns the number of blob entries removed.
        """
        removed = self.blobs.clear()
        self.db.clear_trials()
        return removed

    # -- the indexing write path ------------------------------------------

    def put(
        self,
        spec: TrialSpec | str,
        history: RunHistory,
        wall_seconds: float | None = None,
    ) -> Path:
        """Store the blob, then materialise its index rows (blob bytes first).

        When *spec* is a :class:`TrialSpec` the row carries the spec
        enrichments (protocol, config overrides, cache format version);
        a raw key indexes the blob-derived columns only.  An index write
        failure is swallowed (the blob already landed and completes the
        trial; ``--reindex`` recovers the row), so this method fails only
        when the *blob* cannot be written.
        """
        path = self.blobs.put(spec, history, wall_seconds=wall_seconds)
        try:
            self.db.index_trial(
                self.key_of(spec),
                history,
                spec=spec if isinstance(spec, TrialSpec) else None,
                wall_seconds=wall_seconds,
            )
        except sqlite3.Error as error:
            # Derived state only: never turn a landed result into a failed
            # put. The divergence is visible (index row missing) and
            # repairable (reindex), so a warning is the right loudness.
            print(
                f"[results] index write for {self.key_of(spec)[:12]}... failed "
                f"({error!r}); blob stored, run --reindex to backfill",
                file=sys.stderr,
            )
        return path

    def reindex(self) -> int:
        """Rebuild the index from the blobs (see :meth:`RunHistoryDB.reindex`)."""
        return self.db.reindex(self.blobs)
