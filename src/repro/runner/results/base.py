"""The result-store protocol: the contract every persistence backend implements.

A *result store* is the persistence layer of the experiment engine: executed
trials are written through it keyed by their
:attr:`TrialSpec.key <repro.runner.spec.TrialSpec.key>` content address, and
every consumer — the engine's cache-first scheduler, the distributed
submitter's polling loop, the worker daemon — reads them back through the
same seam.  Like the broker protocol (:mod:`repro.runner.brokers.base`), the
layers above talk only to this contract, so backends are interchangeable:

* :class:`~repro.runner.results.pickle_store.ResultCache` — the reference
  pickle-shard blob store (``<root>/<key[:2]>/<key>.pkl``);
* :class:`~repro.runner.results.indexed.IndexedResultStore` — any blob
  store plus a WAL-mode SQLite index (``results.sqlite3``) materialising
  spec fields and headline metrics as queryable columns.

The protocol (blobs are always the source of truth):

=========================  ==================================================
``get(spec)``              the stored history, or ``None`` on a miss
``put(spec, history)``     atomically store a history under the content key
``keys_present(specs)``    which of many keys have entries (snapshot, cheap)
``path_for(spec)``         the blob path a key resolves to
``__contains__``           single-key presence probe
``__len__``                number of stored entries
``n_quarantined()``        quarantined (``*.pkl.corrupt``) blobs on disk
``clear()``                delete every entry *and* every quarantined blob
=========================  ==================================================

Shared semantics every backend must honour (the contract suite in
``tests/runner/test_result_store_contract.py`` runs identically against all
of them):

* **content addressing** — one entry per content key; a re-``put`` of the
  same key atomically replaces the previous bytes;
* **quarantine on read** — an unreadable or wrong-typed entry is a miss,
  and is moved aside (never silently deleted) so the recompute can land;
* **byte-identity** — the blob bytes a store persists are independent of
  the backend: an indexed run and a plain run of the same trial produce
  identical blobs (any index is derived state, eventually consistent and
  rebuildable from the blobs).
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Iterable

from repro.core.results import RunHistory
from repro.runner.spec import TrialSpec

#: Recognised ``results=`` backend names, in preference order for docs and
#: validation messages.  ``"pickle"`` is the default everywhere.
RESULT_STORE_BACKENDS = ("pickle", "indexed")


class ResultStore(abc.ABC):
    """Abstract content-addressed persistence for trial :class:`RunHistory`\\ s.

    Subclasses implement blob storage (and optionally derived indexes); the
    engine, the brokers' polling loop and the worker daemon depend only on
    this interface.

    Attributes every backend exposes:

    ``root``
        The directory the store persists under (shown in worker logs and
        timeout diagnostics; the one path submitters and workers share).
    """

    root: Path

    @staticmethod
    def key_of(spec: TrialSpec | str) -> str:
        """Content key of a spec (or pass a raw key through)."""
        return spec.key if isinstance(spec, TrialSpec) else str(spec)

    @abc.abstractmethod
    def path_for(self, spec: TrialSpec | str) -> Path:
        """The blob path for a spec (or a raw content key)."""

    @abc.abstractmethod
    def get(self, spec: TrialSpec | str) -> RunHistory | None:
        """Return the stored history, or ``None`` on a miss.

        An unreadable or wrong-typed entry is quarantined (moved aside,
        reported by :meth:`n_quarantined`) before reporting the miss, so
        the caller's recompute can actually land.
        """

    @abc.abstractmethod
    def put(
        self,
        spec: TrialSpec | str,
        history: RunHistory,
        wall_seconds: float | None = None,
    ) -> Path:
        """Atomically store *history* under the spec's content key.

        *wall_seconds* is optional execution-time metadata: backends with a
        metrics index record it, blob-only backends ignore it — it never
        affects the stored blob bytes.  Returns the blob path written.
        """

    @abc.abstractmethod
    def keys_present(self, specs: Iterable[TrialSpec | str]) -> set[str]:
        """Which of *specs* (specs or raw keys) have entries on disk.

        Must cost a bounded number of listings/queries per call — never a
        ``stat`` per key — so a polling submitter can watch thousands of
        pending trials without stat-storming a shared backend.
        """

    @abc.abstractmethod
    def n_quarantined(self) -> int:
        """Number of quarantined (corrupt, moved-aside) blobs on disk."""

    @abc.abstractmethod
    def clear(self) -> int:
        """Delete every entry *and* every quarantined blob; returns entries removed.

        Quarantined blobs do not count toward the return value (they were
        never servable entries), but they are removed — long-lived shared
        stores must not accumulate dead blobs forever.
        """

    def __contains__(self, spec: TrialSpec | str) -> bool:
        """Whether an entry for the spec's content key exists."""
        return self.path_for(spec).exists()

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored entries (quarantined blobs excluded)."""
