"""Content-addressed pickle-shard blob store: the reference result backend.

Layout: ``<root>/<first two hex chars>/<full key>.pkl``, one pickled
:class:`~repro.core.results.RunHistory` per trial, keyed by
:attr:`TrialSpec.key <repro.runner.spec.TrialSpec.key>`.  Because the key
covers every input that determines the trial outcome, re-running a grid only
executes trials whose spec changed; everything else is served from disk.

Writes are atomic (tempfile + ``os.replace``) so concurrent grid runs and
interrupted processes never leave half-written entries, and unreadable
entries are treated as misses rather than errors.

This module is also importable as ``repro.runner.cache``, its pre-package
name (the alias module replaces itself in ``sys.modules``, so module-level
monkeypatching keeps working).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Iterable

from repro.core.results import RunHistory
from repro.runner.results.base import ResultStore
from repro.runner.spec import TrialSpec


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write *data* to *path* so readers see the old bytes or the new, never a mix.

    Tempfile in the destination directory (``os.replace`` across
    filesystems is copy+delete, not atomic) then rename over the target;
    the temp file is removed on any failure.  Shared by the cache and the
    spool broker so durability fixes land in one place.
    """
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ResultCache(ResultStore):
    """Pickle-per-trial cache rooted at *root* (created lazily on first put)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path_for(self, spec: TrialSpec | str) -> Path:
        """Cache file path for a spec (or a raw content key)."""
        return self.root / self.key_of(spec)[:2] / f"{self.key_of(spec)}.pkl"

    def get(self, spec: TrialSpec | str) -> RunHistory | None:
        """Return the cached history, or ``None`` on a miss or unreadable entry.

        An unreadable or wrong-typed entry is quarantined (renamed to
        ``<entry>.pkl.corrupt``) before reporting the miss, so the caller's
        recompute can actually land: with multiple writers sharing a cache
        directory, leaving the corrupt file in place would turn every
        subsequent ``__contains__`` probe into a false positive while
        ``get`` keeps failing.
        """
        path = self.path_for(spec)
        try:
            with open(path, "rb") as handle:
                history = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Unpickling garbage raises a zoo of exception types
            # (UnpicklingError, ValueError, EOFError, AttributeError, ...);
            # any unreadable entry is a miss and is moved aside for
            # post-mortems instead of being silently overwritten.
            self._quarantine(path)
            return None
        if not isinstance(history, RunHistory):
            self._quarantine(path)
            return None
        return history

    @staticmethod
    def _quarantine(path: Path) -> None:
        # os.replace keeps this race-safe against a concurrent put(): the
        # writer's rename and ours target different names, so whichever
        # lands last, the .pkl slot ends up either absent or freshly valid.
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass

    def put(
        self,
        spec: TrialSpec | str,
        history: RunHistory,
        wall_seconds: float | None = None,
    ) -> Path:
        """Atomically store *history* under the spec's content key.

        *wall_seconds* is accepted for protocol compatibility and ignored:
        this backend stores blobs only.
        """
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, pickle.dumps(history, protocol=pickle.HIGHEST_PROTOCOL))
        return path

    def keys_present(self, specs: Iterable[TrialSpec | str]) -> set[str]:
        """Which of *specs* (specs or raw keys) have entries on disk.

        One directory listing per distinct key-prefix shard instead of one
        ``stat`` per key: this is what lets a polling submitter
        (:meth:`Broker.wait <repro.runner.brokers.base.Broker.wait>`)
        watch thousands of pending trials without stat-storming a shared
        fileserver on every backoff round.  Entries appearing concurrently
        with the listing may be missed; the caller's next round sees them.
        """
        wanted = {self.key_of(spec) for spec in specs}
        if len(wanted) <= 32:
            # For a handful of keys, a stat each beats listing whole
            # prefix directories: a long-lived shared cache can hold
            # hundreds of entries per prefix, and the snapshot only pays
            # off when the pending set is large.
            return {key for key in wanted if self.path_for(key).exists()}
        present: set[str] = set()
        for prefix in {key[:2] for key in wanted}:
            try:
                names = os.listdir(self.root / prefix)
            except OSError:
                continue  # shard not created yet: nothing cached there
            for name in names:
                if name.endswith(".pkl") and name[:-4] in wanted:
                    present.add(name[:-4])
        return present

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def n_quarantined(self) -> int:
        """Quarantined (``*.pkl.corrupt``) blobs currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl.corrupt"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number of entries removed.

        Quarantined ``*.pkl.corrupt`` blobs are removed too (they exist for
        post-mortems, and a clear *is* the post-mortem boundary — leaving
        them would let a long-lived shared cache accumulate dead blobs
        forever), but they do not count toward the return value.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.root.glob("*/*.pkl.corrupt"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed
