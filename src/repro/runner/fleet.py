"""Shared helpers for launching fleet processes (workers, supervisors, services).

Every place that spawns a ``python -m repro.runner.*`` daemon as a
subprocess — the supervisor spawning workers, the distributed example
spawning workers *and* a supervisor, the serving example spawning a server,
test suites spawning all of the above — needs the same three pieces of
setup, which had accumulated by copy-paste:

* :func:`subprocess_env` — an environment in which the child resolves
  ``repro`` the same way this process did (PYTHONPATH propagation);
* :func:`fleet_paths` — the conventional spool/cache directory layout under
  one shared work directory;
* :func:`worker_command` / :func:`supervisor_command` — the daemon argv
  builders, so flag spelling lives in one place.

The helpers build commands and environments only; they never spawn — the
callers own their process lifecycles (and tests can inspect the argv
without launching anything).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path


def subprocess_env(extra: dict[str, str] | None = None) -> dict[str, str]:
    """Environment for fresh-interpreter ``repro`` subprocesses.

    Prepends the directory that provides the ``repro`` package to
    ``PYTHONPATH`` (unless already present) so a child interpreter resolves
    it the same way this process did — whether the parent was launched via
    ``PYTHONPATH=src``, an editable install, or anything else.  *extra*
    entries are merged on top of the inherited environment.
    """
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    if extra:
        env.update(extra)
    paths = env.get("PYTHONPATH", "")
    if src_dir not in paths.split(os.pathsep):
        env["PYTHONPATH"] = src_dir + (os.pathsep + paths if paths else "")
    return env


def fleet_paths(work_dir: str | Path) -> tuple[str, str]:
    """The conventional ``(spool, cache)`` layout under one work directory.

    Submitters, workers, supervisors and the serving layer all need to
    agree on where the queue and the result store live; this is the one
    definition of the ``<work_dir>/spool`` + ``<work_dir>/cache`` convention
    the examples and smokes use.  The directories are not created — the
    brokers and stores create their own locations on first use.
    """
    work_dir = Path(work_dir)
    return str(work_dir / "spool"), str(work_dir / "cache")


def worker_command(
    spool: str | Path,
    cache_dir: str | Path,
    broker: str = "spool",
    results: str = "pickle",
    lease_ttl: float | None = None,
    claim_batch: int | None = None,
    idle_timeout: float | None = None,
    max_trials: int | None = None,
    poll_interval: float | None = None,
    worker_id: str | None = None,
    quiet: bool = False,
) -> list[str]:
    """Argv for one ``python -m repro.runner.worker`` daemon.

    Only explicitly provided optional knobs become flags, so the daemon's
    own defaults stay authoritative.  ``sys.executable`` leads the argv —
    the child runs under the same interpreter as the caller.
    """
    command = [
        sys.executable,
        "-m",
        "repro.runner.worker",
        "--spool",
        str(spool),
        "--cache-dir",
        str(cache_dir),
        "--broker",
        broker,
        "--results",
        results,
    ]
    command += _optional_flags(
        ("--lease-ttl", lease_ttl),
        ("--claim-batch", claim_batch),
        ("--idle-timeout", idle_timeout),
        ("--max-trials", max_trials),
        ("--poll-interval", poll_interval),
        ("--worker-id", worker_id),
    )
    if quiet:
        command.append("--quiet")
    return command


def supervisor_command(
    spool: str | Path,
    cache_dir: str | Path,
    broker: str = "spool",
    results: str = "pickle",
    max_workers: int | None = None,
    min_workers: int | None = None,
    tasks_per_worker: int | None = None,
    worker_idle_timeout: float | None = None,
    worker_max_trials: int | None = None,
    claim_batch: int | None = None,
    lease_ttl: float | None = None,
    interval: float | None = None,
    drain: bool = False,
    quiet: bool = False,
) -> list[str]:
    """Argv for one ``python -m repro.runner.supervisor`` fleet process.

    Same conventions as :func:`worker_command`: unset knobs are omitted so
    the supervisor's defaults apply, and the caller's interpreter runs the
    child.
    """
    command = [
        sys.executable,
        "-m",
        "repro.runner.supervisor",
        "--spool",
        str(spool),
        "--cache-dir",
        str(cache_dir),
        "--broker",
        broker,
        "--results",
        results,
    ]
    command += _optional_flags(
        ("--max-workers", max_workers),
        ("--min-workers", min_workers),
        ("--tasks-per-worker", tasks_per_worker),
        ("--worker-idle-timeout", worker_idle_timeout),
        ("--worker-max-trials", worker_max_trials),
        ("--claim-batch", claim_batch),
        ("--lease-ttl", lease_ttl),
        ("--interval", interval),
    )
    if drain:
        command.append("--drain")
    if quiet:
        command.append("--quiet")
    return command


def _optional_flags(*pairs: tuple[str, object]) -> list[str]:
    """Flatten ``(flag, value)`` pairs into argv, skipping ``None`` values."""
    flags: list[str] = []
    for flag, value in pairs:
        if value is not None:
            flags += [flag, str(value)]
    return flags
