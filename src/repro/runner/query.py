"""Query CLI for the run-history database (``python -m repro.runner.query``).

Answers analytical questions against the ``results.sqlite3`` index of an
:class:`~repro.runner.results.indexed.IndexedResultStore` cache directory —
spec-field filters, metric predicates, cross-grid leaderboards — without
unpickling a single result blob, and rebuilds the index from the blobs when
asked (``--reindex``, the backfill path for pre-existing pickle-only
caches).

Examples::

    # adopt a pickle-only cache: build its index from the blob shards
    python -m repro.runner.query --cache-dir /shared/cache --reindex

    # spec-field filter + metric predicate, straight off the index
    python -m repro.runner.query --cache-dir /shared/cache \\
        --dataset youtube --where "final_accuracy >= 0.8 AND lm_warm_fits > 0"

    # cross-grid framework leaderboard by mean headline metric
    python -m repro.runner.query --cache-dir /shared/cache \\
        --leaderboard --metric average_accuracy --group-by framework

    # the recorded benchmark trajectory, and its drift vs BENCH_core.json
    python -m repro.runner.query --db BENCH_history.sqlite3 --benchmarks \\
        --trajectory-diff BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.runner.results import TRIAL_METRICS, IndexedResultStore, RunHistoryDB

#: Columns shown by the default (non ``--json``) trial listing, in order.
_LISTING_COLUMNS = (
    "key",
    "framework",
    "dataset",
    "seed",
    "n_iterations",
    "average_accuracy",
    "final_accuracy",
    "lm_fits",
    "lm_warm_fits",
)


def _emit(rows: list[dict], as_json: bool, columns=None) -> None:
    """Print *rows* as JSON lines or as an aligned text table."""
    if as_json:
        for row in rows:
            print(json.dumps(row, sort_keys=True, default=str))
        return
    if not rows:
        print("(no rows)")
        return
    names = [c for c in (columns or rows[0].keys()) if c in rows[0]]
    table = [
        [_cell(row.get(name)) for name in names]
        for row in rows
    ]
    widths = [
        max(len(name), *(len(line[i]) for line in table))
        for i, name in enumerate(names)
    ]
    print("  ".join(name.ljust(width) for name, width in zip(names, widths)))
    for line in table:
        print("  ".join(value.ljust(width) for value, width in zip(line, widths)))


def _cell(value) -> str:
    """One table cell: keys shortened, floats rounded, ``None`` as ``-``."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    text = str(value)
    if len(text) == 64 and all(c in "0123456789abcdef" for c in text):
        return text[:12] + "..."  # a content key: the prefix identifies it
    return text


def _flatten(values, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested dict as ``{"a.b.c": value}``."""
    flat: dict[str, float] = {}
    if isinstance(values, dict):
        for name, value in values.items():
            flat.update(_flatten(value, f"{prefix}{name}."))
    elif isinstance(values, bool):
        pass  # bools are not trajectory metrics
    elif isinstance(values, (int, float)):
        flat[prefix.rstrip(".")] = float(values)
    return flat


def trajectory_diff(db: RunHistoryDB, committed: Path) -> list[str]:
    """Lines describing drift of the latest recorded runs vs *committed*.

    Compares each benchmark's most recent :meth:`RunHistoryDB
    .benchmark_trajectory` row against the committed ``BENCH_core.json``
    entry of the same name, numeric leaf by numeric leaf — the cross-session
    regression signal CI prints after the benchmark smokes.
    """
    try:
        baseline = json.loads(Path(committed).read_text())
    except (OSError, ValueError) as error:
        return [f"(no committed baseline at {committed}: {error})"]
    latest: dict[str, dict] = {}
    for row in db.benchmark_trajectory():  # oldest first: later rows win
        latest[row["benchmark"]] = row["values"]
    lines: list[str] = []
    for benchmark in sorted(latest):
        if benchmark not in baseline:
            lines.append(f"{benchmark}: new benchmark (no committed baseline)")
            continue
        old = _flatten(baseline[benchmark])
        new = _flatten(latest[benchmark])
        for name in sorted(old.keys() & new.keys()):
            if old[name] == new[name]:
                continue
            delta = new[name] - old[name]
            ratio = f" ({delta / old[name]:+.1%})" if old[name] else ""
            lines.append(
                f"{benchmark}.{name}: {old[name]:g} -> {new[name]:g}{ratio}"
            )
    if not lines:
        lines.append("(no drift vs committed baseline)")
    return lines


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.runner.query``); returns exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.query",
        description="Query the run-history index of a trial-result cache.",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR"),
        help="result-store root (its results.sqlite3 is the index; "
        "env REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--db",
        default=None,
        help="query this database file directly (overrides --cache-dir; "
        "--reindex still needs --cache-dir for the blobs)",
    )
    parser.add_argument(
        "--reindex",
        action="store_true",
        help="rebuild the index by walking the cache's blob shards first "
        "(the backfill for pickle-only caches)",
    )
    parser.add_argument("--framework", default=None, help="filter: framework name")
    parser.add_argument("--dataset", default=None, help="filter: dataset name")
    parser.add_argument("--seed", type=int, default=None, help="filter: trial seed")
    parser.add_argument(
        "--where",
        default=None,
        help="raw SQL predicate over the trials columns, e.g. "
        '"final_accuracy >= 0.8 AND lm_warm_fits > 0"',
    )
    parser.add_argument(
        "--leaderboard",
        action="store_true",
        help="rank groups by mean --metric instead of listing trials",
    )
    parser.add_argument(
        "--metric",
        default="average_accuracy",
        choices=TRIAL_METRICS,
        metavar="METRIC",
        help="leaderboard metric (default average_accuracy; one of the "
        "numeric trials columns)",
    )
    parser.add_argument(
        "--group-by",
        default="framework",
        help="comma-separated leaderboard grouping columns "
        "(default framework; e.g. framework,dataset)",
    )
    parser.add_argument(
        "--iterations", default=None, metavar="KEY",
        help="list the per-iteration rows of one trial (full content key)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="?",
        const="",
        default=None,
        metavar="NAME",
        help="print the recorded benchmark trajectory (optionally one "
        "benchmark's)",
    )
    parser.add_argument(
        "--trajectory-diff",
        default=None,
        metavar="BENCH_JSON",
        help="print drift of the latest recorded benchmark runs vs this "
        "committed BENCH_core.json",
    )
    parser.add_argument(
        "--counts", action="store_true", help="print index table sizes and exit"
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="cap the number of rows printed"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit rows as JSON lines"
    )
    args = parser.parse_args(argv)

    if args.cache_dir is None and args.db is None:
        parser.error("need --cache-dir (or REPRO_CACHE_DIR) or --db")
    if args.reindex and args.cache_dir is None:
        parser.error("--reindex walks the cache's blobs: it needs --cache-dir")

    if args.cache_dir is not None:
        store = IndexedResultStore(args.cache_dir, db_path=args.db)
        db = store.db
    else:
        store = None
        db = RunHistoryDB(args.db)

    try:
        if args.reindex:
            rebuilt = store.reindex()
            print(f"reindexed {rebuilt} trial(s) from {store.root}", file=sys.stderr)

        if args.counts:
            _emit([db.counts()], args.json)
            return 0
        if args.iterations is not None:
            _emit(db.iterations(args.iterations), args.json)
            return 0
        if args.benchmarks is not None or args.trajectory_diff is not None:
            if args.benchmarks is not None:
                rows = db.benchmark_trajectory(args.benchmarks or None)
                if args.limit is not None:
                    rows = rows[-args.limit :]
                _emit(
                    [
                        {
                            "benchmark": row["benchmark"],
                            "recorded_at": row["recorded_at"],
                            **{
                                name: value
                                for name, value in _flatten(row["values"]).items()
                            },
                        }
                        for row in rows
                    ],
                    args.json,
                )
            if args.trajectory_diff is not None:
                for line in trajectory_diff(db, Path(args.trajectory_diff)):
                    print(line)
            return 0
        if args.leaderboard:
            rows = db.leaderboard(
                metric=args.metric,
                by=tuple(
                    name.strip() for name in args.group_by.split(",") if name.strip()
                ),
                limit=args.limit,
                framework=args.framework,
                dataset=args.dataset,
                seed=args.seed,
                where=args.where,
            )
            _emit(rows, args.json)
            return 0
        rows = db.query(
            framework=args.framework,
            dataset=args.dataset,
            seed=args.seed,
            where=args.where,
            limit=args.limit,
        )
        _emit(rows, args.json, columns=_LISTING_COLUMNS)
        return 0
    finally:
        db.close()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
