"""Worker daemon: executes brokered trials on any machine that can see the queue.

Run one (or many) of these on every machine that shares the broker location
and the cache directory::

    python -m repro.runner.worker --spool /shared/spool --cache-dir /shared/cache

The worker talks only to the :class:`~repro.runner.brokers.Broker` protocol;
``--broker`` (or ``REPRO_BROKER``) picks the backend — the filesystem spool
(default) or the SQLite queue — and ``--spool`` names the shared location
either way.  The worker loops forever (until ``--max-trials`` or
``--idle-timeout``): claim a batch of pending trials (``--claim-batch``
tasks per queue scan — one scan amortised over the whole batch, and
consecutive batches stick to the same dataset shard so generated corpora
stay warm), heartbeat every held lease from a background thread, and execute
the batch with the engine's canonical
:func:`~repro.runner.executor.run_trial` loop.
Each result is written through the shared
:class:`~repro.runner.results.base.ResultStore` (``--results`` picks the
backend: the plain pickle-shard cache, or the indexed store that also
maintains the ``results.sqlite3`` run-history index) *while its lease is
still heartbeating* — a slow publish (NFS, large history) must not let the lease
expire and the completed trial get re-executed elsewhere — and only then is
the lease dropped.  A trial that raises is recorded as a failure log for the
submitter to surface; the worker itself keeps serving other trials.  On
shutdown (interrupt), every lease not yet completed — including claimed but
unstarted batch members — is voluntarily re-offered.

Workers are stateless and interchangeable: all coordination lives in the
broker's lease protocol, and results are content-addressed, so adding a
worker never requires telling the submitter (or the other workers) about it
— which is exactly what lets ``repro.runner.supervisor`` scale the fleet up
and down freely.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
import traceback

from repro.runner.brokers import (
    BROKER_BACKENDS,
    DEFAULT_CLAIM_BATCH,
    DEFAULT_LEASE_TTL,
    Broker,
    create_broker,
)
from repro.runner.executor import run_trial
from repro.runner.results import RESULT_STORE_BACKENDS, create_result_store


def default_worker_id() -> str:
    """Host-and-pid identity recorded in failure logs (``host-pid``)."""
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeat(threading.Thread):
    """Background thread touching every held lease while a batch executes.

    The worker's main thread is busy inside a trial for potentially many
    TTLs, so liveness must be signalled from the side — for the trial being
    executed *and* for the claimed-but-unstarted remainder of the batch,
    which would otherwise age out and be re-offered mid-batch.  A missed
    heartbeat (this thread dying with the process) is exactly what lets the
    submitter re-offer the trials.
    """

    #: Shared state the lock-discipline checker holds to `with self._lock:`.
    _GUARDED_BY_LOCK = ("_leases",)

    def __init__(self, broker: Broker, leases: list, interval: float):
        super().__init__(daemon=True)
        self._broker = broker
        self._leases = list(leases)
        self._lock = threading.Lock()
        self._interval = interval
        self._stopped = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised via integration
        while not self._stopped.wait(self._interval):
            for lease in self.outstanding():
                self._broker.heartbeat(lease)

    def outstanding(self) -> list:
        """The leases still held (claimed, neither completed nor released)."""
        with self._lock:
            return list(self._leases)

    def discard(self, lease) -> None:
        """Stop heartbeating *lease* (it was completed, failed or released)."""
        with self._lock:
            if lease in self._leases:
                self._leases.remove(lease)

    def stop(self) -> None:
        """Stop heartbeating and wait for the thread to exit."""
        self._stopped.set()
        self.join()


def run_worker(
    spool: str,
    cache_dir: str,
    max_trials: int | None = None,
    idle_timeout: float | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = 0.2,
    claim_batch: int = DEFAULT_CLAIM_BATCH,
    worker_id: str | None = None,
    quiet: bool = False,
    broker: str = "spool",
    results: str = "pickle",
) -> int:
    """Serve trials from the shared queue until done; returns the number executed.

    Parameters
    ----------
    spool:
        Shared broker location (same path the submitter configured): the
        spool directory, or the directory/file the SQLite backend keeps
        its database in.
    cache_dir:
        Shared :class:`ResultCache` root results are written through.
    max_trials:
        Exit after executing this many trials (``None`` = unbounded).
    idle_timeout:
        Exit after this many consecutive seconds without finding a pending
        task (``None`` = wait forever).
    lease_ttl:
        Lease time-to-live; must match (or exceed) the submitter's so a
        healthy heartbeat is never mistaken for death.
    poll_interval:
        Sleep between empty-spool polls.
    claim_batch:
        Tasks claimed per spool scan (clamped so ``max_trials`` is never
        over-claimed); ``1`` restores one-listing-per-claim behaviour.
        Claimed leases are heartbeated until executed, so a batch pins its
        trials to this worker: at the tail of a grid a large batch can
        serialise the last trials onto one worker while the rest idle.
        Keep it well below (pending trials / workers) when individual
        trials are long; the listing amortisation matters on huge grids of
        short trials, where the tail is negligible.
    worker_id:
        Identity recorded in failure logs; defaults to ``host-pid``.
    quiet:
        Suppress per-trial progress lines on stderr.
    broker:
        Broker backend name (``"spool"`` or ``"sqlite"``); must match the
        submitter's ``ExecutionConfig.broker``.
    results:
        Result-store backend name (``"pickle"`` or ``"indexed"``); with
        ``"indexed"`` each published trial also lands in the shared
        ``results.sqlite3`` run-history index, spec fields and all.  Blob
        bytes are identical either way, so workers with mismatched
        ``--results`` still agree on every result — only index coverage
        differs.
    """
    if claim_batch < 1:
        raise ValueError("claim_batch must be at least 1")
    broker = create_broker(broker, spool, lease_ttl=lease_ttl)
    cache = create_result_store(results, cache_dir)
    identity = worker_id or default_worker_id()
    heartbeat_interval = max(lease_ttl / 4.0, 0.05)

    def log(message: str) -> None:
        if not quiet:
            print(f"[worker {identity}] {message}", file=sys.stderr, flush=True)

    executed = 0
    idle_since = time.monotonic()
    log(f"serving queue {broker.location} -> cache {cache.root}")
    while max_trials is None or executed < max_trials:
        want = claim_batch if max_trials is None else min(claim_batch, max_trials - executed)
        leases = broker.lease_batch(identity, limit=want)
        if not leases:
            if (
                idle_timeout is not None
                and time.monotonic() - idle_since >= idle_timeout
            ):
                break
            time.sleep(poll_interval)
            continue
        heartbeat = _Heartbeat(broker, leases, heartbeat_interval)
        heartbeat.start()
        try:
            for lease in leases:
                if cache.get(lease.key) is not None:
                    # Another worker (or a previous life of this trial,
                    # completed right before its holder crashed) already
                    # produced the result: content addressing makes
                    # re-execution pure waste.
                    log(f"{lease.key[:12]}... already cached, skipping")
                    broker.complete(lease)
                    heartbeat.discard(lease)
                    continue
                try:
                    started = time.perf_counter()
                    history = run_trial(lease.spec)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as error:
                    broker.fail(lease, identity, error, traceback.format_exc())
                    heartbeat.discard(lease)
                    log(f"{lease.key[:12]}... FAILED: {error!r}")
                    continue
                try:
                    # The lease is still heartbeating here: a publish slower
                    # than the TTL (NFS stall, large history) must not look
                    # like a dead worker and get the finished trial re-run.
                    # Publishing the spec (not just the key) lets an indexed
                    # store materialise the spec-enrichment columns.
                    cache.put(
                        lease.spec,
                        history,
                        wall_seconds=time.perf_counter() - started,
                    )
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as error:
                    # Publishing failed (disk full, NFS hiccup): this is
                    # worker-side infrastructure, not a property of the
                    # trial, so no failure log — re-offer the trial for any
                    # worker (including this one, once the condition clears)
                    # and keep the daemon alive.  The sleep paces the retry
                    # loop when the condition persists.
                    broker.release(lease)
                    heartbeat.discard(lease)
                    log(f"{lease.key[:12]}... cache write failed ({error!r}); re-offered")
                    time.sleep(poll_interval)
                    continue
                broker.complete(lease)
                heartbeat.discard(lease)
                executed += 1
                log(
                    f"{lease.key[:12]}... done in {time.perf_counter() - started:.2f}s "
                    f"({lease.spec.framework} on {lease.spec.dataset}, "
                    f"seed {lease.spec.seed}) [{executed}"
                    + (f"/{max_trials}]" if max_trials is not None else "]")
                )
        except BaseException:
            # Shutdown (or an error escaping the loop itself, e.g. the
            # failure-log write blowing up) mid-batch: stop heartbeating and
            # re-offer every still-held lease — the in-flight trial and the
            # claimed-but-unstarted remainder — so other workers pick them
            # up now instead of after a TTL expiry.  Leaking the heartbeat
            # here would keep the leases fresh forever and wedge the
            # submitter's abandonment detection.
            remaining = heartbeat.outstanding()
            for lease in remaining:
                broker.release(lease)
                heartbeat.discard(lease)
            heartbeat.stop()
            log(f"aborting batch, re-offered {len(remaining)} lease(s)")
            raise
        heartbeat.stop()
        # The idle clock starts when the batch *finishes*, not when it was
        # claimed: a batch longer than idle_timeout must not make the first
        # empty poll after it look like idle_timeout seconds of idleness.
        idle_since = time.monotonic()
    log(f"exiting after {executed} trial(s)")
    return executed


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.runner.worker``); returns exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.worker",
        description="Execute spooled experiment trials on this machine.",
    )
    parser.add_argument(
        "--spool",
        required=True,
        help="shared broker location (spool directory, or the directory the "
        "sqlite backend keeps its database in)",
    )
    parser.add_argument(
        "--cache-dir", required=True, help="shared trial-result cache directory"
    )
    parser.add_argument(
        "--broker",
        choices=BROKER_BACKENDS,
        default=os.environ.get("REPRO_BROKER", "spool"),
        help="broker backend to claim trials from (env REPRO_BROKER; "
        "default spool); must match the submitter's",
    )
    parser.add_argument(
        "--results",
        choices=RESULT_STORE_BACKENDS,
        default=os.environ.get("REPRO_RESULTS", "pickle"),
        help="result-store backend results are published through (env "
        "REPRO_RESULTS; default pickle; indexed additionally maintains "
        "the shared results.sqlite3 run-history index)",
    )
    parser.add_argument(
        "--max-trials",
        type=int,
        default=None,
        help="exit after executing this many trials (default: unbounded)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many seconds with no pending tasks (default: wait forever)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        help="lease time-to-live in seconds (must match the submitter's)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="sleep between empty-spool polls, in seconds",
    )
    parser.add_argument(
        "--claim-batch",
        type=int,
        default=int(os.environ.get("REPRO_CLAIM_BATCH", DEFAULT_CLAIM_BATCH)),
        help="tasks claimed per spool scan (env REPRO_CLAIM_BATCH; "
        f"default {DEFAULT_CLAIM_BATCH}; 1 = one listing per claim)",
    )
    parser.add_argument(
        "--worker-id", default=None, help="identity recorded in failure logs"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-trial progress lines"
    )
    args = parser.parse_args(argv)
    try:
        run_worker(
            args.spool,
            args.cache_dir,
            max_trials=args.max_trials,
            idle_timeout=args.idle_timeout,
            lease_ttl=args.lease_ttl,
            poll_interval=args.poll_interval,
            claim_batch=args.claim_batch,
            worker_id=args.worker_id,
            quiet=args.quiet,
            broker=args.broker,
            results=args.results,
        )
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
