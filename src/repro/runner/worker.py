"""Worker daemon: executes spooled trials on any machine that can see the spool.

Run one (or many) of these on every machine that shares the spool directory
and the cache directory::

    python -m repro.runner.worker --spool /shared/spool --cache-dir /shared/cache

The worker loops forever (until ``--max-trials`` or ``--idle-timeout``):
lease the next pending trial from the :class:`~repro.runner.broker.SpoolBroker`,
heartbeat the lease from a background thread while executing it with the
engine's canonical :func:`~repro.runner.executor.run_trial` loop, write the
history through the shared :class:`~repro.runner.cache.ResultCache`, drop the
lease.  A trial that raises is recorded as a failure log for the submitter to
surface; the worker itself keeps serving other trials.

Workers are stateless and interchangeable: all coordination lives in the
spool's rename-based lease protocol, and results are content-addressed, so
adding a worker never requires telling the submitter (or the other workers)
about it.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
import traceback

from repro.runner.broker import DEFAULT_LEASE_TTL, LeasedTrial, SpoolBroker
from repro.runner.cache import ResultCache
from repro.runner.executor import run_trial


def default_worker_id() -> str:
    """Host-and-pid identity recorded in failure logs (``host-pid``)."""
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeat(threading.Thread):
    """Background thread touching the lease file while a trial executes.

    The worker's main thread is busy inside the trial for potentially many
    TTLs, so liveness must be signalled from the side; a missed heartbeat
    (this thread dying with the process) is exactly what lets the submitter
    re-offer the trial.
    """

    def __init__(self, broker: SpoolBroker, lease: LeasedTrial, interval: float):
        super().__init__(daemon=True)
        self._broker = broker
        self._lease = lease
        self._interval = interval
        self._stopped = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised via integration
        while not self._stopped.wait(self._interval):
            self._broker.heartbeat(self._lease)

    def stop(self) -> None:
        """Stop heartbeating and wait for the thread to exit."""
        self._stopped.set()
        self.join()


def run_worker(
    spool: str,
    cache_dir: str,
    max_trials: int | None = None,
    idle_timeout: float | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = 0.2,
    worker_id: str | None = None,
    quiet: bool = False,
) -> int:
    """Serve trials from *spool* until done; returns the number executed.

    Parameters
    ----------
    spool:
        Shared spool directory (same path the submitter passed to the
        broker).
    cache_dir:
        Shared :class:`ResultCache` root results are written through.
    max_trials:
        Exit after executing this many trials (``None`` = unbounded).
    idle_timeout:
        Exit after this many consecutive seconds without finding a pending
        task (``None`` = wait forever).
    lease_ttl:
        Lease time-to-live; must match (or exceed) the submitter's so a
        healthy heartbeat is never mistaken for death.
    poll_interval:
        Sleep between empty-spool polls.
    worker_id:
        Identity recorded in failure logs; defaults to ``host-pid``.
    quiet:
        Suppress per-trial progress lines on stderr.
    """
    broker = SpoolBroker(spool, lease_ttl=lease_ttl)
    cache = ResultCache(cache_dir)
    identity = worker_id or default_worker_id()
    heartbeat_interval = max(lease_ttl / 4.0, 0.05)

    def log(message: str) -> None:
        if not quiet:
            print(f"[worker {identity}] {message}", file=sys.stderr, flush=True)

    executed = 0
    idle_since = time.monotonic()
    log(f"serving spool {broker.root} -> cache {cache.root}")
    while max_trials is None or executed < max_trials:
        lease = broker.lease_next(identity)
        if lease is None:
            if (
                idle_timeout is not None
                and time.monotonic() - idle_since >= idle_timeout
            ):
                break
            time.sleep(poll_interval)
            continue
        idle_since = time.monotonic()
        if cache.get(lease.key) is not None:
            # Another worker (or a previous life of this trial, completed
            # right before its holder crashed) already produced the result:
            # content addressing makes re-execution pure waste.
            log(f"{lease.key[:12]}... already cached, skipping")
            broker.complete(lease)
            continue
        heartbeat = _Heartbeat(broker, lease, heartbeat_interval)
        heartbeat.start()
        try:
            started = time.perf_counter()
            history = run_trial(lease.spec)
        except (KeyboardInterrupt, SystemExit):
            heartbeat.stop()
            broker.release(lease)
            log(f"interrupted, re-offered {lease.key[:12]}...")
            raise
        except BaseException as error:
            heartbeat.stop()
            broker.fail(lease, identity, error, traceback.format_exc())
            log(f"{lease.key[:12]}... FAILED: {error!r}")
            continue
        heartbeat.stop()
        try:
            cache.put(lease.key, history)
        except (KeyboardInterrupt, SystemExit):
            broker.release(lease)
            raise
        except Exception as error:
            # Publishing failed (disk full, NFS hiccup): this is worker-side
            # infrastructure, not a property of the trial, so no failure log
            # — re-offer the trial for any worker (including this one, once
            # the condition clears) and keep the daemon alive.  The sleep
            # paces the retry loop when the condition persists.
            broker.release(lease)
            log(f"{lease.key[:12]}... cache write failed ({error!r}); re-offered")
            time.sleep(poll_interval)
            continue
        broker.complete(lease)
        executed += 1
        log(
            f"{lease.key[:12]}... done in {time.perf_counter() - started:.2f}s "
            f"({lease.spec.framework} on {lease.spec.dataset}, "
            f"seed {lease.spec.seed}) [{executed}"
            + (f"/{max_trials}]" if max_trials is not None else "]")
        )
    log(f"exiting after {executed} trial(s)")
    return executed


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.runner.worker``); returns exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.worker",
        description="Execute spooled experiment trials on this machine.",
    )
    parser.add_argument("--spool", required=True, help="shared spool directory")
    parser.add_argument(
        "--cache-dir", required=True, help="shared trial-result cache directory"
    )
    parser.add_argument(
        "--max-trials",
        type=int,
        default=None,
        help="exit after executing this many trials (default: unbounded)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many seconds with no pending tasks (default: wait forever)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        help="lease time-to-live in seconds (must match the submitter's)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="sleep between empty-spool polls, in seconds",
    )
    parser.add_argument(
        "--worker-id", default=None, help="identity recorded in failure logs"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-trial progress lines"
    )
    args = parser.parse_args(argv)
    try:
        run_worker(
            args.spool,
            args.cache_dir,
            max_trials=args.max_trials,
            idle_timeout=args.idle_timeout,
            lease_ttl=args.lease_ttl,
            poll_interval=args.poll_interval,
            worker_id=args.worker_id,
            quiet=args.quiet,
        )
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
