"""Trial execution: the per-trial loop and the parallel scheduler.

:func:`run_trial_on_split` is the canonical evaluation loop for one trial —
``n_iterations`` pipeline steps, downstream-model evaluation at the
protocol's checkpoints, and the pipeline's own per-iteration records
propagated into the :class:`~repro.core.results.RunHistory` (the protocol
layer delegates here, so serial and parallel paths share one loop).

:func:`execute_trials` schedules a batch of :class:`TrialSpec`s across a
process pool.  Trials are fully self-contained — the dataset is regenerated
inside the worker from the spec's seed, and every stochastic component is
seeded from the spec — so parallel execution is bit-identical to serial
execution in any order.  Pool-level failures (sandboxes without process
support, unpicklable kwargs) degrade to an in-process serial loop.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import Callable, Sequence

from repro.baselines import get_pipeline
from repro.core.results import IterationRecord, RunHistory
from repro.datasets import load_dataset
from repro.runner.spec import TrialSpec


def run_trial_on_split(
    framework: str,
    data_split,
    protocol,
    seed: int,
    pipeline_kwargs: dict | None = None,
) -> RunHistory:
    """Run one framework on one already-generated dataset split with one seed."""
    pipeline = get_pipeline(framework, data_split, random_state=seed, **(pipeline_kwargs or {}))
    history = RunHistory(framework=framework, dataset=data_split.name, seed=seed)
    eval_points = set(protocol.evaluation_iterations())
    for iteration in range(1, protocol.n_iterations + 1):
        record = pipeline.step()
        if record is None:
            # Pipelines without per-iteration introspection still get a row.
            record = IterationRecord(iteration=iteration, query_index=-1)
        else:
            # Align the pipeline's internal counter with the protocol's
            # 1-based labelling-budget count.
            record.iteration = iteration
        if iteration in eval_points:
            record.test_accuracy = pipeline.evaluate_end_model(C=protocol.end_model_C)
            quality = pipeline.label_quality()
            record.label_coverage = quality["coverage"]
            record.label_accuracy = quality["accuracy"]
        history.add(record)
    return history


def run_trial(spec: TrialSpec) -> RunHistory:
    """Execute one trial from scratch (dataset generation included)."""
    data_split = load_dataset(
        spec.dataset, scale=spec.protocol.dataset_scale, random_state=spec.seed
    )
    return run_trial_on_split(
        spec.framework, data_split, spec.protocol, spec.seed, spec.pipeline_kwargs
    )


def default_workers() -> int:
    """Default worker count for ``workers=0`` (all cores, capped at 8)."""
    return min(os.cpu_count() or 1, 8)


def execute_trials(
    specs: Sequence[TrialSpec],
    workers: int = 1,
    on_result: Callable[[TrialSpec, RunHistory], None] | None = None,
) -> list[RunHistory]:
    """Execute *specs* and return their histories in the same order.

    ``workers > 1`` fans the trials out over a process pool (``workers=0``
    means :func:`default_workers`); ``workers=1`` runs in-process.  If the
    pool cannot be created or fed, execution falls back to the serial path
    with a warning — results are identical either way.

    *on_result* is invoked once per trial as soon as its history is
    available (completion order under a pool) — the engine uses it to
    persist results incrementally, so an interrupted grid run keeps every
    trial finished so far.
    """
    if workers == 0:
        workers = default_workers()
    if workers < 0:
        raise ValueError("workers must be >= 0")
    specs = list(specs)

    def _serial() -> list[RunHistory]:
        histories = []
        for spec in specs:
            history = run_trial(spec)
            if on_result is not None:
                on_result(spec, history)
            histories.append(history)
        return histories

    if workers <= 1 or len(specs) <= 1:
        return _serial()

    histories: list[RunHistory | None] = [None] * len(specs)
    remaining = set(range(len(specs)))

    def _serial_remaining(exc: BaseException) -> list[RunHistory]:
        warnings.warn(
            f"parallel trial execution unavailable ({exc!r}); "
            f"running {len(remaining)} remaining trial(s) serially",
            RuntimeWarning,
            stacklevel=3,
        )
        for position in sorted(remaining):
            history = run_trial(specs[position])
            if on_result is not None:
                on_result(specs[position], history)
            histories[position] = history
        return histories

    # Only pool-infrastructure failures fall back to the serial path;
    # exceptions raised by trial code (or by on_result) propagate unmasked —
    # catching them here would misreport a genuine failure as "parallelism
    # unavailable" and silently re-execute the whole batch.
    with ProcessPoolExecutor(max_workers=min(workers, len(specs))) as pool:
        try:
            futures = {pool.submit(run_trial, spec): position for position, spec in enumerate(specs)}
        except (PicklingError, OSError, RuntimeError) as exc:
            # Parent-side spawn/serialisation failure (sandboxed env, spec
            # not picklable): nothing ran in a worker yet.
            pool.shutdown(cancel_futures=True)
            return _serial_remaining(exc)
        for future in as_completed(futures):
            position = futures[future]
            try:
                history = future.result()
            except BrokenProcessPool as exc:
                # Workers died underneath us (OOM, killed): infrastructure,
                # not the trial; finish the incomplete positions in-process.
                return _serial_remaining(exc)
            if on_result is not None:
                on_result(specs[position], history)
            histories[position] = history
            remaining.discard(position)
    return histories
