"""Trial execution: the per-trial loop and the parallel scheduler.

:func:`run_trial_on_split` is the canonical evaluation loop for one trial —
``n_iterations`` pipeline steps, downstream-model evaluation at the
protocol's checkpoints, and the pipeline's own per-iteration records
propagated into the :class:`~repro.core.results.RunHistory` (the protocol
layer delegates here, so serial and parallel paths share one loop).

:func:`execute_trials` schedules a batch of :class:`TrialSpec`s across a
process pool.  Trials are fully self-contained — the dataset is regenerated
inside the worker from the spec's seed, and every stochastic component is
seeded from the spec — so parallel execution is bit-identical to serial
execution in any order.  Pool-level failures (sandboxes without process
support, unpicklable kwargs) degrade to an in-process serial loop.

The same self-containment is what lets :func:`run_trial` serve as the
execution kernel everywhere trials run: the serial path, the pool workers
here, and the cross-machine :mod:`repro.runner.worker` daemons all call it
with nothing but a spec.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro.baselines import get_pipeline
from repro.core.results import IterationRecord, RunHistory
from repro.datasets import load_dataset
from repro.runner.spec import TrialSpec


def run_trial_on_split(
    framework: str,
    data_split,
    protocol,
    seed: int,
    pipeline_kwargs: dict | None = None,
) -> RunHistory:
    """Run one framework on one already-generated dataset split with one seed."""
    pipeline = get_pipeline(framework, data_split, random_state=seed, **(pipeline_kwargs or {}))
    history = RunHistory(framework=framework, dataset=data_split.name, seed=seed)
    eval_points = set(protocol.evaluation_iterations())
    for iteration in range(1, protocol.n_iterations + 1):
        record = pipeline.step()
        if record is None:
            # Pipelines without per-iteration introspection still get a row.
            record = IterationRecord(iteration=iteration, query_index=-1)
        else:
            # Align the pipeline's internal counter with the protocol's
            # 1-based labelling-budget count.
            record.iteration = iteration
        if iteration in eval_points:
            record.test_accuracy = pipeline.evaluate_end_model(C=protocol.end_model_C)
            quality = pipeline.label_quality()
            record.label_coverage = quality["coverage"]
            record.label_accuracy = quality["accuracy"]
            # Evaluation may itself have refit stale state (retrain_every > 1
            # flushes dirty inputs before aggregating); re-read the cumulative
            # counters so that work lands in this iteration's record instead
            # of the next one's (or, at the last iteration, nowhere).
            counters = pipeline.refit_counters()
            if counters:
                for field, value in counters.items():
                    setattr(record, field, value)
        history.add(record)
    exporter = getattr(pipeline, "export_artifacts", None)
    if exporter is not None:
        # Pipelines may export final outputs (aggregated labels, per-LF
        # diagnostics, end-model predictions) beyond the metric records; the
        # serving layer returns these to label-request clients.  The payload
        # must be plain JSON-able Python — it travels inside the cached blob.
        history.artifacts = exporter()
    return history


def run_trial(spec: TrialSpec) -> RunHistory:
    """Execute one trial from scratch (dataset generation included)."""
    data_split = load_dataset(
        spec.dataset, scale=spec.protocol.dataset_scale, random_state=spec.seed
    )
    return run_trial_on_split(
        spec.framework, data_split, spec.protocol, spec.seed, spec.pipeline_kwargs
    )


def default_workers() -> int:
    """Default worker count for ``workers=0`` (all cores, capped at 8)."""
    return min(os.cpu_count() or 1, 8)


def execute_trials(
    specs: Sequence[TrialSpec],
    workers: int = 1,
    on_result: Callable[[TrialSpec, RunHistory], None] | None = None,
) -> list[RunHistory]:
    """Execute *specs* and return their histories in the same order.

    ``workers > 1`` fans the trials out over a process pool (``workers=0``
    means :func:`default_workers`); ``workers=1`` runs in-process.  If the
    pool cannot be created or fed, execution falls back to the serial path
    with a warning — results are identical either way.

    *on_result* is invoked once per trial as soon as its history is
    available (completion order under a pool) — the engine uses it to
    persist results incrementally, so an interrupted grid run keeps every
    trial finished so far.
    """
    if workers == 0:
        workers = default_workers()
    if workers < 0:
        raise ValueError("workers must be >= 0")
    specs = list(specs)
    histories: list[RunHistory | None] = [None] * len(specs)
    remaining = set(range(len(specs)))
    attempted: set[int] = set()

    def _record(position: int, history: RunHistory) -> None:
        # The one place a finished trial is accounted for, on every path
        # (serial, pool, fallback, salvage).  ``attempted`` is marked before
        # on_result so a hook that raises mid-call (e.g. cache disk full) is
        # never re-invoked for the same trial by the salvage pass.
        attempted.add(position)
        if on_result is not None:
            on_result(specs[position], history)
        histories[position] = history
        remaining.discard(position)

    def _serial() -> list[RunHistory]:
        for position in sorted(remaining):
            _record(position, run_trial(specs[position]))
        return histories

    if workers <= 1 or len(specs) <= 1:
        return _serial()

    def _serial_remaining(exc: BaseException) -> list[RunHistory]:
        warnings.warn(
            f"parallel trial execution unavailable ({exc!r}); "
            f"running {len(remaining)} remaining trial(s) serially",
            RuntimeWarning,
            stacklevel=3,
        )
        return _serial()

    # submit() returns before the spec is pickled (serialisation happens in
    # the executor's feeder thread), so an unpicklable spec cannot be caught
    # around submit — it would surface later from future.result() and fail
    # the whole batch.  Pre-validate the worker payload instead so it
    # degrades to the serial path before any worker starts.  Any pickling
    # failure means the pool is unusable for this batch, hence the broad
    # except.
    try:
        pickle.dumps((run_trial, specs))
    except Exception as exc:
        return _serial_remaining(exc)

    # Only pool-infrastructure failures fall back to the serial path;
    # exceptions raised by trial code (or by on_result) propagate unmasked —
    # catching them here would misreport a genuine failure as "parallelism
    # unavailable" and silently re-execute the whole batch.
    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(specs)))
    except (ImportError, OSError, RuntimeError) as exc:
        # Sandboxed environments without process/semaphore support (missing
        # sem_open raises ImportError): nothing ran in a worker yet.
        return _serial_remaining(exc)
    with pool:
        try:
            futures = {pool.submit(run_trial, spec): position for position, spec in enumerate(specs)}
        except (OSError, RuntimeError) as exc:
            # Worker spawn failure: nothing ran in a worker yet.
            pool.shutdown(cancel_futures=True)
            return _serial_remaining(exc)
        try:
            for future in as_completed(futures):
                position = futures[future]
                try:
                    history = future.result()
                except BrokenProcessPool as exc:
                    # Workers died underneath us (OOM, killed):
                    # infrastructure, not the trial; finish the incomplete
                    # positions in-process.
                    return _serial_remaining(exc)
                _record(position, history)
        except (KeyboardInterrupt, SystemExit):
            # Interrupts must exit promptly — don't wait out in-flight
            # trials (potentially a full trial duration) or run the salvage
            # pass, which a second Ctrl-C would land in.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        except BaseException:
            # A trial (or on_result) failed.  Without this, the `with pool`
            # exit would silently run every still-queued trial to completion
            # before the exception reached the caller — and drop those
            # results on the floor.  Cancel the queue, wait only for the
            # in-flight trials, and persist whatever did finish so the
            # "interrupted runs keep completed trials" promise holds.
            pool.shutdown(wait=True, cancel_futures=True)
            for future, position in futures.items():
                # attempted covers every recorded position (it is marked
                # before remaining is discarded), including hook-raised ones.
                if position in attempted or not future.done() or future.cancelled():
                    continue
                try:
                    _record(position, future.result())
                except Exception:
                    # Another failed trial, or a failing on_result: the
                    # original exception is the one to report.
                    continue
            raise
    return histories
