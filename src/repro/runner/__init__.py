"""Experiment execution engine.

One orchestration path for every experiment grid in the reproduction:

* :mod:`repro.runner.spec` — frozen, content-hashed trial descriptions;
* :mod:`repro.runner.cache` — content-addressed on-disk result cache;
* :mod:`repro.runner.executor` — the per-trial loop and process-pool
  scheduling with a serial fallback;
* :mod:`repro.runner.engine` — grid expansion, cache-first scheduling and
  aggregation into :class:`~repro.experiments.protocol.FrameworkResult`s.
"""

from repro.runner.spec import CACHE_FORMAT_VERSION, TrialSpec
from repro.runner.cache import ResultCache
from repro.runner.executor import execute_trials, run_trial, run_trial_on_split
from repro.runner.engine import (
    ExecutionConfig,
    GridJob,
    GridReport,
    TrialOutcome,
    expand_jobs,
    last_report,
    nest_results,
    run_experiment_grid,
    run_specs,
)

__all__ = [
    "nest_results",
    "CACHE_FORMAT_VERSION",
    "TrialSpec",
    "ResultCache",
    "execute_trials",
    "run_trial",
    "run_trial_on_split",
    "ExecutionConfig",
    "GridJob",
    "GridReport",
    "TrialOutcome",
    "expand_jobs",
    "last_report",
    "run_experiment_grid",
    "run_specs",
]
