"""Experiment execution engine.

One orchestration path for every experiment grid in the reproduction:

* :mod:`repro.runner.spec` — frozen, content-hashed trial descriptions;
* :mod:`repro.runner.results` — pluggable result persistence behind the
  abstract :class:`ResultStore` protocol: the content-addressed
  pickle-shard blob store (also importable as :mod:`repro.runner.cache`,
  its pre-package name) and the SQLite-indexed store whose
  ``results.sqlite3`` run-history database is queryable via
  :class:`RunHistoryDB` and ``python -m repro.runner.query`` (the query
  CLI is imported lazily — not re-exported here — for the same ``-m``
  double-import reason as the worker);
* :mod:`repro.runner.executor` — the per-trial loop and process-pool
  scheduling with a serial fallback;
* :mod:`repro.runner.brokers` — the pluggable work-queue protocol for
  distributing trials across machines (abstract :class:`Broker` with
  TTL + heartbeat crash recovery and failure logs), with two backends:
  the filesystem spool (dataset-sharded task layout, atomic rename
  leases claimed in batches — also importable as
  :mod:`repro.runner.broker`, its pre-package name) and a WAL-mode
  SQLite queue with transactional claims;
* :mod:`repro.runner.worker` — the worker daemon
  (``python -m repro.runner.worker``) that leases and executes brokered
  trials anywhere the queue and cache locations are visible (imported
  lazily — not re-exported here — so running it with ``-m`` does not
  double-import the module);
* :mod:`repro.runner.supervisor` — the elastic-fleet supervisor
  (``python -m repro.runner.supervisor``) that spawns and retires worker
  daemons from queue depth and shard backlog (imported lazily for the
  same ``-m`` reason as the worker);
* :mod:`repro.runner.fleet` — the one set of helpers for anything that
  spawns fleet processes: :func:`subprocess_env` (child interpreters
  resolve ``repro`` like the parent), :func:`fleet_paths` and the
  :func:`worker_command` / :func:`supervisor_command` builders shared by
  the supervisor, the examples and the serving smoke tests;
* :mod:`repro.runner.engine` — grid expansion, cache-first scheduling
  (local, process-pool or distributed) and aggregation into
  :class:`~repro.experiments.protocol.FrameworkResult`s.

See ``docs/architecture.md`` for the module map and the distributed
protocol, and ``docs/adding_experiments.md`` for how to add a grid.
"""

from repro.runner.spec import CACHE_FORMAT_VERSION, TrialSpec
from repro.runner.results import (
    RESULT_STORE_BACKENDS,
    TRIAL_METRICS,
    IndexedResultStore,
    ResultCache,
    ResultStore,
    RunHistoryDB,
    create_result_store,
)
from repro.runner.brokers import (
    BROKER_BACKENDS,
    DEFAULT_CLAIM_BATCH,
    DEFAULT_LEASE_TTL,
    SHARD_POLICIES,
    Broker,
    BrokerTimeout,
    LeasedTrial,
    RemoteTrialError,
    SpoolBroker,
    SpoolStats,
    SpoolTimeout,
    SqliteBroker,
    SqliteStats,
    create_broker,
)
from repro.runner.executor import execute_trials, run_trial, run_trial_on_split
from repro.runner.fleet import (
    fleet_paths,
    subprocess_env,
    supervisor_command,
    worker_command,
)
from repro.runner.engine import (
    ExecutionConfig,
    GridJob,
    GridReport,
    TrialOutcome,
    expand_jobs,
    last_report,
    nest_results,
    run_experiment_grid,
    run_specs,
)

__all__ = [
    "nest_results",
    "BROKER_BACKENDS",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CLAIM_BATCH",
    "DEFAULT_LEASE_TTL",
    "RESULT_STORE_BACKENDS",
    "SHARD_POLICIES",
    "TRIAL_METRICS",
    "TrialSpec",
    "IndexedResultStore",
    "ResultCache",
    "ResultStore",
    "RunHistoryDB",
    "create_result_store",
    "Broker",
    "BrokerTimeout",
    "LeasedTrial",
    "RemoteTrialError",
    "SpoolBroker",
    "SpoolStats",
    "SpoolTimeout",
    "SqliteBroker",
    "SqliteStats",
    "create_broker",
    "execute_trials",
    "run_trial",
    "run_trial_on_split",
    "fleet_paths",
    "subprocess_env",
    "supervisor_command",
    "worker_command",
    "ExecutionConfig",
    "GridJob",
    "GridReport",
    "TrialOutcome",
    "expand_jobs",
    "last_report",
    "run_experiment_grid",
    "run_specs",
]
