"""Elastic worker-fleet supervisor: scale worker daemons to the queue.

PRs 4–5 made workers stateless and interchangeable — all coordination lives
in the broker's lease protocol — so *how many* workers exist at any moment
is pure policy.  The supervisor is that policy as a process::

    python -m repro.runner.supervisor --spool /shared/spool \\
        --cache-dir /shared/cache --max-workers 8

Each control tick it:

1. **reaps** worker subprocesses that exited (self-retired on
   ``--idle-timeout``, finished their ``--max-trials`` budget, or crashed);
2. **polices** the queue with ``release_expired()`` so a crashed worker's
   leases are re-offered after one TTL instead of wedging the grid;
3. reads the scaling signals from :meth:`Broker.backlog
   <repro.runner.brokers.base.Broker.backlog>` — queue depth says how much
   work there is, the number of backlogged shards says how many workers can
   claim concurrently without racing each other under dataset affinity;
4. **spawns** workers up to the target (never beyond ``max_workers``).

Scale-down is *voluntary*: the supervisor never kills a busy worker.
Workers retire themselves via the existing ``--idle-timeout`` /
``--max-trials`` controls, and the supervisor simply reaps them and does
not replace them while the queue is shallow.  That keeps the invariant
that a claimed trial is only ever abandoned by a crash — which the TTL
already handles — never by fleet policy.

Lifecycle:

* **drain** (``--drain``): exit once the queue is empty, every lease is
  resolved and every worker has retired — "finish the backlog, then go
  away" for batch fleets and CI smokes.
* **graceful shutdown**: on SIGINT/SIGTERM the supervisor forwards SIGINT
  to every live worker (their shutdown handler re-offers all held leases
  immediately — no TTL wait), waits a grace period, and terminates
  stragglers.

The supervisor talks only to the :class:`~repro.runner.brokers.Broker`
protocol, so it supervises spool- and SQLite-backed fleets identically
(``--broker``/``REPRO_BROKER`` selects, exactly as for the worker).
"""

from __future__ import annotations

import argparse
import math
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Mapping, Protocol

from repro.runner.brokers import (
    BROKER_BACKENDS,
    DEFAULT_CLAIM_BATCH,
    DEFAULT_LEASE_TTL,
    Broker,
    SqliteBroker,
    create_broker,
)
from repro.runner.fleet import subprocess_env, worker_command
from repro.runner.results import RESULT_STORE_BACKENDS

#: Default seconds of emptiness after which a spawned worker retires itself
#: (the supervisor's scale-*down* mechanism — see module docstring).
DEFAULT_WORKER_IDLE_TIMEOUT = 5.0

#: Default pending-trials-per-worker ratio the fleet is sized by.
DEFAULT_TASKS_PER_WORKER = DEFAULT_CLAIM_BATCH

#: Default hard cap on concurrently live workers.
DEFAULT_MAX_WORKERS = 4


class WorkerHandle(Protocol):
    """What the supervisor needs from a spawned worker process.

    ``subprocess.Popen`` satisfies it; tests inject lighter fakes.
    """

    def poll(self) -> int | None:
        """Exit code if the worker has exited, else ``None``."""

    def wait(self, timeout: float | None = None) -> int:
        """Block until exit (raises ``subprocess.TimeoutExpired`` on timeout)."""

    def send_signal(self, sig: int) -> None:
        """Deliver *sig* to the worker (no-op if already exited)."""

    def terminate(self) -> None:
        """Forcibly stop the worker."""


class Supervisor:
    """Spawn and retire ``python -m repro.runner.worker`` daemons to fit the queue.

    Parameters
    ----------
    spool:
        Shared broker location (the workers' ``--spool``).
    cache_dir:
        Shared result-cache root (the workers' ``--cache-dir``).
    broker:
        Backend name (``"spool"`` / ``"sqlite"``) or a ready-made
        :class:`Broker` instance to read scaling signals from; the name is
        also forwarded to spawned workers as ``--broker``.
    results:
        Result-store backend name (``"pickle"`` / ``"indexed"``) forwarded
        to spawned workers as ``--results`` — with ``"indexed"`` every
        worker additionally indexes its published results into the shared
        cache's ``results.sqlite3`` run-history database.
    min_workers:
        Floor of live workers while supervising (default 0 — a drained
        queue costs no processes).
    max_workers:
        Hard cap of concurrently live workers.
    tasks_per_worker:
        Fleet sizing ratio: one worker per this many pending trials
        (rounded up), bounded below by the number of backlogged shards so
        a wide queue gets one claimant per shard even when shallow.
    worker_idle_timeout:
        Seconds of emptiness after which a spawned worker retires itself —
        the scale-down knob (forwarded as ``--idle-timeout``).
    worker_max_trials:
        Optional per-worker trial budget (forwarded as ``--max-trials``);
        ``None`` leaves workers unbounded.
    claim_batch:
        Forwarded as ``--claim-batch``.
    lease_ttl:
        Lease TTL for both the policing sweep and the spawned workers.
    poll_interval:
        Seconds between control ticks in :meth:`run`.
    spawn:
        Injectable worker factory ``spawn(worker_id) -> WorkerHandle``;
        defaults to launching the real worker daemon as a subprocess.
        Tests use fakes (and in-thread workers) here.
    quiet:
        Suppress the supervisor's own stderr lines and pass ``--quiet`` to
        spawned workers.
    """

    def __init__(
        self,
        spool: str | Path,
        cache_dir: str | Path,
        broker: str | Broker = "spool",
        results: str = "pickle",
        min_workers: int = 0,
        max_workers: int = DEFAULT_MAX_WORKERS,
        tasks_per_worker: int = DEFAULT_TASKS_PER_WORKER,
        worker_idle_timeout: float = DEFAULT_WORKER_IDLE_TIMEOUT,
        worker_max_trials: int | None = None,
        claim_batch: int = DEFAULT_CLAIM_BATCH,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll_interval: float = 0.5,
        spawn: Callable[[str], WorkerHandle] | None = None,
        quiet: bool = False,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if min_workers < 0 or min_workers > max_workers:
            raise ValueError("need 0 <= min_workers <= max_workers")
        if tasks_per_worker < 1:
            raise ValueError("tasks_per_worker must be at least 1")
        if results not in RESULT_STORE_BACKENDS:
            raise ValueError(
                f"results backend must be one of {RESULT_STORE_BACKENDS}, "
                f"got {results!r}"
            )
        self.spool = str(spool)
        self.results = results
        self.cache_dir = str(cache_dir)
        if isinstance(broker, str):
            self.backend = broker
            self.broker = create_broker(broker, spool, lease_ttl=lease_ttl)
        else:
            self.backend = "sqlite" if isinstance(broker, SqliteBroker) else "spool"
            self.broker = broker
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.tasks_per_worker = tasks_per_worker
        self.worker_idle_timeout = worker_idle_timeout
        self.worker_max_trials = worker_max_trials
        self.claim_batch = claim_batch
        self.lease_ttl = float(lease_ttl)
        self.poll_interval = poll_interval
        self.quiet = quiet
        self._spawn = spawn or self._spawn_subprocess
        self._workers: dict[str, WorkerHandle] = {}
        self._spawned_total = 0
        self._reaped: dict[str, int] = {}

    # -- observability ----------------------------------------------------

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[supervisor] {message}", file=sys.stderr, flush=True)

    @property
    def workers(self) -> Mapping[str, WorkerHandle]:
        """Live workers by id (spawned and not yet reaped)."""
        return dict(self._workers)

    @property
    def spawned_total(self) -> int:
        """Workers spawned over this supervisor's lifetime."""
        return self._spawned_total

    @property
    def reaped(self) -> Mapping[str, int]:
        """Exit codes of reaped workers by id."""
        return dict(self._reaped)

    # -- the control loop -------------------------------------------------

    def _spawn_subprocess(self, worker_id: str) -> WorkerHandle:
        command = worker_command(
            self.spool,
            self.cache_dir,
            broker=self.backend,
            results=self.results,
            lease_ttl=self.lease_ttl,
            claim_batch=self.claim_batch,
            idle_timeout=self.worker_idle_timeout,
            max_trials=self.worker_max_trials,
            worker_id=worker_id,
            quiet=self.quiet,
        )
        # Spawned workers must resolve `repro` the same way this process
        # did, even when it was launched via PYTHONPATH=src.
        return subprocess.Popen(command, env=subprocess_env())

    def target_workers(self, backlog: Mapping[str, int]) -> int:
        """Fleet size for a :meth:`Broker.backlog` reading.

        One worker per ``tasks_per_worker`` pending trials (rounded up),
        raised to one per backlogged shard (a wide-but-shallow queue still
        gets a claimant per shard, which is what dataset affinity can use),
        clamped into ``[min_workers, max_workers]``.  With no pending work
        the target is ``min_workers`` — outstanding leases belong to
        already-live workers and need no reinforcements.
        """
        tasks = backlog.get("tasks", 0)
        shards = backlog.get("shards", 0)
        if tasks <= 0:
            return self.min_workers
        by_depth = math.ceil(tasks / self.tasks_per_worker)
        return max(self.min_workers, min(self.max_workers, max(by_depth, shards)))

    def step(self) -> dict[str, int]:
        """One control tick: reap, police, size, spawn.  Returns a summary.

        The summary maps ``reaped`` / ``released`` / ``spawned`` (this
        tick's actions), ``live`` (workers after the tick) and ``target``
        (the size the tick aimed for) to their counts — what the tests and
        the drain loop observe.
        """
        reaped = 0
        for worker_id, handle in list(self._workers.items()):
            code = handle.poll()
            if code is not None:
                del self._workers[worker_id]
                self._reaped[worker_id] = code
                reaped += 1
                self._log(f"reaped {worker_id} (exit {code})")
        # Crashed-worker recovery: a worker that died without releasing
        # leaves leases to age out; one sweep per tick re-offers them.
        released = self.broker.release_expired()
        if released:
            self._log(f"re-offered {released} expired lease(s)")
        backlog = self.broker.backlog()
        target = self.target_workers(backlog)
        spawned = 0
        while len(self._workers) < target:
            worker_id = f"supervised-{os.getpid()}-{self._spawned_total}"
            self._workers[worker_id] = self._spawn(worker_id)
            self._spawned_total += 1
            spawned += 1
            self._log(
                f"spawned {worker_id} "
                f"({backlog['tasks']} pending / {backlog['shards']} shard(s))"
            )
        return {
            "reaped": reaped,
            "released": released,
            "spawned": spawned,
            "live": len(self._workers),
            "target": target,
        }

    def drained(self) -> bool:
        """Whether the queue is empty, lease-free and the fleet has retired."""
        if self._workers:
            return False
        counts = self.broker.counts()
        return counts["tasks"] == 0 and counts["leases"] == 0

    def run(self, drain: bool = False, max_ticks: int | None = None) -> int:
        """Supervise until interrupted (or, with *drain*, until work is done).

        Returns the number of workers spawned over the run.  *max_ticks*
        bounds the loop for tests; ``None`` loops until drained (drain
        mode) or forever (service mode, until :class:`KeyboardInterrupt`
        triggers :meth:`shutdown`).
        """
        ticks = 0
        try:
            while True:
                self.step()
                ticks += 1
                if drain and self.drained():
                    self._log("drained: queue empty and fleet retired")
                    break
                if max_ticks is not None and ticks >= max_ticks:
                    break
                time.sleep(self.poll_interval)
        except (KeyboardInterrupt, SystemExit):
            self._log("interrupted: shutting fleet down")
            self.shutdown()
            raise
        return self._spawned_total

    def shutdown(self, grace: float = 10.0) -> None:
        """Stop the fleet: SIGINT every worker, wait *grace*, terminate the rest.

        SIGINT first because the worker's interrupt path re-offers every
        held lease immediately — a terminated worker's leases would instead
        sit out a full TTL before any submitter could re-offer them.
        """
        for worker_id, handle in self._workers.items():
            try:
                handle.send_signal(signal.SIGINT)
            except OSError:
                pass
            self._log(f"sent SIGINT to {worker_id}")
        deadline = time.monotonic() + grace
        for worker_id, handle in list(self._workers.items()):
            remaining = max(0.0, deadline - time.monotonic())
            try:
                code = handle.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                self._log(f"terminating {worker_id} (grace period expired)")
                handle.terminate()
                code = handle.wait(timeout=5.0)
            del self._workers[worker_id]
            self._reaped[worker_id] = code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.runner.supervisor``); returns exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.supervisor",
        description="Autoscale repro worker daemons against a shared trial queue.",
    )
    parser.add_argument(
        "--spool",
        required=True,
        help="shared broker location (spool directory, or the directory the "
        "sqlite backend keeps its database in)",
    )
    parser.add_argument(
        "--cache-dir", required=True, help="shared trial-result cache directory"
    )
    parser.add_argument(
        "--broker",
        choices=BROKER_BACKENDS,
        default=os.environ.get("REPRO_BROKER", "spool"),
        help="broker backend (env REPRO_BROKER; default spool)",
    )
    parser.add_argument(
        "--results",
        choices=RESULT_STORE_BACKENDS,
        default=os.environ.get("REPRO_RESULTS", "pickle"),
        help="result-store backend forwarded to spawned workers "
        "(env REPRO_RESULTS; default pickle)",
    )
    parser.add_argument(
        "--min-workers",
        type=int,
        default=0,
        help="keep at least this many workers alive (default 0)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=DEFAULT_MAX_WORKERS,
        help=f"never exceed this many live workers (default {DEFAULT_MAX_WORKERS})",
    )
    parser.add_argument(
        "--tasks-per-worker",
        type=int,
        default=DEFAULT_TASKS_PER_WORKER,
        help="size the fleet at one worker per this many pending trials "
        f"(default {DEFAULT_TASKS_PER_WORKER})",
    )
    parser.add_argument(
        "--worker-idle-timeout",
        type=float,
        default=DEFAULT_WORKER_IDLE_TIMEOUT,
        help="workers retire after this many idle seconds — the scale-down "
        f"knob (default {DEFAULT_WORKER_IDLE_TIMEOUT:g})",
    )
    parser.add_argument(
        "--worker-max-trials",
        type=int,
        default=None,
        help="per-worker trial budget (default: unbounded)",
    )
    parser.add_argument(
        "--claim-batch",
        type=int,
        default=int(os.environ.get("REPRO_CLAIM_BATCH", DEFAULT_CLAIM_BATCH)),
        help="tasks each worker claims per queue scan (env REPRO_CLAIM_BATCH)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        help="lease time-to-live in seconds (must match the submitter's)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="seconds between control ticks (default 0.5)",
    )
    parser.add_argument(
        "--drain",
        action="store_true",
        help="exit once the queue is empty and every worker has retired",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress supervisor and worker logs"
    )
    args = parser.parse_args(argv)
    supervisor = Supervisor(
        args.spool,
        args.cache_dir,
        broker=args.broker,
        results=args.results,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
        tasks_per_worker=args.tasks_per_worker,
        worker_idle_timeout=args.worker_idle_timeout,
        worker_max_trials=args.worker_max_trials,
        claim_batch=args.claim_batch,
        lease_ttl=args.lease_ttl,
        poll_interval=args.interval,
        quiet=args.quiet,
    )
    try:
        supervisor.run(drain=args.drain)
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
