"""The experiment engine: grid expansion, scheduling, caching, aggregation.

Every experiment in :mod:`repro.experiments` is some grid of trials —
frameworks x datasets x seeds, ablation variants x datasets x seeds, and so
on.  The engine gives them one orchestration path:

1. express the grid as :class:`GridJob`s (one job = one aggregated result
   cell, e.g. "ActiveDP on youtube");
2. :func:`expand_jobs` derives the per-seed :class:`TrialSpec` list with
   deterministic :func:`~repro.utils.rng.spawn_seeds` seeding;
3. :func:`run_specs` serves cached trials from the configured
   :class:`~repro.runner.results.base.ResultStore` backend (the
   content-addressed pickle-shard cache, or the SQLite-indexed store —
   ``ExecutionConfig.results``) and schedules the rest through
   :func:`~repro.runner.executor.execute_trials` (process-pool parallel
   across the *whole* grid, not per cell) — or, with
   ``ExecutionConfig(mode="distributed", ...)``, enqueues them on the
   configured :class:`~repro.runner.brokers.Broker` backend (filesystem
   spool or SQLite) for independently started worker daemons and polls
   the shared cache for completion;
4. :func:`run_experiment_grid` folds the histories back into
   :class:`~repro.experiments.protocol.FrameworkResult`s per job.

Because trials are self-contained and deterministically seeded, results are
identical for any worker count, any cache temperature, and any placement of
the workers (local pool or remote machines).
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Hashable, Sequence

from repro.core.results import RunHistory
from repro.runner.brokers import (
    BROKER_BACKENDS,
    DEFAULT_CLAIM_BATCH,
    DEFAULT_LEASE_TTL,
    SHARD_POLICIES,
    Broker,
    create_broker,
)
from repro.runner.executor import execute_trials
from repro.runner.results import (
    RESULT_STORE_BACKENDS,
    ResultStore,
    create_result_store,
)
from repro.runner.spec import TrialSpec
from repro.utils.rng import spawn_seeds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # Annotation-only: a runtime import would make `import repro.runner`
    # circular through repro/experiments/__init__.py (see test_imports.py).
    from repro.experiments.protocol import EvaluationProtocol, FrameworkResult


class _BrokerChoice(str):
    """An :attr:`ExecutionConfig.broker` value: a backend name you can call.

    Compares and reprs as the plain backend string (``config.broker ==
    "sqlite"``) while staying callable — ``config.broker()`` builds the
    configured backend, which is what every pre-package call site of the
    former ``ExecutionConfig.broker()`` method expects.
    """

    _config: ExecutionConfig

    def __new__(cls, value: str, config: ExecutionConfig | None = None):
        """Wrap backend name *value*, remembering *config* for :meth:`__call__`."""
        choice = str.__new__(cls, value)
        choice._config = config
        return choice

    def __call__(self) -> Broker:
        """Build the configured broker backend (see
        :meth:`ExecutionConfig.create_broker`)."""
        return self._config.create_broker()


@dataclass(frozen=True)
class ExecutionConfig:
    """How a grid is executed: parallelism, result caching, distribution.

    Attributes
    ----------
    workers:
        Process-pool size for local execution; ``1`` (default) runs
        serially, ``0`` uses all cores (capped).  Ignored when
        ``mode="distributed"`` — remote worker processes decide their own
        parallelism.
    cache_dir:
        Root of the content-addressed result cache; ``None`` disables
        caching entirely.  Distributed execution *requires* a cache: it is
        the channel results travel back through.
    results:
        Result-store backend over ``cache_dir``: ``"pickle"`` (default,
        the plain blob store) or ``"indexed"`` (blobs plus the queryable
        ``results.sqlite3`` run-history index — blob bytes are identical
        either way).  Match the workers' ``--results``.
    use_cache:
        Master switch; ``False`` ignores ``cache_dir`` (the ``--no-cache``
        knob).
    mode:
        ``"local"`` (default) executes trials in this process or its
        process pool; ``"distributed"`` enqueues them on the configured
        broker backend for independently started ``python -m
        repro.runner.worker`` daemons and polls the cache for completion.
    broker:
        Broker backend for ``mode="distributed"``: ``"spool"`` (default,
        the filesystem spool) or ``"sqlite"`` (one WAL-mode database file
        under ``spool_dir``).  The stored value is callable —
        ``config.broker()`` builds the backend instance.  Match the
        workers' ``--broker``.
    spool_dir:
        Shared broker location for ``mode="distributed"`` (the workers'
        ``--spool``): the spool backend uses the directory itself, the
        SQLite backend keeps ``broker.sqlite3`` inside it.
    lease_ttl:
        Seconds without a worker heartbeat before the submitter re-offers
        a claimed trial (crash recovery).  Match the workers'
        ``--lease-ttl``.
    wait_timeout:
        Give up (``SpoolTimeout``) after this many seconds with trials
        still outstanding; ``None`` waits forever.
    shard_by:
        Spool-shard policy for ``mode="distributed"`` enqueues:
        ``"dataset"`` (default) files each trial under its dataset's shard
        so workers keep generated corpora warm, ``"hash"`` spreads by key
        prefix, ``"none"`` writes the legacy flat layout.  Workers drain
        every layout regardless.
    claim_batch:
        Tasks a worker claims per spool scan (the workers' ``--claim-batch``;
        the submitter never claims, so this knob only matters to helpers
        that spawn workers from this config, e.g.
        ``examples/distributed_grid.py``).
    """

    workers: int = 1
    cache_dir: str | Path | None = None
    results: str = "pickle"
    use_cache: bool = True
    mode: str = "local"
    broker: str = "spool"
    spool_dir: str | Path | None = None
    lease_ttl: float = DEFAULT_LEASE_TTL
    wait_timeout: float | None = None
    shard_by: str = "dataset"
    claim_batch: int = DEFAULT_CLAIM_BATCH

    def __post_init__(self):
        if self.mode not in ("local", "distributed"):
            raise ValueError(
                f"mode must be 'local' or 'distributed', got {self.mode!r}"
            )
        if self.broker not in BROKER_BACKENDS:
            raise ValueError(
                f"broker must be one of {BROKER_BACKENDS}, got {self.broker!r}"
            )
        # The field doubles as the backend factory: still a string (so
        # `config.broker == "sqlite"` and repr stay plain), but calling it
        # builds the backend — the pre-package `config.broker()` contract.
        object.__setattr__(self, "broker", _BrokerChoice(str(self.broker), self))
        if self.results not in RESULT_STORE_BACKENDS:
            raise ValueError(
                f"results must be one of {RESULT_STORE_BACKENDS}, "
                f"got {self.results!r}"
            )
        if self.shard_by not in SHARD_POLICIES:
            raise ValueError(
                f"shard_by must be one of {SHARD_POLICIES}, got {self.shard_by!r}"
            )
        if self.claim_batch < 1:
            raise ValueError("claim_batch must be at least 1")
        if self.mode == "distributed":
            if self.spool_dir is None:
                raise ValueError(
                    "distributed execution needs a spool_dir (the shared "
                    "directory workers poll; set REPRO_SPOOL_DIR when using "
                    'the execution="distributed" shorthand)'
                )
            if self.cache() is None:
                raise ValueError(
                    "distributed execution needs an enabled cache_dir — the "
                    "shared cache is how worker results reach the submitter "
                    '(set REPRO_CACHE_DIR when using the execution='
                    '"distributed" shorthand)'
                )

    @classmethod
    def coerce(cls, value: ExecutionConfig | str | None) -> ExecutionConfig:
        """Normalise the ``execution`` argument every engine entry point takes.

        ``None`` means the serial default; an :class:`ExecutionConfig`
        passes through; a string names a preset — ``"serial"``,
        ``"parallel"`` (all cores) or ``"distributed"`` (spool/cache
        directories from the ``REPRO_SPOOL_DIR`` / ``REPRO_CACHE_DIR``
        environment variables, the broker backend from ``REPRO_BROKER``,
        the result-store backend from ``REPRO_RESULTS``, spool sharding
        and worker batch size from ``REPRO_SPOOL_SHARD_BY`` /
        ``REPRO_CLAIM_BATCH``).
        """
        if value is None:
            return cls()
        if isinstance(value, ExecutionConfig):
            return value
        if isinstance(value, str):
            if value == "serial":
                return cls(workers=1)
            if value == "parallel":
                return cls(workers=0)
            if value == "distributed":
                return cls(
                    mode="distributed",
                    broker=os.environ.get("REPRO_BROKER", "spool"),
                    spool_dir=os.environ.get("REPRO_SPOOL_DIR"),
                    cache_dir=os.environ.get("REPRO_CACHE_DIR"),
                    results=os.environ.get("REPRO_RESULTS", "pickle"),
                    shard_by=os.environ.get("REPRO_SPOOL_SHARD_BY", "dataset"),
                    claim_batch=int(
                        os.environ.get("REPRO_CLAIM_BATCH", DEFAULT_CLAIM_BATCH)
                    ),
                )
            raise ValueError(
                f"unknown execution preset {value!r} "
                "(expected 'serial', 'parallel' or 'distributed')"
            )
        raise TypeError(
            f"execution must be an ExecutionConfig, a preset name or None, "
            f"got {type(value).__name__}"
        )

    def cache(self) -> ResultStore | None:
        """The configured result store, or ``None`` when caching is off.

        The backend is the :attr:`results` choice: the plain pickle-shard
        blob store, or the indexed store maintaining ``results.sqlite3``
        alongside the same blobs.
        """
        if self.cache_dir is None or not self.use_cache:
            return None
        return create_result_store(str(self.results), self.cache_dir)

    def create_broker(self) -> Broker:
        """Build the configured broker backend for ``mode="distributed"``.

        Also reachable as ``config.broker()`` — the :attr:`broker` field is
        callable — which is the spelling the pre-package API used.
        """
        if self.spool_dir is None:
            raise ValueError("no spool_dir configured")
        return create_broker(
            str(self.broker),
            self.spool_dir,
            lease_ttl=self.lease_ttl,
            shard_by=self.shard_by,
        )


@dataclass
class TrialOutcome:
    """One executed, cache-served or deduplication-served trial.

    ``deduplicated`` marks positions that shared another pending position's
    content key and received a copy of its single execution's history —
    neither executed themselves nor cache hits (so per-outcome counts line
    up with :class:`GridReport`).
    """

    spec: TrialSpec
    history: RunHistory
    from_cache: bool = False
    deduplicated: bool = False


@dataclass
class GridReport:
    """Execution statistics of the most recent grid run.

    ``n_deduplicated`` counts trial positions that shared another pending
    position's content key and were served from its single execution
    (``n_executed`` counts actual local executions, ``n_remote`` counts
    trials completed by distributed workers, so ``n_executed + n_remote +
    n_cached + n_deduplicated == n_trials`` for a completed run).
    ``n_released`` counts expired leases the submitter re-offered while
    waiting — i.e. how many times crash recovery kicked in (not a trial
    count; one trial can be released more than once).
    """

    n_trials: int = 0
    n_executed: int = 0
    n_cached: int = 0
    n_deduplicated: int = 0
    n_remote: int = 0
    n_released: int = 0

    def __str__(self) -> str:  # pragma: no cover - display helper
        text = (
            f"{self.n_trials} trial(s): {self.n_executed} executed, "
            f"{self.n_cached} from cache"
        )
        if self.n_remote:
            text += f", {self.n_remote} on remote workers"
        if self.n_deduplicated:
            text += f", {self.n_deduplicated} deduplicated"
        if self.n_released:
            text += f" ({self.n_released} expired lease(s) re-offered)"
        return text


_last_report: GridReport | None = None


def last_report() -> GridReport | None:
    """Execution statistics of the most recent :func:`run_specs` call."""
    return _last_report


def run_specs(
    specs: Sequence[TrialSpec], execution: ExecutionConfig | str | None = None
) -> list[TrialOutcome]:
    """Run *specs* (cache-first, then parallel or distributed), in input order.

    *execution* accepts an :class:`ExecutionConfig` or one of the preset
    names understood by :meth:`ExecutionConfig.coerce` (``"serial"``,
    ``"parallel"``, ``"distributed"``).
    """
    global _last_report
    execution = ExecutionConfig.coerce(execution)
    cache = execution.cache()
    specs = list(specs)

    histories: dict[int, RunHistory] = {}
    cached_positions: set[int] = set()
    # Two grid jobs can expand to the same trial (same content key,
    # different presentation group); execute it once and fan the history
    # back out to every position — running it twice would waste the work
    # and race two cache writes on one entry.
    pending_specs: list[TrialSpec] = []
    pending_positions: dict[str, list[int]] = {}
    for position, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            histories[position] = hit
            cached_positions.add(position)
        else:
            positions = pending_positions.setdefault(spec.key, [])
            if not positions:
                pending_specs.append(spec)
            positions.append(position)
    # Persist each trial the moment it finishes: an interrupted grid run
    # keeps everything completed so far.  The report is written in a
    # ``finally`` with the *actual* completion counts, so after a failed grid
    # last_report() describes the interrupted run, not the previous one —
    # twin positions are only served after the whole batch returns, so an
    # interrupted run reports zero deduplicated trials.
    n_executed = 0
    n_deduplicated = 0
    n_remote = 0
    n_released = 0

    def _on_executed(spec: TrialSpec, history: RunHistory) -> None:
        nonlocal n_executed
        n_executed += 1
        if cache is not None:
            cache.put(spec, history)

    def _on_remote(spec: TrialSpec, history: RunHistory) -> None:
        # The worker already wrote the history through the shared cache —
        # completion *is* the cache write — so only the count is local work.
        nonlocal n_remote
        n_remote += 1

    def _on_released(count: int) -> None:
        nonlocal n_released
        n_released += count

    try:
        if execution.mode == "distributed":
            broker = execution.broker()
            # One batched submission: the backend snapshots its pending and
            # leased sets (or opens its transaction) once for the whole
            # grid instead of paying per-task round trips.
            broker.enqueue_batch(pending_specs)
            by_key = broker.wait(
                pending_specs,
                cache,
                timeout=execution.wait_timeout,
                on_result=_on_remote,
                on_released=_on_released,
            )
            executed = [by_key[spec.key] for spec in pending_specs]
        else:
            executed = execute_trials(
                pending_specs, workers=execution.workers, on_result=_on_executed
            )
        n_deduplicated = sum(len(p) - 1 for p in pending_positions.values())
    finally:
        _last_report = GridReport(
            n_trials=len(specs),
            n_executed=n_executed,
            n_cached=len(cached_positions),
            n_deduplicated=n_deduplicated,
            n_remote=n_remote,
            n_released=n_released,
        )
    deduplicated_positions: set[int] = set()
    for spec, history in zip(pending_specs, executed):
        positions = pending_positions[spec.key]
        histories[positions[0]] = history
        for position in positions[1:]:
            # Deep-copied so callers mutating one outcome's history (or
            # pickling it) never observe sharing with its twin.
            histories[position] = copy.deepcopy(history)
            deduplicated_positions.add(position)
    return [
        TrialOutcome(
            spec=spec,
            history=histories[position],
            from_cache=position in cached_positions,
            deduplicated=position in deduplicated_positions,
        )
        for position, spec in enumerate(specs)
    ]


@dataclass(frozen=True, eq=False)
class GridJob:
    """One aggregated cell of an experiment grid.

    Attributes
    ----------
    key:
        Hashable label the caller uses to find the cell's
        :class:`FrameworkResult` in the engine's output (e.g.
        ``(variant, dataset)``).
    framework:
        Pipeline registry name executed for this cell.
    dataset:
        Dataset registry name.
    pipeline_kwargs:
        Extra pipeline constructor arguments for this cell.
    """

    key: Hashable
    framework: str
    dataset: str
    pipeline_kwargs: dict | None = None


def expand_jobs(
    jobs: Sequence[GridJob], protocol: EvaluationProtocol
) -> list[tuple[GridJob, TrialSpec]]:
    """Expand jobs into per-seed trial specs with deterministic seeding."""
    seeds = spawn_seeds(protocol.base_seed, protocol.n_seeds)
    expanded: list[tuple[GridJob, TrialSpec]] = []
    for job in jobs:
        for seed in seeds:
            expanded.append(
                (
                    job,
                    TrialSpec(
                        framework=job.framework,
                        dataset=job.dataset,
                        seed=seed,
                        protocol=protocol,
                        pipeline_kwargs=job.pipeline_kwargs,
                        group=str(job.key),
                    ),
                )
            )
    return expanded


def run_experiment_grid(
    jobs: Sequence[GridJob],
    protocol: EvaluationProtocol | None = None,
    execution: ExecutionConfig | str | None = None,
) -> dict[Hashable, FrameworkResult]:
    """Run a whole experiment grid and aggregate per-job results.

    The flat trial list of *all* jobs is scheduled at once, so the process
    pool (or the worker fleet, with ``execution="distributed"`` /
    ``ExecutionConfig(mode="distributed", ...)``) stays busy across cells
    instead of draining per cell.
    """
    # Imported lazily: this module must stay importable without triggering
    # repro/experiments/__init__.py (which imports the engine back).
    from repro.experiments.protocol import EvaluationProtocol, summarize_histories

    protocol = protocol or EvaluationProtocol()
    keys = [job.key for job in jobs]
    if len(keys) != len(set(keys)):
        raise ValueError("grid jobs must have unique keys")
    expanded = expand_jobs(jobs, protocol)
    outcomes = run_specs([spec for _, spec in expanded], execution)

    histories: dict[GridJob, list[RunHistory]] = {}
    for (job, _), outcome in zip(expanded, outcomes):
        histories.setdefault(job, []).append(outcome.history)

    results: dict[Hashable, FrameworkResult] = {}
    for job in jobs:
        results[job.key] = summarize_histories(
            job.framework, job.dataset, histories.get(job, [])
        )
    return results


def nest_results(
    per_key: dict[Hashable, FrameworkResult]
) -> dict[Hashable, dict[Hashable, FrameworkResult]]:
    """Regroup ``{(outer, inner): result}`` into ``{outer: {inner: result}}``.

    The experiment drivers key their grid jobs by ``(variant, dataset)``-style
    pairs; this folds the engine's flat result dict into their nested return
    shape, preserving insertion order on both levels.
    """
    nested: dict[Hashable, dict[Hashable, FrameworkResult]] = {}
    for (outer, inner), result in per_key.items():
        nested.setdefault(outer, {})[inner] = result
    return nested
