"""Pluggable trial-distribution backends behind one :class:`Broker` protocol.

The package splits the former ``repro.runner.broker`` module into:

* :mod:`~repro.runner.brokers.base` — the abstract :class:`Broker`
  protocol (enqueue / lease / heartbeat / complete / release / expire /
  fail / counts / stats) plus the generic submitter polling loop;
* :mod:`~repro.runner.brokers.spool` — the filesystem spool, the
  reference implementation (atomic renames over a shared directory);
* :mod:`~repro.runner.brokers.sqlite` — one WAL-mode SQLite file with
  transactional claims, for hosts where shared-filesystem rename
  contention is the bottleneck.

Backends are selected by name through :func:`create_broker` (the string
comes from ``ExecutionConfig.broker``, the ``REPRO_BROKER`` environment
variable, or a ``--broker`` flag); everything above the broker — the
engine, the worker daemon, the supervisor — talks only to the protocol.
``repro.runner.broker`` remains importable and *is* the spool module, so
pre-split imports and monkeypatches keep working unchanged.
"""

from __future__ import annotations

from pathlib import Path

from repro.runner.brokers.base import (
    DEFAULT_CLAIM_BATCH,
    DEFAULT_LEASE_TTL,
    SHARD_POLICIES,
    Broker,
    BrokerTimeout,
    LeasedTrial,
    RemoteTrialError,
    SpoolTimeout,
)
from repro.runner.brokers.spool import SpoolBroker, SpoolStats
from repro.runner.brokers.sqlite import SqliteBroker, SqliteLease, SqliteStats

__all__ = [
    "BROKER_BACKENDS",
    "Broker",
    "BrokerTimeout",
    "DEFAULT_CLAIM_BATCH",
    "DEFAULT_LEASE_TTL",
    "LeasedTrial",
    "RemoteTrialError",
    "SHARD_POLICIES",
    "SpoolBroker",
    "SpoolStats",
    "SpoolTimeout",
    "SqliteBroker",
    "SqliteLease",
    "SqliteStats",
    "create_broker",
]

#: Recognised ``broker=`` backend names, in preference order for docs and
#: validation messages.  ``"spool"`` is the default everywhere.
BROKER_BACKENDS = ("spool", "sqlite")


def create_broker(
    backend: str,
    location: str | Path,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    shard_by: str = "dataset",
    scan_order: str = "random",
) -> Broker:
    """Build a broker backend by name over a shared *location*.

    *location* is the one path both backends understand: the spool uses the
    directory itself, the SQLite backend puts ``broker.sqlite3`` inside it
    (or uses *location* directly when it already names a ``.sqlite3`` /
    ``.db`` file) — so a submitter, its workers and the supervisor can all
    be pointed at the same ``--spool`` path regardless of backend.

    Raises :class:`ValueError` for an unknown *backend* name; the remaining
    parameters are validated by the backend constructors.
    """
    if backend == "spool":
        return SpoolBroker(
            location, lease_ttl=lease_ttl, shard_by=shard_by, scan_order=scan_order
        )
    if backend == "sqlite":
        return SqliteBroker(
            location, lease_ttl=lease_ttl, shard_by=shard_by, scan_order=scan_order
        )
    raise ValueError(
        f"broker backend must be one of {BROKER_BACKENDS}, got {backend!r}"
    )
