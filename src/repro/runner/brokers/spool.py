"""Filesystem-spool broker: the reference :class:`Broker` implementation.

The spool turns a shared directory (NFS mount, bind mount, plain local
directory) into a work queue for :class:`~repro.runner.spec.TrialSpec`s.  No
server process is involved; every operation is a single atomic filesystem
rename, so any number of submitters and workers can share one spool.

Spool layout::

    <spool>/
        tasks/<shard>/<key>.task              pending trials (pickled
                                              TrialSpec, atomic write),
                                              sharded by dataset (default)
                                              or by key prefix
        tasks/<key>.task                      legacy unsharded pending
                                              trials (still drained; see
                                              "sharding" below)
        tasks/.../<key>.task.corrupt          quarantined unreadable tasks
        leases/<key>[.<shard>].<worker>.<token>.lease
                                              claimed trials (mtime =
                                              worker heartbeat; the shard
                                              component records the task's
                                              home so releases restore it)
        failed/<key>.json                     failure logs ({key, worker,
                                              error, traceback})

Protocol mapping (see :mod:`repro.runner.brokers.base` for the contract):

* **enqueue** — the submitter writes one ``tasks/<shard>/<key>.task`` file
  per pending trial (tempfile + ``os.replace``).  The file name *is* the
  trial's content key, so two submitters enqueueing the same trial write the
  same (identical) file and the trial runs once.
  :meth:`SpoolBroker.enqueue_batch` snapshots the pending and leased key
  sets **once** for a whole grid, so submitting N trials costs a constant
  number of listings instead of N cross-shard existence probes.
* **lease** — a worker claims a task by renaming it into ``leases/`` under a
  claim name unique to this worker and claim.  ``os.rename`` is atomic on
  the *source*, so exactly one of any number of racing workers wins; the
  losers see ``FileNotFoundError`` and move on to the next candidate.
  :meth:`SpoolBroker.lease_batch` claims up to *n* tasks from a **single**
  shard listing, amortising the directory scan over the whole batch, and
  scans shards and tasks in randomised order (sticking to the previously
  fruitful shard first — dataset affinity) so racing workers spread out
  instead of piling onto one sorted listing.  Because the claim name encodes
  the holder, a worker can always tell whether a lease is still its own (see
  **fail** below).
* **heartbeat** — while executing, the worker periodically touches its lease
  file; the mtime is the liveness signal.
* **complete** — the worker writes the result through the shared
  :class:`~repro.runner.cache.ResultCache` *first*, then unlinks the lease.
  Completion is therefore observable before the lease disappears; a crash
  between the two steps only leaves a lease that expires and a cached
  result the next leaseholder discovers and serves without re-executing.
* **release** — anyone (the polling submitter, typically) may rename a lease
  whose mtime is older than the TTL back into ``tasks/`` (into the shard the
  claim name records, so re-offers keep their dataset affinity), re-offering
  a dead worker's trial.  :meth:`SpoolBroker.release_expired` accepts a
  *shards* restriction: the home shard is parsed from the lease **name**, so
  leases outside the shards of interest are skipped before any stat call —
  a submitter policing its own grid on a busy shared spool pays nothing for
  the other submitters' live leases.  If the TTL fires on a *live* worker
  (e.g. a long GC pause), two workers may briefly execute the same trial;
  both write the same content-addressed cache entry, so duplicate execution
  is wasted work but never wrong results.
* **fail** — a trial that raises is recorded under ``failed/`` with the full
  traceback; the submitter surfaces it as :class:`RemoteTrialError` instead
  of waiting forever.  A worker whose claim was revoked (its lease expired
  and was re-offered while the trial was failing) does *not* record the
  failure: the trial belongs to someone else now, and a machine-local error
  from a stale holder must not abort a grid a healthy retry is completing.

Sharding and the PR 4 compat story: earlier spools kept every pending task
directly under ``tasks/``, which made every worker scan the same sorted
listing and race the same lowest-key task — W workers cost W−1 failed
renames per claim and one full listing per single lease.  Tasks now land in
a per-shard subdirectory (``shard_by="dataset"`` by default, so workers that
generated a dataset's corpus keep leasing trials that reuse it; ``"hash"``
shards by the key's first two hex chars; ``"none"`` reproduces the flat
layout).  Workers scan both the shard subdirectories *and* any flat
``tasks/<key>.task`` files, so a spool written by the old layout — or by a
submitter configured differently — still drains; flat tasks are claimed,
heartbeated and re-offered under their original flat location and lease-name
format.  :attr:`SpoolBroker.stats` counts listings and rename attempts so
contention is measurable (``benchmarks/bench_spool.py`` and
``benchmarks/bench_broker.py``).

The submitter side (:meth:`Broker.wait <repro.runner.brokers.base.Broker.wait>`)
is the generic polling loop from the base protocol, driven by one
directory-listing snapshot per spool directory per round instead of a stat
per pending key per round.
"""

# repro: noqa-file[REPRO101] -- lease heartbeats are wall-clock TTLs by
# design (mtime freshness vs lease_ttl); timestamps never reach task
# payloads or content keys.
# repro: noqa-file[REPRO103] -- queue scans are order-independent by
# design: listings feed membership tests and counters, and the claim
# order is deliberately randomised per worker (see lease_batch).

from __future__ import annotations

import json
import os
import pickle
import random
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.runner.brokers.base import (
    _FLAT,
    DEFAULT_CLAIM_BATCH,
    DEFAULT_LEASE_TTL,
    SHARD_POLICIES,
    Broker,
    BrokerTimeout,
    LeasedTrial,
    RemoteTrialError,
    SpoolTimeout,
    sanitize_token,
)
from repro.runner.cache import atomic_write_bytes
from repro.runner.spec import TrialSpec

__all__ = [
    "DEFAULT_CLAIM_BATCH",
    "DEFAULT_LEASE_TTL",
    "SHARD_POLICIES",
    "BrokerTimeout",
    "LeasedTrial",
    "RemoteTrialError",
    "SpoolBroker",
    "SpoolStats",
    "SpoolTimeout",
]

# Historical module-local name for the shared shard/lease-component
# normaliser (kept: this module is also importable as repro.runner.broker).
_sanitize = sanitize_token


@dataclass
class SpoolStats:
    """Spool round-trip counters of one :class:`SpoolBroker` instance.

    The contention fix is only real if it is measurable: these counters are
    what ``benchmarks/bench_spool.py`` (and the CI contention smoke) assert
    on.  They are plain per-instance ints — give each worker thread its own
    broker when aggregating across workers.

    Attributes
    ----------
    listings:
        Directory listings performed (task-shard scans, snapshot sweeps).
    rename_attempts:
        Claim renames attempted by :meth:`SpoolBroker.lease_batch`.
    failed_renames:
        Claim renames lost to another worker — the wasted spool round-trips
        sharding and randomised scan order exist to eliminate.
    claims:
        Tasks successfully claimed.
    batches:
        :meth:`SpoolBroker.lease_batch` calls that scanned the spool.
    """

    listings: int = 0
    rename_attempts: int = 0
    failed_renames: int = 0
    claims: int = 0
    batches: int = 0

    def renames_per_claim(self) -> float:
        """Average claim renames spent per successful claim."""
        return self.rename_attempts / max(self.claims, 1)

    def listings_per_claim(self) -> float:
        """Average directory listings spent per successful claim."""
        return self.listings / max(self.claims, 1)


class SpoolBroker(Broker):
    """Work queue over a shared spool directory (see module docstring).

    Parameters
    ----------
    spool:
        The shared directory.  Created (with its subdirectories) lazily on
        first use; submitters and workers must point at the same path.
    lease_ttl:
        Seconds without a heartbeat after which a lease counts as abandoned.
    shard_by:
        Where :meth:`enqueue` files tasks: ``"dataset"`` (default) groups
        trials of one dataset in one shard so workers keep generated corpora
        warm, ``"hash"`` spreads them by key prefix, ``"none"`` writes the
        legacy flat layout.  Workers drain every shard *and* the flat
        location regardless of their own setting.
    scan_order:
        ``"random"`` (default) randomises the shard and in-shard scan order
        so racing workers spread out; ``"sorted"`` scans deterministically
        (useful for tests and for measuring the pre-sharding baseline).
    """

    def __init__(
        self,
        spool: str | Path,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        shard_by: str = "dataset",
        scan_order: str = "random",
    ):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if shard_by not in SHARD_POLICIES:
            raise ValueError(
                f"shard_by must be one of {SHARD_POLICIES}, got {shard_by!r}"
            )
        if scan_order not in ("random", "sorted"):
            raise ValueError(
                f"scan_order must be 'random' or 'sorted', got {scan_order!r}"
            )
        self.root = Path(spool)
        self.lease_ttl = float(lease_ttl)
        self.shard_by = shard_by
        self.scan_order = scan_order
        self.tasks_dir = self.root / "tasks"
        self.leases_dir = self.root / "leases"
        self.failed_dir = self.root / "failed"
        self.stats = SpoolStats()
        self._rng = random.Random()
        self._affinity_shard: str | None = None

    # -- paths ------------------------------------------------------------

    @property
    def location(self) -> Path:
        """The spool directory (shown in timeout diagnostics)."""
        return self.root

    def task_path(self, spec: TrialSpec | str) -> Path:
        """Pending-task file path for a spec or key (under its home shard)."""
        return self._task_home(self.key_of(spec), self.shard_for(spec))

    def _task_home(self, key: str, shard: str) -> Path:
        base = self.tasks_dir / shard if shard else self.tasks_dir
        return base / f"{key}.task"

    def failure_path(self, spec: TrialSpec | str) -> Path:
        """Failure-log file path for a spec or key."""
        return self.failed_dir / f"{self.key_of(spec)}.json"

    @staticmethod
    def _entry_key(entry: Path) -> str:
        # Spool entries all lead with the content key (<key>.task,
        # <key>.json, <key>[.<shard>].<worker>.<token>.lease); the key is a
        # hex digest and can never contain a dot itself.
        return entry.name.split(".", 1)[0]

    @staticmethod
    def _lease_home_of(name: str) -> tuple[str, str]:
        # <key>.<worker>.<token>.lease        -> flat/legacy task location
        # <key>.<shard>.<worker>.<token>.lease -> sharded task location
        # (shard, worker and token components are all dot-free by
        # construction, so the component count disambiguates the formats).
        parts = name.split(".")
        shard = parts[1] if len(parts) == 5 else _FLAT
        return parts[0], shard

    def _leases_for(self, spec: TrialSpec | str) -> Iterator[Path]:
        if self.leases_dir.is_dir():
            yield from self.leases_dir.glob(f"{self.key_of(spec)}.*.lease")

    def is_claimed(self, spec: TrialSpec | str) -> bool:
        """Whether any worker currently holds a lease on the trial."""
        return next(self._leases_for(spec), None) is not None

    def _ensure_dirs(self) -> None:
        for directory in (self.tasks_dir, self.leases_dir, self.failed_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # -- submitter side ---------------------------------------------------

    def enqueue(self, spec: TrialSpec) -> bool:
        """Offer *spec* to the workers; returns whether a task file was written.

        Nothing is written when the trial is already pending or currently
        leased by a worker.  The pending probe covers every location a
        submitter policy could have filed the task under — its dataset
        shard, its key-prefix shard and the legacy flat path — so a
        submitter configured with a *different* ``shard_by`` policy sees an
        already-pending trial instead of filing a second copy.  (The probe
        is best-effort for *concurrent* cross-policy enqueues: two racing
        submitters with different policies can still write two copies,
        which costs a duplicate execution but never wrong results — the
        cache is content-addressed.  Same-policy submitters target the
        identical path and stay fully idempotent.)  A stale failure log for the same
        key is cleared only when a task file is actually (re-)written —
        re-submitting is the retry path after a fixed environment, but an
        enqueue that changes nothing must not wipe a log another
        submitter's :meth:`wait` is about to raise.
        """
        self._ensure_dirs()
        key = spec.key
        task = self.task_path(spec)
        candidates = {task, self._task_home(key, _FLAT), self._task_home(key, key[:2])}
        dataset_shard = self._dataset_shard(spec)
        if dataset_shard:
            candidates.add(self._task_home(key, dataset_shard))
        if any(candidate.exists() for candidate in candidates) or self.is_claimed(key):
            return False
        self._write_task(task, spec)
        return True

    def enqueue_batch(self, specs: Sequence[TrialSpec]) -> int:
        """Offer every spec in *specs*; returns how many task files were written.

        Equivalent to enqueueing one at a time, but the already-pending and
        already-leased checks run against **one** snapshot of the spool
        (one ``tasks/`` sweep + one ``leases/`` listing) instead of up to
        four existence probes and a lease glob per spec, and each shard
        directory is created once per batch rather than once per task.  On
        a paper-scale grid this turns submission from O(N) spool round
        trips into O(shards).

        The per-spec semantics are unchanged: a trial already pending
        (under *any* policy's location) or currently leased is skipped, and
        a stale failure log is cleared only for trials actually written.
        The snapshot is best-effort for *concurrent* enqueues exactly like
        :meth:`enqueue`'s probe — duplicate copies cost a duplicate
        execution, never wrong results.
        """
        if not specs:
            return 0
        self._ensure_dirs()
        skip = self._task_key_snapshot() | self._leased_key_snapshot()
        written = 0
        for spec in specs:
            if spec.key in skip:
                continue
            self._write_task(self.task_path(spec), spec)
            skip.add(spec.key)  # same-key duplicates within one batch
            written += 1
        return written

    def _write_task(self, task: Path, spec: TrialSpec) -> None:
        """Atomically write one task file, then clear any stale failure log."""
        payload = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        written = False
        for _ in range(10):
            task.parent.mkdir(parents=True, exist_ok=True)
            try:
                atomic_write_bytes(task, payload)
                written = True
                break
            except FileNotFoundError:
                # A worker rmdir'ed the just-drained shard between our
                # mkdir and the tempfile creation; recreate and retry.
                continue
        if not written:
            raise OSError(f"shard directory for {task} keeps vanishing")
        # Clear the stale log only now that the retry actually exists — a
        # failed write must not discard the failure evidence.
        try:
            self.failure_path(spec.key).unlink()
        except OSError:
            pass

    def release_expired(
        self,
        keys: Sequence[str] | None = None,
        shards: Iterable[str] | None = None,
    ) -> int:
        """Re-offer leases whose heartbeat is older than the TTL.

        *keys* restricts the sweep to the given content keys (a submitter
        only polices its own trials on a shared spool); *shards* restricts
        it to leases whose claim name records a home shard in the given set.
        Both filters are decided from the lease **name** alone — no stat
        call is spent on a lease outside the scope, so a scoped sweep on a
        busy shared spool only pays for the leases it could actually
        re-offer.  ``None`` for either means no restriction.  Each re-offer
        restores the task to the shard its claim name records (flat for
        legacy-format leases), so crash recovery preserves dataset
        affinity.  Returns the number of leases re-offered.
        """
        wanted = None if keys is None else set(keys)
        in_scope = None if shards is None else set(shards)
        released = 0
        if not self.leases_dir.is_dir():
            return released
        now = time.time()
        self.stats.listings += 1
        for lease in self.leases_dir.glob("*.lease"):
            key, shard = self._lease_home_of(lease.name)
            if wanted is not None and key not in wanted:
                continue
            if in_scope is not None and shard not in in_scope:
                continue
            try:
                age = now - lease.stat().st_mtime
            except OSError:
                continue  # completed/released under us
            if age <= self.lease_ttl:
                continue
            task = self._task_home(key, shard)
            try:
                if task.exists():
                    # Already re-offered by someone else; dropping the dead
                    # lease is cleanup, not a re-offer — it doesn't count.
                    lease.unlink()
                    continue
                task.parent.mkdir(parents=True, exist_ok=True)
                os.rename(lease, task)
            except OSError:
                continue  # lost the race to another policing process
            released += 1
        return released

    def failure_for(self, spec: TrialSpec | str) -> dict | None:
        """The failure log for a trial, or ``None`` if it has not failed."""
        try:
            return json.loads(self.failure_path(spec).read_text())
        except OSError:
            return None
        except ValueError:
            return None  # half-written by a crashed worker: not actionable

    # -- snapshot hooks for the generic wait loop -------------------------

    def _failed_key_snapshot(self) -> set[str]:
        """Content keys with a failure log (one ``failed/`` listing)."""
        return self._key_snapshot(self.failed_dir, "*.json")

    def _pending_key_snapshot(self) -> set[str]:
        """Content keys of every pending task (one ``tasks/`` sweep)."""
        return self._task_key_snapshot()

    def _leased_key_snapshot(self) -> set[str]:
        """Content keys of every live lease (one ``leases/`` listing)."""
        return self._key_snapshot(self.leases_dir, "*.lease")

    def _key_snapshot(self, directory: Path, pattern: str) -> set[str]:
        """Content keys present in one spool directory (single listing)."""
        if not directory.is_dir():
            return set()
        self.stats.listings += 1
        try:
            return {self._entry_key(path) for path in directory.glob(pattern)}
        except OSError:
            return set()  # directory pruned between the check and the scan

    def _shard_entries(self) -> tuple[list[Path], list[str]]:
        """One listing of ``tasks/``: (flat task files, shard dir names)."""
        self.stats.listings += 1
        try:
            entries = list(self.tasks_dir.iterdir())
        except OSError:
            return [], []
        flat_tasks: list[Path] = []
        shards: list[str] = []
        for entry in entries:
            name = entry.name
            if name.endswith(".task"):
                flat_tasks.append(entry)
            elif not name.endswith((".corrupt", ".tmp")):
                shards.append(name)
        return flat_tasks, shards

    def _task_key_snapshot(self) -> set[str]:
        """Content keys of every pending task, flat and sharded."""
        keys: set[str] = set()
        if not self.tasks_dir.is_dir():
            return keys
        flat_tasks, shards = self._shard_entries()
        for task in flat_tasks:
            keys.add(self._entry_key(task))
        for shard in shards:
            keys |= self._key_snapshot(self.tasks_dir / shard, "*.task")
        return keys

    def _any_fresh_lease(self, keys: Sequence[str]) -> bool:
        """Whether any of *keys* is claimed with an unexpired heartbeat."""
        if not self.leases_dir.is_dir():
            return False
        now = time.time()
        self.stats.listings += 1
        for lease in self.leases_dir.glob("*.lease"):
            if self._entry_key(lease) not in keys:
                continue
            try:
                if now - lease.stat().st_mtime <= self.lease_ttl:
                    return True
            except OSError:
                continue
        return False

    # -- worker side ------------------------------------------------------

    def lease_batch(self, worker_id: str = "", limit: int = DEFAULT_CLAIM_BATCH) -> list[LeasedTrial]:
        """Claim up to *limit* pending trials, amortising listings over renames.

        The shard that satisfied the previous batch is tried first, alone:
        one directory listing of *that shard only* serves the whole batch,
        and with the default dataset sharding it keeps a worker on trials
        whose generated corpus it already has warm (placement affinity).
        Only when the affinity shard is drained does the worker pay a full
        sweep — one listing of ``tasks/`` to discover shards, then shards
        visited in randomised order (``scan_order="random"``), topping the
        batch up across shards so the tail of a grid still fills batches
        instead of fragmenting into one-claim scans.  Candidates within a
        shard are also scanned in randomised order, so racing workers
        spread out instead of piling onto one sorted listing.  Flat
        (legacy / ``shard_by="none"``) tasks are drained through the same
        sweep.

        Losing a rename race just moves on to the next candidate.  Each
        claim lands under ``<key>[.<shard>].<worker>.<token>.lease`` —
        unique per claim, so the lease file doubles as an ownership
        certificate (and records who holds the trial, and where to restore
        it, for releases and spool post-mortems).  A task file that cannot
        be unpickled is quarantined next to its task location
        (``<key>.task.corrupt``) so it cannot wedge the queue — the
        submitter's self-healing re-enqueue restores a fresh copy.
        """
        if limit < 1:
            return []
        if not self.tasks_dir.is_dir():
            return []
        holder = _sanitize(worker_id) or "anon"
        self.stats.batches += 1
        if self.scan_order == "random" and self._affinity_shard:
            # Fast path: as long as the previously fruitful shard keeps
            # yielding work, one listing of *that shard alone* serves the
            # whole batch — no re-discovery of the shard set every call.
            claimed = self._claim_from_shard(self._affinity_shard, None, holder, limit)
            if claimed:
                return claimed
            self._affinity_shard = None  # shard drained: fall back to a sweep
        flat_tasks, shards = self._shard_entries()
        order: list[str] = list(shards)
        if flat_tasks:
            order.append(_FLAT)
        if self.scan_order == "sorted":
            order.sort()  # "" sorts first: legacy tasks drain deterministically
        else:
            self._rng.shuffle(order)
        claimed: list[LeasedTrial] = []
        for shard in order:
            got = self._claim_from_shard(
                shard,
                flat_tasks if shard == _FLAT else None,
                holder,
                limit - len(claimed),
            )
            if got:
                claimed += got
                # Remember the latest fruitful shard: the next batch's fast
                # path starts there (dataset affinity).
                self._affinity_shard = shard or None
            elif claimed:
                # An empty shard while already holding work means the spool
                # is draining: start executing the partial batch now instead
                # of paying a listing per mostly-empty shard to top it up.
                break
            if len(claimed) >= limit:
                break
        return claimed

    def _claim_from_shard(
        self,
        shard: str,
        flat_tasks: list[Path] | None,
        holder: str,
        limit: int,
    ) -> list[LeasedTrial]:
        """Claim up to *limit* tasks from one shard (one listing, n renames)."""
        if flat_tasks is not None:
            tasks = list(flat_tasks)  # already listed by the caller's sweep
        else:
            self.stats.listings += 1
            try:
                tasks = list((self.tasks_dir / shard).glob("*.task") if shard else ())
            except OSError:
                # Another worker pruned this just-drained shard between our
                # sweep's discovery and this listing (pathlib only swallows
                # PermissionError, not FileNotFoundError).
                return []
            if not tasks and shard:
                # Remove a drained shard directory so sweeps stop probing
                # it — on a long grid most shards end up empty, and every
                # probe of a dead shard is a wasted listing.  rmdir is
                # atomic and fails harmlessly while the shard still holds
                # anything (a racing enqueue, a quarantined task); enqueue
                # retries its write if the directory vanishes under it.
                try:
                    os.rmdir(self.tasks_dir / shard)
                except OSError:
                    pass
        if self.scan_order == "sorted":
            tasks.sort()
        else:
            self._rng.shuffle(tasks)
        claimed: list[LeasedTrial] = []
        for task in tasks:
            lease = self._claim(task, shard, holder)
            if lease is None:
                continue
            claimed.append(lease)
            if len(claimed) >= limit:
                break
        return claimed

    def _claim(self, task: Path, shard: str, holder: str) -> LeasedTrial | None:
        """Attempt one claim rename; ``None`` on a lost race or corrupt task."""
        key = task.name[: -len(".task")]
        token = uuid.uuid4().hex[:8]
        if shard:
            name = f"{key}.{shard}.{holder}.{token}.lease"
        else:
            name = f"{key}.{holder}.{token}.lease"
        lease = self.leases_dir / name
        self.stats.rename_attempts += 1
        try:
            os.rename(task, lease)
        except OSError:
            self.stats.failed_renames += 1
            return None  # another worker won this task
        try:
            spec = pickle.loads(lease.read_bytes())
        except Exception:
            spec = None
        if not isinstance(spec, TrialSpec):
            # Quarantine next to the task, not inside leases/: nothing ever
            # cleans leases/, and post-mortems must not conflate a bad task
            # file with a real claim.  counts() reports these.
            quarantine = task.with_name(task.name + ".corrupt")
            for _ in range(3):
                try:
                    os.replace(lease, quarantine)
                    break
                except FileNotFoundError:
                    # Claiming this (last) task emptied the shard and a
                    # concurrent sweep pruned its directory: recreate it,
                    # or the garbage would linger as a live-looking lease.
                    quarantine.parent.mkdir(parents=True, exist_ok=True)
                    continue
                except OSError:
                    break
            return None
        self.stats.claims += 1
        return LeasedTrial(key=key, spec=spec, lease_path=lease)

    def heartbeat(self, lease: LeasedTrial) -> None:
        """Refresh the lease's liveness signal (touch its mtime)."""
        try:
            os.utime(lease.lease_path)
        except OSError:
            pass  # lease was released/expired under us; expiry handles it

    def complete(self, lease: LeasedTrial) -> None:
        """Drop the lease after the result reached the cache."""
        try:
            lease.lease_path.unlink()
        except OSError:
            pass

    def release(self, lease: LeasedTrial) -> None:
        """Voluntarily re-offer a claimed trial (worker shutting down).

        The task is restored to the home its claim name records — its shard
        for sharded claims, the flat location for legacy-format leases — so
        a release never migrates a task between layouts.
        """
        key, shard = self._lease_home_of(lease.lease_path.name)
        task = self._task_home(key, shard)
        for _ in range(3):
            try:
                if task.exists():
                    lease.lease_path.unlink()
                else:
                    task.parent.mkdir(parents=True, exist_ok=True)
                    os.rename(lease.lease_path, task)
                return
            except FileNotFoundError:
                if not lease.lease_path.exists():
                    return  # lease revoked under us; nothing left to re-offer
                continue  # shard dir rmdir'ed under the rename: retry mkdir
            except OSError:
                return

    def fail(self, lease: LeasedTrial, worker_id: str, error: BaseException, traceback_text: str) -> None:
        """Record a trial failure and drop the lease — if the claim is still ours.

        The failure log (not the exception) is what crosses the machine
        boundary; :meth:`wait` re-raises it as :class:`RemoteTrialError`.

        A revoked claim (the lease file is gone: the TTL expired and the
        trial was re-offered while this worker was busy dying) records
        nothing: the failure may be local to this worker, and aborting the
        submitter would discard a healthy retry already in flight.  The
        check races revocation by design — the window shrinks from the
        whole trial duration to one stat call, and the residual race only
        re-raises a genuine failure one retry later.
        """
        if not lease.lease_path.exists():
            return
        self._ensure_dirs()
        payload = {
            "key": lease.key,
            "worker": worker_id,
            "error": repr(error),
            "traceback": traceback_text,
        }
        atomic_write_bytes(
            self.failure_path(lease.key),
            json.dumps(payload, indent=2, sort_keys=True).encode("utf-8"),
        )
        self.complete(lease)

    # -- introspection ----------------------------------------------------

    def counts(self) -> dict[str, int]:
        """``{"tasks", "leases", "failed", "corrupt"}`` spool snapshot.

        ``tasks`` spans the flat location and every shard; ``corrupt``
        counts quarantined task files (``*.task.corrupt`` anywhere under
        ``tasks/``, plus any ``*.lease.corrupt`` a pre-sharding broker left
        inside ``leases/``).
        """
        tasks = corrupt = 0
        if self.tasks_dir.is_dir():
            flat_tasks, shards = self._shard_entries()
            tasks += len(flat_tasks)
            corrupt += sum(1 for _ in self.tasks_dir.glob("*.task.corrupt"))
            for shard in shards:
                try:
                    entries = list((self.tasks_dir / shard).iterdir())
                except OSError:
                    continue  # shard pruned between discovery and listing
                for entry in entries:
                    if entry.name.endswith(".task"):
                        tasks += 1
                    elif entry.name.endswith(".task.corrupt"):
                        corrupt += 1
        leases = failed = 0
        if self.leases_dir.is_dir():
            leases = sum(1 for _ in self.leases_dir.glob("*.lease"))
            corrupt += sum(1 for _ in self.leases_dir.glob("*.lease.corrupt"))
        if self.failed_dir.is_dir():
            failed = sum(1 for _ in self.failed_dir.glob("*.json"))
        return {"tasks": tasks, "leases": leases, "failed": failed, "corrupt": corrupt}

    def backlog(self) -> dict[str, int]:
        """Scaling signals: pending depth and distinct shards holding work.

        One ``tasks/`` sweep plus one listing per live shard — the same
        cost as :meth:`counts` — returning ``{"tasks", "shards",
        "leases"}`` for the fleet supervisor: queue depth sizes the pool,
        and the number of backlogged shards bounds how many workers can
        claim without racing each other under dataset affinity.
        """
        tasks = 0
        busy_shards: set[str] = set()
        if self.tasks_dir.is_dir():
            flat_tasks, shards = self._shard_entries()
            if flat_tasks:
                tasks += len(flat_tasks)
                busy_shards.add(_FLAT)
            for shard in shards:
                pending = len(self._key_snapshot(self.tasks_dir / shard, "*.task"))
                if pending:
                    tasks += pending
                    busy_shards.add(shard)
        leases = 0
        if self.leases_dir.is_dir():
            leases = sum(1 for _ in self.leases_dir.glob("*.lease"))
        return {"tasks": tasks, "shards": len(busy_shards), "leases": leases}
