"""The broker protocol: the contract every trial-distribution backend implements.

A *broker* is the coordination layer of distributed execution: submitters
offer :class:`~repro.runner.spec.TrialSpec`s to it, worker daemons claim
them under revocable leases, heartbeat while executing, and publish results
through the shared content-addressed
:class:`~repro.runner.cache.ResultCache` — the cache, not the broker, is the
result channel.  The engine, the worker daemon and the supervisor talk only
to this protocol, so backends are interchangeable:

* :class:`~repro.runner.brokers.spool.SpoolBroker` — the reference
  implementation over a shared directory of atomic renames (no server
  process at all);
* :class:`~repro.runner.brokers.sqlite.SqliteBroker` — a single WAL-mode
  SQLite file with transactional lease claims, for hosts where shared-
  filesystem rename contention is the bottleneck.

The protocol (one method per state transition):

========================  ====================================================
``enqueue(spec)``         offer one trial; idempotent per content key
``enqueue_batch(specs)``  offer many trials, amortising per-call overhead
``lease_batch(w, n)``     claim up to *n* pending trials for worker *w*
``heartbeat(lease)``      refresh a claim's liveness signal
``complete(lease)``       drop a claim after the result reached the cache
``release(lease)``        voluntarily re-offer a claimed trial
``release_expired(...)``  re-offer claims whose heartbeat outlived the TTL
``fail(lease, ...)``      record a failure log (if the claim is still held)
``counts()``              queue snapshot: tasks / leases / failed / corrupt
``backlog()``             scaling signals: queue depth and backlogged shards
``stats``                 per-instance round-trip counters (measurability)
========================  ====================================================

Shared semantics every backend must honour (the contract test suite in
``tests/runner/test_broker_contract.py`` runs identically against all of
them):

* **content-keyed idempotence** — enqueueing an already-pending or
  already-claimed trial changes nothing;
* **exactly-one winner** — of any number of racing claims on one trial;
* **ownership certificates** — a lease records who holds it; a holder whose
  claim was revoked (expired and re-offered) can neither drop the new
  holder's claim nor record a failure log for it;
* **failure logs are conditional evidence** — ``enqueue`` clears a stale
  failure log only when it actually (re-)writes the trial, never out from
  under a currently-claimed, currently-failing trial;
* **sharding** — trials are grouped by a shard label (the dataset by
  default) so workers keep dataset affinity and scaling policies can see
  per-shard backlog.

The submitter-side polling loop (:meth:`Broker.wait`) is implemented here
once, on top of a small set of snapshot hooks each backend provides.
"""

from __future__ import annotations

import abc
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.core.results import RunHistory
from repro.runner.spec import TrialSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runner.cache import ResultCache

#: Default lease time-to-live in seconds: a lease whose heartbeat is older
#: than this is considered abandoned and may be re-offered.  Workers
#: heartbeat every TTL/4 by default, so a live worker keeps a ~4x margin
#: over the expiry check.
DEFAULT_LEASE_TTL = 60.0

#: Default number of tasks a worker claims per batch.  Batching amortises
#: one queue scan over many claims; the worker voluntarily re-offers any
#: leases it has not started when it shuts down.
DEFAULT_CLAIM_BATCH = 8

#: Supported ``shard_by`` policies: by ``TrialSpec.dataset`` (placement
#: affinity — workers keep generated corpora warm), by key prefix, or no
#: sharding at all (the legacy flat layout).
SHARD_POLICIES = ("dataset", "hash", "none")

# Shard label of unsharded (legacy / shard_by="none") trials.
_FLAT = ""


def sanitize_token(name: str) -> str:
    """Make *name* safe for shard labels and lease-name components.

    Shard labels and lease components must be dot-free (the spool's
    lease-name grammar splits on dots) and filesystem-safe; the SQLite
    backend reuses the same normalisation so both backends agree on shard
    labels.
    """
    return re.sub(r"[^A-Za-z0-9_-]+", "-", name)


class RemoteTrialError(RuntimeError):
    """A trial failed on a remote worker.

    Carries the worker's failure log so the submitter can show the remote
    traceback instead of a bare "trial missing" timeout.
    """

    def __init__(self, key: str, worker: str, error: str, traceback_text: str):
        self.key = key
        self.worker = worker
        self.error = error
        self.traceback_text = traceback_text
        super().__init__(
            f"trial {key[:12]}... failed on worker {worker!r}: {error}\n"
            f"--- remote traceback ---\n{traceback_text}"
        )


class SpoolTimeout(TimeoutError):
    """The submitter's wait deadline passed with trials still outstanding.

    Raised by every broker backend, not just the filesystem spool; the
    historical name is kept because it is part of the public API
    (``repro.runner.SpoolTimeout``).
    """


#: Backend-neutral alias for :class:`SpoolTimeout` — new code should catch
#: this name; the two are the same class.
BrokerTimeout = SpoolTimeout


class Broker(abc.ABC):
    """Abstract work queue distributing :class:`TrialSpec`s to workers.

    Subclasses implement the state transitions (enqueue / lease / heartbeat
    / complete / release / expire / fail) plus the snapshot hooks the
    generic polling loop needs; :meth:`wait` — the submitter side — is
    implemented here once for all backends.

    Attributes every backend exposes:

    ``lease_ttl``
        Seconds without a heartbeat after which a claim counts as abandoned.
    ``shard_by``
        The sharding policy trials are filed under (see
        :data:`SHARD_POLICIES`).
    ``stats``
        A per-instance dataclass of round-trip counters, with at least
        ``claims`` and ``batches`` fields — give each worker thread its own
        broker instance when aggregating across workers.
    """

    lease_ttl: float
    shard_by: str

    # -- sharding (shared by all backends) --------------------------------

    @staticmethod
    def key_of(spec: TrialSpec | str) -> str:
        """Content key of a spec (or pass a raw key through)."""
        return spec.key if isinstance(spec, TrialSpec) else str(spec)

    def shard_for(self, spec: TrialSpec | str) -> str:
        """Shard label a trial for *spec* is filed under.

        ``shard_by="dataset"`` needs the :class:`TrialSpec` (a raw key
        carries no dataset); raw keys fall back to the key-prefix shard.
        The flat policy returns the empty string (no shard).
        """
        if self.shard_by == "none":
            return _FLAT
        if self.shard_by == "dataset" and isinstance(spec, TrialSpec):
            name = self._dataset_shard(spec)
            if name:
                return name
        return self.key_of(spec)[:2]

    @staticmethod
    def _dataset_shard(spec: TrialSpec) -> str | None:
        # The one definition of the dataset-shard label: shard_for files
        # trials under it, and enqueue's cross-policy dedupe probe must
        # cover exactly the same location.
        return sanitize_token(spec.dataset).strip("-") or None

    def _sweep_shards(self, specs: Iterable[TrialSpec]) -> set[str]:
        """Every shard a lease on one of *specs* could record as its home.

        The union of each spec's policy shard, dataset shard, key-prefix
        shard and the flat label — the same candidate set the enqueue
        dedupe probe covers — so an expiry sweep restricted to these shards
        can never miss a lease another submitter's policy filed elsewhere.
        """
        shards: set[str] = {_FLAT}
        for spec in specs:
            shards.add(self.shard_for(spec))
            shards.add(self.key_of(spec)[:2])
            dataset_shard = self._dataset_shard(spec)
            if dataset_shard:
                shards.add(dataset_shard)
        return shards

    # -- submitter side ---------------------------------------------------

    @abc.abstractmethod
    def enqueue(self, spec: TrialSpec) -> bool:
        """Offer *spec* to the workers; returns whether anything was written.

        Idempotent per content key: nothing is written (and ``False`` is
        returned) when the trial is already pending or currently claimed.
        A stale failure log for the same key is cleared only when the trial
        is actually (re-)written — re-submitting is the retry path after a
        fixed environment, but an enqueue that changes nothing must not
        wipe a log another submitter's :meth:`wait` is about to raise.
        """

    def enqueue_batch(self, specs: Sequence[TrialSpec]) -> int:
        """Offer every spec in *specs*; returns how many were actually written.

        Semantically ``sum(enqueue(spec) for spec in specs)`` — backends
        override this to amortise per-call work (one pending-set snapshot,
        one transaction) over the whole batch.
        """
        return sum(bool(self.enqueue(spec)) for spec in specs)

    @abc.abstractmethod
    def release_expired(
        self,
        keys: Sequence[str] | None = None,
        shards: Iterable[str] | None = None,
    ) -> int:
        """Re-offer claims whose heartbeat is older than the TTL.

        *keys* restricts the sweep to the given content keys (a submitter
        only polices its own trials on a shared queue); *shards* restricts
        it to claims whose recorded home shard is in the given set, so a
        scoped sweep inspects only the shards with leases of interest
        instead of the full lease population.  ``None`` for either means
        no restriction.  Returns the number of claims re-offered.
        """

    @abc.abstractmethod
    def failure_for(self, spec: TrialSpec | str) -> dict | None:
        """The failure log for a trial (``{key, worker, error, traceback}``),
        or ``None`` if it has not failed."""

    # -- worker side ------------------------------------------------------

    def lease_next(self, worker_id: str = ""):
        """Atomically claim one pending trial, or ``None`` if idle.

        Equivalent to :meth:`lease_batch` with a batch of one — every claim
        pays a fresh queue scan, so loops that expect sustained work should
        prefer :meth:`lease_batch`.
        """
        claimed = self.lease_batch(worker_id, limit=1)
        return claimed[0] if claimed else None

    @abc.abstractmethod
    def lease_batch(self, worker_id: str = "", limit: int = DEFAULT_CLAIM_BATCH) -> list:
        """Claim up to *limit* pending trials for *worker_id*.

        Exactly one of any number of racing claimants wins each trial.
        Consecutive batches prefer the shard that satisfied the previous
        one (dataset affinity).  Returns lease objects that carry at least
        ``.key`` and ``.spec`` and are accepted by :meth:`heartbeat`,
        :meth:`complete`, :meth:`release` and :meth:`fail`.
        """

    @abc.abstractmethod
    def heartbeat(self, lease) -> None:
        """Refresh the claim's liveness signal (a no-op on a revoked claim)."""

    @abc.abstractmethod
    def complete(self, lease) -> None:
        """Drop the claim after the result reached the cache.

        Only the claim's holder can drop it: a revoked claim (expired and
        re-offered to another worker) is left untouched.
        """

    @abc.abstractmethod
    def release(self, lease) -> None:
        """Voluntarily re-offer a claimed trial (worker shutting down).

        The trial is restored to the shard the claim records, so a release
        never migrates a trial between shards.
        """

    @abc.abstractmethod
    def fail(
        self, lease, worker_id: str, error: BaseException, traceback_text: str
    ) -> None:
        """Record a trial failure and drop the claim — if it is still held.

        The failure log (not the exception) is what crosses the machine
        boundary; :meth:`wait` re-raises it as :class:`RemoteTrialError`.
        A revoked claim records nothing: the failure may be local to the
        stale holder, and aborting the submitter would discard a healthy
        retry already in flight.
        """

    # -- introspection ----------------------------------------------------

    @abc.abstractmethod
    def counts(self) -> dict[str, int]:
        """Queue snapshot: ``{"tasks", "leases", "failed", "corrupt"}``."""

    def backlog(self) -> dict[str, int]:
        """Scaling signals: pending depth and how many shards hold work.

        ``{"tasks": <pending trials>, "shards": <distinct shards with at
        least one pending trial>, "leases": <claimed trials>}`` — what the
        fleet supervisor sizes the worker pool from.  The default derives
        a degenerate single-shard view from :meth:`counts`; backends
        override it with a real per-shard breakdown.
        """
        counts = self.counts()
        return {
            "tasks": counts["tasks"],
            "shards": 1 if counts["tasks"] else 0,
            "leases": counts["leases"],
        }

    # -- snapshot hooks for the generic wait loop -------------------------

    @abc.abstractmethod
    def _failed_key_snapshot(self) -> set[str]:
        """Content keys with a failure log (one snapshot, no per-key probes)."""

    @abc.abstractmethod
    def _pending_key_snapshot(self) -> set[str]:
        """Content keys of every pending (unclaimed) trial."""

    @abc.abstractmethod
    def _leased_key_snapshot(self) -> set[str]:
        """Content keys of every currently claimed trial."""

    @abc.abstractmethod
    def _any_fresh_lease(self, keys: Sequence[str]) -> bool:
        """Whether any of *keys* is claimed with an unexpired heartbeat."""

    @property
    @abc.abstractmethod
    def location(self) -> Path | str:
        """Where this queue lives (shown in timeout diagnostics)."""

    # -- the generic submitter polling loop -------------------------------

    def wait(
        self,
        specs: Sequence[TrialSpec],
        cache: ResultCache,
        timeout: float | None = None,
        poll_initial: float = 0.05,
        poll_max: float = 1.0,
        on_result: Callable[[TrialSpec, RunHistory], None] | None = None,
        on_released: Callable[[int], None] | None = None,
    ) -> dict[str, RunHistory]:
        """Block until every spec's result is in *cache*; return key->history.

        Polls with exponential backoff (*poll_initial* doubling-ish up to
        *poll_max* seconds), re-releasing expired claims and re-enqueueing
        trials that disappeared from the queue entirely along the way.
        Each round costs a constant number of snapshot queries/listings —
        never a probe per pending key, which at up to 20 Hz early in the
        backoff would hammer a shared backend on paper-scale grids.  The
        expiry sweep is scoped to the pending keys *and* their candidate
        shards, so it inspects only the shards with leases of interest.

        Raises :class:`RemoteTrialError` as soon as any trial has a failure
        log, and :class:`SpoolTimeout` if *timeout* seconds pass with trials
        still outstanding *and no live worker lease on any of them* — a
        fresh heartbeat extends the deadline, so the timeout detects
        abandonment, not trials that simply run long (``None`` waits
        forever — only sensible when workers are known to be running).

        *on_result* fires once per completed trial (the engine counts
        remote completions with it); *on_released* fires with the number of
        claims re-offered by each expiry sweep.
        """
        pending: dict[str, TrialSpec] = {spec.key: spec for spec in specs}
        histories: dict[str, RunHistory] = {}
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        interval = poll_initial
        while pending:
            progressed = False
            # One snapshot per source per round: failure logs and the cache
            # entries for our pending keys, then membership is dict lookups.
            failed_keys = self._failed_key_snapshot()
            done_keys = cache.keys_present(pending)
            for key in list(pending):
                if key in done_keys:
                    history = cache.get(key)
                    if history is not None:
                        spec = pending.pop(key)
                        histories[key] = history
                        if on_result is not None:
                            on_result(spec, history)
                        progressed = True
                        continue
                    # get() just quarantined a corrupt entry: still pending,
                    # and no longer "done" — drop it from the snapshot so
                    # the self-healing pass below re-offers it this round.
                    done_keys.discard(key)
                if key in failed_keys:
                    failure = self.failure_for(key)
                    if failure is not None:
                        raise RemoteTrialError(
                            key,
                            failure.get("worker", "<unknown>"),
                            failure.get("error", "<unknown>"),
                            failure.get("traceback", ""),
                        )
            if not pending:
                break
            leased_keys = self._leased_key_snapshot()
            if any(key in leased_keys for key in pending):
                # Only sweep for expiry while one of OUR trials is actually
                # claimed — and restrict the sweep to the shards our trials
                # could live in, so a busy shared queue full of other
                # submitters' leases costs us nothing to police.
                released = self.release_expired(
                    keys=pending, shards=self._sweep_shards(pending.values())
                )
                if released and on_released is not None:
                    on_released(released)
            task_keys = self._pending_key_snapshot()
            for key, spec in pending.items():
                # Vanished entirely (quarantined trial, manual queue wipe,
                # the complete/release races): re-offer it from the spec we
                # still hold, making the protocol self-healing.  A key with
                # a failure log is NOT re-offered — enqueue would clear the
                # log a worker may have written since this round's failure
                # check, and the next round must raise it instead.  The
                # live cache probe here is fine: it only runs for keys
                # already absent from every snapshot, which is the rare
                # self-heal path, not the per-round hot path.
                if key in task_keys or key in leased_keys or key in done_keys:
                    continue
                if not cache.path_for(key).exists() and self.failure_for(key) is None:
                    self.enqueue(spec)
            if progressed:
                interval = poll_initial
                continue
            if deadline is not None and time.monotonic() >= deadline:
                if self._any_fresh_lease(pending):
                    # A worker is actively heartbeating one of our trials:
                    # the timeout guards against *abandonment*, not against
                    # trials longer than the timeout — push the deadline.
                    deadline = time.monotonic() + float(timeout)
                else:
                    raise SpoolTimeout(
                        f"{len(pending)} trial(s) still outstanding after "
                        f"{timeout:g}s with no live worker lease — are any "
                        f"workers running against {self.location}? "
                        "(python -m repro.runner.worker --spool ...)"
                    )
            time.sleep(interval)
            interval = min(interval * 1.5, poll_max)
        return histories


@dataclass
class LeasedTrial:
    """One claimed trial: the spec plus the lease file that proves the claim.

    This is the :class:`~repro.runner.brokers.spool.SpoolBroker` lease
    shape (kept here so the worker daemon's annotations need no backend
    import); the SQLite backend's leases carry a row token instead of a
    path.  All backends' leases expose ``key`` and ``spec``.

    Attributes
    ----------
    key:
        The trial's content key (the first dot-separated component of the
        lease file name).
    spec:
        The trial description, unpickled from the claimed task file.
    lease_path:
        The claim-unique lease file under ``<spool>/leases/``
        (``<key>[.<shard>].<worker>.<token>.lease``); its mtime is the
        heartbeat, and its continued existence is proof the claim was not
        revoked.
    """

    key: str
    spec: TrialSpec
    lease_path: Path
