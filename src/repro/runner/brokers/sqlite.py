"""SQLite broker: the :class:`Broker` protocol over one WAL-mode database file.

Where the filesystem spool turns a shared directory into a queue, this
backend turns a single SQLite file into one.  Every protocol operation is a
short ``BEGIN IMMEDIATE`` transaction, so claims are decided by the
database's write lock instead of by rename races: contention costs a claimant
a bounded lock wait, never a wasted round trip, which is exactly the trade
to make on hosts where shared-filesystem rename latency (NFS, overlayfs) is
the bottleneck.  WAL journaling keeps readers (queue snapshots, the
submitter's polling loop, the supervisor's ``backlog()``) off the writers'
lock entirely.

Schema (registered-table style — each table is declared once in
:data:`_TABLES` and created idempotently, with ``PRAGMA user_version``
recording the schema generation)::

    tasks(key PRIMARY KEY, shard, spec BLOB, state, worker, token,
          heartbeat, enqueued_at)         -- state: pending|leased|corrupt
        + index (state, shard)            -- dataset-affinity claims and
                                          -- shard-scoped expiry sweeps are
                                          -- index lookups
    failures(key PRIMARY KEY, worker, error, traceback, failed_at)

State mapping from the spool's directories: a pending task file is a
``state='pending'`` row; a lease file is the *same row* flipped to
``state='leased'`` with the holder's identity in ``worker``/``token`` and
the heartbeat wall-clock in ``heartbeat`` (a column, not an mtime); a
quarantined task is ``state='corrupt'``; a failure log is a ``failures``
row.  The (worker, token) pair is the ownership certificate the spool
encodes in its lease file name — ``heartbeat`` / ``complete`` / ``release``
/ ``fail`` all condition on the token, so a revoked claim (expired,
re-offered, re-claimed under a new token) can neither drop the new holder's
lease nor record a failure log for it.

Results never touch the database: workers publish through the shared
content-addressed :class:`~repro.runner.cache.ResultCache` exactly as under
the spool, so distributed runs stay byte-identical to serial regardless of
backend.

Concurrency: one connection per broker instance, opened lazily (safe to
construct before forking worker subprocesses) with
``check_same_thread=False`` plus an instance :class:`~threading.RLock` — the
worker daemon's heartbeat thread shares the daemon's broker instance.  Cross
*process* coordination is the database's own locking (`busy_timeout` makes
lock waits bounded-blocking instead of immediate ``SQLITE_BUSY`` errors).
"""

# repro: noqa-file[REPRO101] -- lease heartbeats are wall-clock TTLs by
# design (heartbeat_at vs lease_ttl); timestamps never reach task payloads
# or content keys.

from __future__ import annotations

import pickle
import random
import sqlite3
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.runner.brokers.base import (
    DEFAULT_CLAIM_BATCH,
    DEFAULT_LEASE_TTL,
    SHARD_POLICIES,
    Broker,
    sanitize_token,
)
from repro.runner.spec import TrialSpec

__all__ = ["SqliteBroker", "SqliteLease", "SqliteStats", "DB_FILENAME"]

#: File name used when :class:`SqliteBroker` is pointed at a directory: the
#: database lands *inside* it, so one ``--spool`` path works for both
#: backends (the spool uses the directory, SQLite uses this file in it).
DB_FILENAME = "broker.sqlite3"

#: Path suffixes treated as "this is the database file itself".
_DB_SUFFIXES = (".sqlite3", ".sqlite", ".db")

#: Schema generation stamped into ``PRAGMA user_version``.
_SCHEMA_VERSION = 1

# Registered tables: declared once, created idempotently on first use.
# Adding a table (e.g. the planned run-history index) means adding an entry
# here and bumping _SCHEMA_VERSION.
_TABLES = {
    "tasks": """
        CREATE TABLE IF NOT EXISTS tasks (
            key         TEXT PRIMARY KEY,
            shard       TEXT NOT NULL DEFAULT '',
            spec        BLOB NOT NULL,
            state       TEXT NOT NULL DEFAULT 'pending'
                        CHECK (state IN ('pending', 'leased', 'corrupt')),
            worker      TEXT,
            token       TEXT,
            heartbeat   REAL,
            enqueued_at REAL NOT NULL
        )
    """,
    "failures": """
        CREATE TABLE IF NOT EXISTS failures (
            key       TEXT PRIMARY KEY,
            worker    TEXT NOT NULL,
            error     TEXT NOT NULL,
            traceback TEXT NOT NULL,
            failed_at REAL NOT NULL
        )
    """,
}

_INDEXES = (
    "CREATE INDEX IF NOT EXISTS idx_tasks_state_shard ON tasks (state, shard)",
)

# sqlite's default SQLITE_MAX_VARIABLE_NUMBER is 999 on older builds; stay
# comfortably under it when expanding key sets into IN (...) clauses.
_IN_CHUNK = 500


def _chunks(values: Sequence[str], size: int = _IN_CHUNK) -> Iterator[Sequence[str]]:
    for start in range(0, len(values), size):
        yield values[start : start + size]


@dataclass
class SqliteStats:
    """Database round-trip counters of one :class:`SqliteBroker` instance.

    The SQLite analogue of :class:`~repro.runner.brokers.spool.SpoolStats`:
    per-instance ints (give each worker thread its own broker when
    aggregating), asserted on by ``benchmarks/bench_broker.py``.  There are
    no rename races to count — contention shows up as transactions per
    claim instead.

    Attributes
    ----------
    transactions:
        Write transactions committed (each is one bounded write-lock hold).
    queries:
        Read-only statements executed (snapshots, counts, freshness probes).
    claims:
        Tasks successfully claimed by :meth:`SqliteBroker.lease_batch`.
    batches:
        :meth:`SqliteBroker.lease_batch` calls that queried the queue.
    """

    transactions: int = 0
    queries: int = 0
    claims: int = 0
    batches: int = 0

    def transactions_per_claim(self) -> float:
        """Average write transactions spent per successful claim."""
        return self.transactions / max(self.claims, 1)


@dataclass
class SqliteLease:
    """One claimed trial: the spec plus the token that proves the claim.

    Attributes
    ----------
    key:
        The trial's content key (the ``tasks`` row's primary key).
    spec:
        The trial description, unpickled from the claimed row.
    worker:
        The sanitised holder identity recorded on the row.
    token:
        The claim-unique ownership certificate — heartbeats, completion,
        release and failure logging all condition on it, so a revoked claim
        cannot touch its successor's row.
    shard:
        The shard label the row is filed under (releases restore it there).
    """

    key: str
    spec: TrialSpec
    worker: str
    token: str
    shard: str


class SqliteBroker(Broker):
    """Work queue over a single WAL-mode SQLite file (see module docstring).

    Parameters
    ----------
    location:
        The database file, or a directory to put one in (``<location>/
        broker.sqlite3``) — the latter lets one ``--spool`` path serve both
        backends.  Parent directories are created lazily on first use;
        submitters and workers must point at the same path.
    lease_ttl:
        Seconds without a heartbeat after which a claim counts as abandoned.
    shard_by:
        Shard label policy for enqueued trials: ``"dataset"`` (default)
        groups trials of one dataset so workers keep generated corpora
        warm, ``"hash"`` spreads them by key prefix, ``"none"`` uses a
        single unsharded label.  Unlike the spool there is no layout
        migration cost — the label is just an indexed column.
    scan_order:
        ``"random"`` (default) picks claim candidates in random order so
        racing workers spread across shards; ``"sorted"`` claims
        deterministically by key (useful for tests).
    """

    #: Shared state the lock-discipline checker holds to `with self._lock:`
    #: (or the `_tx` transaction scope, which takes the lock itself).
    _GUARDED_BY_LOCK = ("_conn", "_affinity_shard")
    _LOCK_CONTEXTS = ("_tx",)

    def __init__(
        self,
        location: str | Path,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        shard_by: str = "dataset",
        scan_order: str = "random",
    ):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if shard_by not in SHARD_POLICIES:
            raise ValueError(
                f"shard_by must be one of {SHARD_POLICIES}, got {shard_by!r}"
            )
        if scan_order not in ("random", "sorted"):
            raise ValueError(
                f"scan_order must be 'random' or 'sorted', got {scan_order!r}"
            )
        location = Path(location)
        self.path = (
            location
            if location.suffix in _DB_SUFFIXES
            else location / DB_FILENAME
        )
        self.lease_ttl = float(lease_ttl)
        self.shard_by = shard_by
        self.scan_order = scan_order
        self.stats = SqliteStats()
        self._rng = random.Random()
        self._affinity_shard: str | None = None
        self._lock = threading.RLock()
        self._conn: sqlite3.Connection | None = None

    # -- connection management --------------------------------------------

    @property
    def location(self) -> Path:
        """The database file (shown in timeout diagnostics)."""
        return self.path

    def _connect(self) -> sqlite3.Connection:  # repro: locked
        """The lazily opened connection (schema ensured on first use)."""
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path),
                timeout=30.0,
                isolation_level=None,  # explicit BEGIN IMMEDIATE below
                check_same_thread=False,  # guarded by self._lock
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            for statement in _TABLES.values():
                conn.execute(statement)
            for statement in _INDEXES:
                conn.execute(statement)
            conn.execute(f"PRAGMA user_version={_SCHEMA_VERSION}")
            self._conn = conn
        return self._conn

    def close(self) -> None:
        """Close the connection (reopened lazily if the broker is reused)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    @contextmanager
    def _tx(self) -> Iterator[sqlite3.Connection]:
        # One bounded write-lock hold: BEGIN IMMEDIATE takes the database
        # write lock up front (no deferred-upgrade deadlocks between racing
        # claimants), COMMIT releases it, errors roll back.
        with self._lock:
            conn = self._connect()
            conn.execute("BEGIN IMMEDIATE")
            try:
                yield conn
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")
            self.stats.transactions += 1

    def _read(self, sql: str, params: Sequence = ()) -> list[sqlite3.Row]:
        # WAL readers never block on the writers' lock.
        with self._lock:
            self.stats.queries += 1
            return self._connect().execute(sql, params).fetchall()

    # -- submitter side ---------------------------------------------------

    def enqueue(self, spec: TrialSpec) -> bool:
        """Offer *spec* to the workers; returns whether a row was written.

        Nothing is written when the trial is already pending or currently
        leased (the key is the primary key, so cross-policy duplicate
        locations cannot exist at all in this backend).  A ``corrupt`` row
        is overwritten with the fresh spec — the same self-heal path as
        re-enqueueing over a quarantined spool task.  A stale failure log
        is cleared only when the row is actually (re-)written.
        """
        with self._tx() as conn:
            return self._enqueue_in_tx(conn, spec)

    def enqueue_batch(self, specs: Sequence[TrialSpec]) -> int:
        """Offer every spec in *specs* in **one** transaction.

        Per-spec semantics are identical to :meth:`enqueue`; the batch
        amortises the write-lock acquisition and the fsync at commit over
        the whole grid, which is the difference between N bounded lock
        waits and one.
        """
        if not specs:
            return 0
        with self._tx() as conn:
            return sum(self._enqueue_in_tx(conn, spec) for spec in specs)

    def _enqueue_in_tx(self, conn: sqlite3.Connection, spec: TrialSpec) -> bool:
        row = conn.execute(
            "SELECT state FROM tasks WHERE key = ?", (spec.key,)
        ).fetchone()
        if row is not None and row["state"] != "corrupt":
            return False
        conn.execute(
            "INSERT OR REPLACE INTO tasks (key, shard, spec, state, enqueued_at)"
            " VALUES (?, ?, ?, 'pending', ?)",
            (
                spec.key,
                self.shard_for(spec),
                pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL),
                time.time(),
            ),
        )
        # Clear the stale log only now that the retry actually exists.
        conn.execute("DELETE FROM failures WHERE key = ?", (spec.key,))
        return True

    def release_expired(
        self,
        keys: Sequence[str] | None = None,
        shards: Iterable[str] | None = None,
    ) -> int:
        """Re-offer claims whose heartbeat is older than the TTL.

        *keys* and *shards* restrict the sweep exactly as on the spool; the
        shard restriction rides the ``(state, shard)`` index, so a scoped
        sweep on a busy shared queue touches only the rows it could
        actually re-offer.  Rows keep their shard column, so crash recovery
        preserves dataset affinity by construction.  Returns the number of
        claims re-offered.
        """
        cutoff = time.time() - self.lease_ttl
        conditions = ["state = 'leased'", "heartbeat < ?"]
        params: list = [cutoff]
        if shards is not None:
            scope = sorted(set(shards))
            conditions.append(
                f"shard IN ({','.join('?' * len(scope))})" if scope else "0"
            )
            params += scope
        released = 0
        with self._tx() as conn:
            if keys is None:
                cursor = conn.execute(
                    "UPDATE tasks SET state='pending', worker=NULL, token=NULL,"
                    f" heartbeat=NULL WHERE {' AND '.join(conditions)}",
                    params,
                )
                released = cursor.rowcount
            else:
                for chunk in _chunks(sorted(set(keys))):
                    marks = ",".join("?" * len(chunk))
                    cursor = conn.execute(
                        "UPDATE tasks SET state='pending', worker=NULL,"
                        " token=NULL, heartbeat=NULL"
                        f" WHERE {' AND '.join(conditions)} AND key IN ({marks})",
                        params + list(chunk),
                    )
                    released += cursor.rowcount
        return released

    def failure_for(self, spec: TrialSpec | str) -> dict | None:
        """The failure log for a trial, or ``None`` if it has not failed."""
        rows = self._read(
            "SELECT key, worker, error, traceback FROM failures WHERE key = ?",
            (self.key_of(spec),),
        )
        return dict(rows[0]) if rows else None

    # -- snapshot hooks for the generic wait loop -------------------------

    def _failed_key_snapshot(self) -> set[str]:
        """Content keys with a failure log (one indexed scan)."""
        return {row["key"] for row in self._read("SELECT key FROM failures")}

    def _pending_key_snapshot(self) -> set[str]:
        """Content keys of every pending trial (one indexed scan)."""
        return {
            row["key"]
            for row in self._read("SELECT key FROM tasks WHERE state = 'pending'")
        }

    def _leased_key_snapshot(self) -> set[str]:
        """Content keys of every claimed trial (one indexed scan)."""
        return {
            row["key"]
            for row in self._read("SELECT key FROM tasks WHERE state = 'leased'")
        }

    def _any_fresh_lease(self, keys: Sequence[str]) -> bool:
        """Whether any of *keys* is claimed with an unexpired heartbeat."""
        cutoff = time.time() - self.lease_ttl
        for chunk in _chunks(sorted(keys)):
            marks = ",".join("?" * len(chunk))
            rows = self._read(
                "SELECT 1 FROM tasks WHERE state='leased' AND heartbeat >= ?"
                f" AND key IN ({marks}) LIMIT 1",
                [cutoff, *chunk],
            )
            if rows:
                return True
        return False

    # -- worker side ------------------------------------------------------

    def lease_batch(self, worker_id: str = "", limit: int = DEFAULT_CLAIM_BATCH) -> list[SqliteLease]:
        """Claim up to *limit* pending trials in one transaction.

        The shard that satisfied the previous batch is tried first (dataset
        affinity — same policy as the spool), topped up across other shards
        in randomised (or sorted) order.  Each claim flips the row to
        ``leased`` under a claim-unique token inside a single ``BEGIN
        IMMEDIATE`` transaction, so exactly one of any number of racing
        claimants wins each row and nobody pays a wasted round trip.  A row
        whose spec no longer unpickles is flipped to ``corrupt`` (the
        quarantine state) in the same transaction so it cannot wedge the
        queue; the submitter's self-healing re-enqueue overwrites it with a
        fresh copy.
        """
        if limit < 1:
            return []
        holder = sanitize_token(worker_id) or "anon"
        self.stats.batches += 1
        claimed: list[SqliteLease] = []
        with self._tx() as conn:
            order: list[str] = []
            if self._affinity_shard is not None:
                order.append(self._affinity_shard)
            shards = [
                row["shard"]
                for row in conn.execute(
                    "SELECT DISTINCT shard FROM tasks WHERE state = 'pending'"
                )
            ]
            if self.scan_order == "sorted":
                shards.sort()
            else:
                self._rng.shuffle(shards)
            order += [shard for shard in shards if shard != self._affinity_shard]
            for shard in order:
                got = self._claim_from_shard(conn, shard, holder, limit - len(claimed))
                if got:
                    claimed += got
                    self._affinity_shard = shard
                if len(claimed) >= limit:
                    break
            if not claimed:
                self._affinity_shard = None
        self.stats.claims += len(claimed)
        return claimed

    def _claim_from_shard(
        self, conn: sqlite3.Connection, shard: str, holder: str, limit: int
    ) -> list[SqliteLease]:
        """Claim up to *limit* rows from one shard (inside the caller's tx)."""
        candidate_order = "RANDOM()" if self.scan_order == "random" else "key"
        token = uuid.uuid4().hex[:8]
        rows = conn.execute(
            "UPDATE tasks SET state='leased', worker=?, token=?, heartbeat=?"
            " WHERE state='pending' AND key IN ("
            "   SELECT key FROM tasks WHERE state='pending' AND shard=?"
            f"  ORDER BY {candidate_order} LIMIT ?"
            " ) RETURNING key, spec, token",
            (holder, token, time.time(), shard, limit),
        ).fetchall()
        claimed: list[SqliteLease] = []
        for row in rows:
            try:
                spec = pickle.loads(row["spec"])
            except Exception:
                spec = None
            if not isinstance(spec, TrialSpec):
                # Quarantine in place: the row stops matching every claim
                # and snapshot query but stays visible to counts().
                conn.execute(
                    "UPDATE tasks SET state='corrupt', worker=NULL, token=NULL,"
                    " heartbeat=NULL WHERE key=?",
                    (row["key"],),
                )
                continue
            claimed.append(
                SqliteLease(
                    key=row["key"],
                    spec=spec,
                    worker=holder,
                    token=row["token"],
                    shard=shard,
                )
            )
        return claimed

    def heartbeat(self, lease: SqliteLease) -> None:
        """Refresh the claim's heartbeat column (a no-op on a revoked claim)."""
        with self._tx() as conn:
            conn.execute(
                "UPDATE tasks SET heartbeat=? WHERE key=? AND token=?"
                " AND state='leased'",
                (time.time(), lease.key, lease.token),
            )

    def complete(self, lease: SqliteLease) -> None:
        """Drop the claim after the result reached the cache (token-checked)."""
        with self._tx() as conn:
            conn.execute(
                "DELETE FROM tasks WHERE key=? AND token=? AND state='leased'",
                (lease.key, lease.token),
            )

    def release(self, lease: SqliteLease) -> None:
        """Voluntarily re-offer a claimed trial (token-checked).

        The row keeps its shard column, so a release never migrates a trial
        between shards.
        """
        with self._tx() as conn:
            conn.execute(
                "UPDATE tasks SET state='pending', worker=NULL, token=NULL,"
                " heartbeat=NULL WHERE key=? AND token=? AND state='leased'",
                (lease.key, lease.token),
            )

    def fail(self, lease: SqliteLease, worker_id: str, error: BaseException, traceback_text: str) -> None:
        """Record a trial failure and drop the claim — if it is still ours.

        The token check makes revocation exact here (no stat-call race as
        on the spool): the row delete and the failure insert commit in one
        transaction, so either this worker still held the claim and the
        failure is recorded, or the claim was re-offered and nothing
        happens.
        """
        with self._tx() as conn:
            cursor = conn.execute(
                "DELETE FROM tasks WHERE key=? AND token=? AND state='leased'",
                (lease.key, lease.token),
            )
            if cursor.rowcount:
                conn.execute(
                    "INSERT OR REPLACE INTO failures"
                    " (key, worker, error, traceback, failed_at)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (lease.key, worker_id, repr(error), traceback_text, time.time()),
                )

    # -- introspection ----------------------------------------------------

    def counts(self) -> dict[str, int]:
        """``{"tasks", "leases", "failed", "corrupt"}`` queue snapshot.

        The same four-key shape as the spool's: ``tasks`` are pending rows,
        ``leases`` are claimed rows, ``corrupt`` are quarantined rows,
        ``failed`` counts failure logs.
        """
        by_state = {
            row["state"]: row["n"]
            for row in self._read(
                "SELECT state, COUNT(*) AS n FROM tasks GROUP BY state"
            )
        }
        failed = self._read("SELECT COUNT(*) AS n FROM failures")[0]["n"]
        return {
            "tasks": by_state.get("pending", 0),
            "leases": by_state.get("leased", 0),
            "failed": failed,
            "corrupt": by_state.get("corrupt", 0),
        }

    def backlog(self) -> dict[str, int]:
        """Scaling signals (``{"tasks", "shards", "leases"}``), one indexed scan."""
        row = self._read(
            "SELECT COUNT(*) AS tasks, COUNT(DISTINCT shard) AS shards"
            " FROM tasks WHERE state = 'pending'"
        )[0]
        leases = self._read(
            "SELECT COUNT(*) AS n FROM tasks WHERE state = 'leased'"
        )[0]["n"]
        return {"tasks": row["tasks"], "shards": row["shards"], "leases": leases}
