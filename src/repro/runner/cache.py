"""Compatibility alias: ``repro.runner.cache`` *is* the pickle-store module.

The cache grew into the :mod:`repro.runner.results` package (abstract
:class:`ResultStore` protocol + pickle-shard blob store + SQLite-indexed
store); this module keeps the pre-split import path alive by replacing
itself in ``sys.modules`` with
:mod:`repro.runner.results.pickle_store`.  Self-replacement (rather than
re-exporting names) means module-level *attribute assignment* keeps working
too — ``monkeypatch.setattr("repro.runner.cache.atomic_write_bytes", ...)``
patches the module the implementation actually reads from.
"""

from __future__ import annotations

import sys

from repro.runner.results import pickle_store as _pickle_store

sys.modules[__name__] = _pickle_store
