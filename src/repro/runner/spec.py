"""Immutable trial descriptions and their content hashes.

A *trial* is the atomic unit of the experiment engine: one framework on one
dataset with one seed under one evaluation protocol.  :class:`TrialSpec`
freezes that description so trials can be hashed, deduplicated, shipped to
worker processes — pool workers on this machine, or pickled onto a spool
directory for :mod:`repro.runner.worker` daemons on other machines — and
used as content addresses for the on-disk result cache
(:mod:`repro.runner.cache`).

The hash covers every input that determines the trial's outcome — framework,
dataset, seed, protocol parameters and pipeline keyword arguments (configs
are dataclasses and are canonicalised field by field) — plus a cache format
version so stale entries are ignored after incompatible changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # Only needed for annotations: importing repro.experiments at runtime
    # would close the cycle experiments -> runner.engine -> runner.spec and
    # make `import repro.runner` order-dependent (workers on spawn-start
    # platforms import it first).
    from repro.experiments.protocol import EvaluationProtocol

#: Bump when the trial execution semantics or RunHistory layout change in a
#: way that invalidates previously cached results.
#: 2: IterationRecord gained warm-refit counters; stale aggregation state is
#:    flushed at evaluation points (retrain_every > 1 results moved).
#: 3: adaptive early stopping became the default EM/glasso stopping rule
#:    (iteration counts and fitted parameters moved) and IterationRecord
#:    gained the lm_converged_fits / lm_final_loss / glasso_sweeps counters.
#: 4: RunHistory gained the ``artifacts`` payload (pipelines may export
#:    final labels/diagnostics/predictions) and the trial loop calls the
#:    pipelines' ``export_artifacts()`` hook after the last iteration.
CACHE_FORMAT_VERSION = 4


def canonical_value(obj):
    """Recursively convert *obj* into a JSON-serialisable canonical form.

    Dataclasses (configs, protocols) are expanded field by field with their
    type name, mappings are key-sorted, numpy scalars are unboxed and numpy
    arrays expand element-wise.  Anything else falls back to ``repr`` —
    except identity-based reprs (``<... object at 0x...>``), which are
    rejected: they differ across processes, so hashing them would produce
    unstable content keys (and truncated reprs would collide).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__type__": type(obj).__name__,
            **{
                f.name: canonical_value(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        canonical = {}
        for key, value in sorted(obj.items(), key=lambda item: str(item[0])):
            text = str(key)
            if text in canonical:
                # Silently merging would give two distinct specs one content
                # key — and serve one trial's cached result for the other.
                raise TypeError(
                    f"cannot content-hash dict: distinct keys stringify to {text!r}"
                )
            if text in ("__set__", "__type__"):
                # Reserved sentinels of the set/dataclass encodings: a dict
                # carrying them would collide with a genuine set/dataclass.
                raise TypeError(
                    f"cannot content-hash dict: key {text!r} is a reserved "
                    "canonical-encoding sentinel"
                )
            canonical[text] = canonical_value(value)
        return canonical
    if isinstance(obj, (list, tuple)):
        return [canonical_value(value) for value in obj]
    if isinstance(obj, (set, frozenset)):
        # Iteration (and repr) order is hash-randomised across processes;
        # sort by the canonical JSON encoding for a stable key.
        encoded = [canonical_value(value) for value in obj]
        encoded.sort(key=lambda value: json.dumps(value, sort_keys=True))
        return {"__set__": encoded}
    if isinstance(obj, np.ndarray):
        return [canonical_value(value) for value in obj.tolist()]
    if isinstance(obj, (np.integer, np.bool_)):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    text = repr(obj)
    if " at 0x" in text:
        raise TypeError(
            f"cannot content-hash a {type(obj).__name__}: its repr is "
            "identity-based and would differ across processes"
        )
    return text


def _digest_canonical(canonical) -> str:
    """SHA-256 hex digest of an already-canonicalised payload.

    Canonical forms must not pass through :func:`canonical_value` again:
    the reserved-sentinel guard would (correctly) reject their ``__type__``
    and ``__set__`` markers.
    """
    encoded = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def digest(payload) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of *payload*."""
    return _digest_canonical(canonical_value(payload))


@dataclass(frozen=True)
class TrialSpec:
    """One framework x dataset x seed trial under an evaluation protocol.

    Attributes
    ----------
    framework:
        Registry name of the interactive pipeline (``"activedp"``, ...).
    dataset:
        Registry name of the benchmark dataset.
    seed:
        Per-trial seed; drives both dataset generation and the pipeline.
    protocol:
        The evaluation protocol (iterations, eval cadence, dataset scale...).
    pipeline_kwargs:
        Extra keyword arguments for the pipeline constructor (ablation
        configs, noise rates, ...).  ``None`` means none.
    group:
        Presentation label used by the engine to aggregate trials into one
        :class:`~repro.experiments.protocol.FrameworkResult`.  Excluded from
        the content hash so identical trials share cache entries across
        experiment drivers.
    """

    framework: str
    dataset: str
    seed: int
    protocol: EvaluationProtocol
    pipeline_kwargs: dict | None = None
    group: str | None = None

    def __post_init__(self):
        if not self.framework:
            raise ValueError("framework must be a non-empty name")
        if not self.dataset:
            raise ValueError("dataset must be a non-empty name")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")

    @cached_property
    def key(self) -> str:
        """Content address of the trial (hex SHA-256).

        ``n_seeds`` and ``base_seed`` are excluded from the protocol
        projection: they decide *which* trials a grid expands to, not the
        outcome of this one, so growing a grid from 1 to 5 seeds keeps the
        shared trials' cache entries valid (``spawn_seeds`` is
        prefix-stable).
        """
        protocol = canonical_value(self.protocol)
        protocol.pop("n_seeds", None)
        protocol.pop("base_seed", None)
        return _digest_canonical(
            {
                "version": CACHE_FORMAT_VERSION,
                "framework": self.framework,
                "dataset": self.dataset,
                "seed": self.seed,
                "protocol": protocol,
                "pipeline_kwargs": canonical_value(self.pipeline_kwargs),
            }
        )

    def __hash__(self) -> int:
        # The generated dataclass hash chokes on the kwargs dict; the content
        # key is the natural identity anyway.
        return hash(self.key)

    def __eq__(self, other) -> bool:
        if not isinstance(other, TrialSpec):
            return NotImplemented
        return self.key == other.key and self.group == other.group
