"""Filesystem-spool broker: the cross-machine trial-distribution protocol.

The broker turns a shared directory (NFS mount, bind mount, plain local
directory) into a work queue for :class:`~repro.runner.spec.TrialSpec`s.  No
server process is involved; every operation is a single atomic filesystem
rename, so any number of submitters and workers can share one spool.

Spool layout::

    <spool>/
        tasks/<key>.task                      pending trials (pickled
                                              TrialSpec, atomic write)
        leases/<key>.<worker>.<token>.lease   claimed trials (mtime =
                                              worker heartbeat)
        failed/<key>.json                     failure logs ({key, worker,
                                              error, traceback})

Protocol:

* **enqueue** — the submitter writes one ``tasks/<key>.task`` file per
  pending trial (tempfile + ``os.replace``).  The file name *is* the trial's
  content key, so two submitters enqueueing the same trial write the same
  (identical) file and the trial runs once.
* **lease** — a worker claims a task by renaming it into ``leases/`` under a
  claim name unique to this worker and claim.  ``os.rename`` is atomic on
  the *source*, so exactly one of any number of racing workers wins; the
  losers see ``FileNotFoundError`` and move on to the next task.  Because
  the claim name encodes the holder, a worker can always tell whether a
  lease is still its own (see **fail** below).
* **heartbeat** — while executing, the worker periodically touches its lease
  file; the mtime is the liveness signal.
* **complete** — the worker writes the result through the shared
  :class:`~repro.runner.cache.ResultCache` *first*, then unlinks the lease.
  Completion is therefore observable before the lease disappears; a crash
  between the two steps only leaves a lease that expires and a cached
  result the next leaseholder discovers and serves without re-executing.
* **release** — anyone (the polling submitter, typically) may rename a lease
  whose mtime is older than the TTL back into ``tasks/``, re-offering a dead
  worker's trial.  If the TTL fires on a *live* worker (e.g. a long GC
  pause), two workers may briefly execute the same trial; both write the
  same content-addressed cache entry, so duplicate execution is wasted work
  but never wrong results.
* **fail** — a trial that raises is recorded under ``failed/`` with the full
  traceback; the submitter surfaces it as :class:`RemoteTrialError` instead
  of waiting forever.  A worker whose claim was revoked (its lease expired
  and was re-offered while the trial was failing) does *not* record the
  failure: the trial belongs to someone else now, and a machine-local error
  from a stale holder must not abort a grid a healthy retry is completing.

The submitter side (:meth:`SpoolBroker.wait`) polls the cache with
exponential backoff, re-releases expired leases, re-enqueues trials that
vanished entirely (e.g. a quarantined corrupt task file), and stops on the
first failure log.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.core.results import RunHistory
from repro.runner.cache import ResultCache, atomic_write_bytes
from repro.runner.spec import TrialSpec

#: Default lease time-to-live in seconds: a lease whose heartbeat (file
#: mtime) is older than this is considered abandoned and may be re-offered.
#: Workers heartbeat every TTL/4 by default, so a live worker keeps a ~4x
#: margin over the expiry check.
DEFAULT_LEASE_TTL = 60.0


class RemoteTrialError(RuntimeError):
    """A trial failed on a remote worker.

    Carries the worker's failure log so the submitter can show the remote
    traceback instead of a bare "trial missing" timeout.
    """

    def __init__(self, key: str, worker: str, error: str, traceback_text: str):
        self.key = key
        self.worker = worker
        self.error = error
        self.traceback_text = traceback_text
        super().__init__(
            f"trial {key[:12]}... failed on worker {worker!r}: {error}\n"
            f"--- remote traceback ---\n{traceback_text}"
        )


class SpoolTimeout(TimeoutError):
    """The submitter's wait deadline passed with trials still outstanding."""


@dataclass
class LeasedTrial:
    """One claimed trial: the spec plus the lease file that proves the claim.

    Attributes
    ----------
    key:
        The trial's content key (the first dot-separated component of the
        lease file name).
    spec:
        The trial description, unpickled from the claimed task file.
    lease_path:
        The claim-unique lease file under ``<spool>/leases/``
        (``<key>.<worker>.<token>.lease``); its mtime is the heartbeat, and
        its continued existence is proof the claim was not revoked.
    """

    key: str
    spec: TrialSpec
    lease_path: Path


class SpoolBroker:
    """Work queue over a shared spool directory (see module docstring).

    Parameters
    ----------
    spool:
        The shared directory.  Created (with its subdirectories) lazily on
        first use; submitters and workers must point at the same path.
    lease_ttl:
        Seconds without a heartbeat after which a lease counts as abandoned.
    """

    def __init__(self, spool: str | Path, lease_ttl: float = DEFAULT_LEASE_TTL):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.root = Path(spool)
        self.lease_ttl = float(lease_ttl)
        self.tasks_dir = self.root / "tasks"
        self.leases_dir = self.root / "leases"
        self.failed_dir = self.root / "failed"

    # -- paths ------------------------------------------------------------

    @staticmethod
    def key_of(spec: TrialSpec | str) -> str:
        """Content key of a spec (or pass a raw key through)."""
        return spec.key if isinstance(spec, TrialSpec) else str(spec)

    def task_path(self, spec: TrialSpec | str) -> Path:
        """Pending-task file path for a spec or key."""
        return self.tasks_dir / f"{self.key_of(spec)}.task"

    def failure_path(self, spec: TrialSpec | str) -> Path:
        """Failure-log file path for a spec or key."""
        return self.failed_dir / f"{self.key_of(spec)}.json"

    @staticmethod
    def _entry_key(entry: Path) -> str:
        # Spool entries all lead with the content key (<key>.task,
        # <key>.json, <key>.<worker>.<token>.lease); the key is a hex digest
        # and can never contain a dot itself.
        return entry.name.split(".", 1)[0]

    def _leases_for(self, spec: TrialSpec | str) -> Iterator[Path]:
        if self.leases_dir.is_dir():
            yield from self.leases_dir.glob(f"{self.key_of(spec)}.*.lease")

    def is_claimed(self, spec: TrialSpec | str) -> bool:
        """Whether any worker currently holds a lease on the trial."""
        return next(self._leases_for(spec), None) is not None

    def _ensure_dirs(self) -> None:
        for directory in (self.tasks_dir, self.leases_dir, self.failed_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # -- submitter side ---------------------------------------------------

    def enqueue(self, spec: TrialSpec) -> bool:
        """Offer *spec* to the workers; returns whether a task file was written.

        A stale failure log for the same key is cleared first (re-submitting
        is the retry path after a fixed environment).  Nothing is written
        when the trial is already pending or currently leased by a worker.
        """
        self._ensure_dirs()
        key = spec.key
        try:
            self.failure_path(key).unlink()
        except OSError:
            pass
        if self.task_path(key).exists() or self.is_claimed(key):
            return False
        atomic_write_bytes(
            self.task_path(key), pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        )
        return True

    def release_expired(self, keys: Sequence[str] | None = None) -> int:
        """Re-offer leases whose heartbeat is older than the TTL.

        *keys* restricts the sweep to the given content keys (a submitter
        only polices its own trials on a shared spool); ``None`` sweeps
        every lease.  Returns the number of leases re-offered.
        """
        wanted = None if keys is None else set(keys)
        released = 0
        if not self.leases_dir.is_dir():
            return released
        now = time.time()
        for lease in self.leases_dir.glob("*.lease"):
            key = self._entry_key(lease)
            if wanted is not None and key not in wanted:
                continue
            try:
                age = now - lease.stat().st_mtime
            except OSError:
                continue  # completed/released under us
            if age <= self.lease_ttl:
                continue
            task = self.task_path(key)
            try:
                if task.exists():
                    # Already re-offered by someone else; dropping the dead
                    # lease is cleanup, not a re-offer — it doesn't count.
                    lease.unlink()
                    continue
                os.rename(lease, task)
            except OSError:
                continue  # lost the race to another policing process
            released += 1
        return released

    def failure_for(self, spec: TrialSpec | str) -> dict | None:
        """The failure log for a trial, or ``None`` if it has not failed."""
        try:
            return json.loads(self.failure_path(spec).read_text())
        except OSError:
            return None
        except ValueError:
            return None  # half-written by a crashed worker: not actionable

    def wait(
        self,
        specs: Sequence[TrialSpec],
        cache: ResultCache,
        timeout: float | None = None,
        poll_initial: float = 0.05,
        poll_max: float = 1.0,
        on_result: Callable[[TrialSpec, RunHistory], None] | None = None,
        on_released: Callable[[int], None] | None = None,
    ) -> dict[str, RunHistory]:
        """Block until every spec's result is in *cache*; return key->history.

        Polls with exponential backoff (*poll_initial* doubling-ish up to
        *poll_max* seconds), re-releasing expired leases and re-enqueueing
        trials that disappeared from the spool entirely along the way.

        Raises :class:`RemoteTrialError` as soon as any trial has a failure
        log, and :class:`SpoolTimeout` if *timeout* seconds pass with trials
        still outstanding *and no live worker lease on any of them* — a
        fresh heartbeat extends the deadline, so the timeout detects
        abandonment, not trials that simply run long (``None`` waits
        forever — only sensible when workers are known to be running).

        *on_result* fires once per completed trial (the engine counts
        remote completions with it); *on_released* fires with the number of
        leases re-offered by each expiry sweep.
        """
        pending: dict[str, TrialSpec] = {spec.key: spec for spec in specs}
        histories: dict[str, RunHistory] = {}
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        interval = poll_initial
        while pending:
            progressed = False
            # One listing of the failure directory per round; per-pending-key
            # probes (stat storms at up to 20 Hz early in the backoff) would
            # hammer a shared fileserver on paper-scale grids.
            failed_keys = self._key_snapshot(self.failed_dir, "*.json")
            for key in list(pending):
                # Cheap existence probe first: cache.get unpickles a whole
                # RunHistory, which we only want to pay on completion.
                if cache.path_for(key).exists():
                    history = cache.get(key)
                    if history is not None:
                        spec = pending.pop(key)
                        histories[key] = history
                        if on_result is not None:
                            on_result(spec, history)
                        progressed = True
                        continue
                    # get() just quarantined a corrupt entry: still pending;
                    # the self-healing pass below re-offers it.
                if key in failed_keys:
                    failure = self.failure_for(key)
                    if failure is not None:
                        raise RemoteTrialError(
                            key,
                            failure.get("worker", "<unknown>"),
                            failure.get("error", "<unknown>"),
                            failure.get("traceback", ""),
                        )
            if not pending:
                break
            released = self.release_expired(keys=pending)
            if released and on_released is not None:
                on_released(released)
            task_keys = self._key_snapshot(self.tasks_dir, "*.task")
            leased_keys = self._key_snapshot(self.leases_dir, "*.lease")
            for key, spec in pending.items():
                # Vanished entirely (quarantined task file, manual spool
                # wipe, the complete/release unlink races): re-offer it from
                # the spec we still hold, making the protocol self-healing.
                # A key with a failure log is NOT re-offered — enqueue would
                # clear the log a worker may have written since this round's
                # failure check, and the next round must raise it instead.
                if key in task_keys or key in leased_keys:
                    continue
                if not cache.path_for(key).exists() and self.failure_for(key) is None:
                    self.enqueue(spec)
            if progressed:
                interval = poll_initial
                continue
            if deadline is not None and time.monotonic() >= deadline:
                if self._any_fresh_lease(pending):
                    # A worker is actively heartbeating one of our trials:
                    # the timeout guards against *abandonment*, not against
                    # trials longer than the timeout — push the deadline.
                    deadline = time.monotonic() + float(timeout)
                else:
                    raise SpoolTimeout(
                        f"{len(pending)} trial(s) still outstanding after "
                        f"{timeout:g}s with no live worker lease — are any "
                        f"workers running against {self.root}? "
                        "(python -m repro.runner.worker --spool ...)"
                    )
            time.sleep(interval)
            interval = min(interval * 1.5, poll_max)
        return histories

    def _key_snapshot(self, directory: Path, pattern: str) -> set[str]:
        """Content keys present in one spool directory (single listing)."""
        if not directory.is_dir():
            return set()
        return {self._entry_key(path) for path in directory.glob(pattern)}

    def _any_fresh_lease(self, keys: Sequence[str]) -> bool:
        """Whether any of *keys* is claimed with an unexpired heartbeat."""
        if not self.leases_dir.is_dir():
            return False
        now = time.time()
        for lease in self.leases_dir.glob("*.lease"):
            if self._entry_key(lease) not in keys:
                continue
            try:
                if now - lease.stat().st_mtime <= self.lease_ttl:
                    return True
            except OSError:
                continue
        return False

    # -- worker side ------------------------------------------------------

    def lease_next(self, worker_id: str = "") -> LeasedTrial | None:
        """Atomically claim the next pending trial, or ``None`` if idle.

        Tasks are attempted in sorted filename order; losing a rename race
        to another worker just moves on to the next candidate.  The claim
        lands under ``<key>.<worker>.<token>.lease`` — unique per claim, so
        the lease file doubles as an ownership certificate (and records who
        holds the trial, for spool post-mortems).  A task file that cannot
        be unpickled is quarantined (renamed to ``.corrupt``) so it cannot
        wedge the queue — the submitter's self-healing re-enqueue restores
        a fresh copy.
        """
        if not self.tasks_dir.is_dir():
            return None
        holder = re.sub(r"[^A-Za-z0-9_-]+", "-", worker_id) or "anon"
        for task in sorted(self.tasks_dir.glob("*.task")):
            key = task.stem
            lease = self.leases_dir / f"{key}.{holder}.{uuid.uuid4().hex[:8]}.lease"
            try:
                os.rename(task, lease)
            except OSError:
                continue  # another worker won this task
            try:
                spec = pickle.loads(lease.read_bytes())
            except Exception:
                spec = None
            if not isinstance(spec, TrialSpec):
                try:
                    os.replace(lease, lease.with_name(lease.name + ".corrupt"))
                except OSError:
                    pass
                continue
            return LeasedTrial(key=key, spec=spec, lease_path=lease)
        return None

    def heartbeat(self, lease: LeasedTrial) -> None:
        """Refresh the lease's liveness signal (touch its mtime)."""
        try:
            os.utime(lease.lease_path)
        except OSError:
            pass  # lease was released/expired under us; expiry handles it

    def complete(self, lease: LeasedTrial) -> None:
        """Drop the lease after the result reached the cache."""
        try:
            lease.lease_path.unlink()
        except OSError:
            pass

    def release(self, lease: LeasedTrial) -> None:
        """Voluntarily re-offer a claimed trial (worker shutting down)."""
        task = self.task_path(lease.key)
        try:
            if task.exists():
                lease.lease_path.unlink()
            else:
                os.rename(lease.lease_path, task)
        except OSError:
            pass

    def fail(self, lease: LeasedTrial, worker_id: str, error: BaseException, traceback_text: str) -> None:
        """Record a trial failure and drop the lease — if the claim is still ours.

        The failure log (not the exception) is what crosses the machine
        boundary; :meth:`wait` re-raises it as :class:`RemoteTrialError`.

        A revoked claim (the lease file is gone: the TTL expired and the
        trial was re-offered while this worker was busy dying) records
        nothing: the failure may be local to this worker, and aborting the
        submitter would discard a healthy retry already in flight.  The
        check races revocation by design — the window shrinks from the
        whole trial duration to one stat call, and the residual race only
        re-raises a genuine failure one retry later.
        """
        if not lease.lease_path.exists():
            return
        self._ensure_dirs()
        payload = {
            "key": lease.key,
            "worker": worker_id,
            "error": repr(error),
            "traceback": traceback_text,
        }
        atomic_write_bytes(
            self.failure_path(lease.key),
            json.dumps(payload, indent=2).encode("utf-8"),
        )
        self.complete(lease)

    # -- introspection ----------------------------------------------------

    def counts(self) -> dict[str, int]:
        """``{"tasks": ..., "leases": ..., "failed": ...}`` snapshot."""
        return {
            "tasks": sum(1 for _ in self.tasks_dir.glob("*.task"))
            if self.tasks_dir.is_dir()
            else 0,
            "leases": sum(1 for _ in self.leases_dir.glob("*.lease"))
            if self.leases_dir.is_dir()
            else 0,
            "failed": sum(1 for _ in self.failed_dir.glob("*.json"))
            if self.failed_dir.is_dir()
            else 0,
        }
