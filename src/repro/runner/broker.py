"""Compatibility alias: ``repro.runner.broker`` *is* the spool backend module.

The broker grew into the :mod:`repro.runner.brokers` package (abstract
protocol + filesystem spool + SQLite backend); this module keeps the
pre-split import path alive by replacing itself in ``sys.modules`` with
:mod:`repro.runner.brokers.spool`.  Self-replacement (rather than
re-exporting names) means module-level *attribute assignment* keeps working
too — ``monkeypatch.setattr("repro.runner.broker.atomic_write_bytes", ...)``
patches the module the implementation actually reads from.
"""

from __future__ import annotations

import sys

from repro.runner.brokers import spool as _spool

sys.modules[__name__] = _spool
