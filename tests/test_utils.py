"""Tests for shared utilities (RNG helpers and validation)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    check_1d,
    check_2d,
    check_consistent_length,
    check_labels,
    check_probability_matrix,
    ensure_rng,
    spawn_seeds,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_negative_seed_raises(self):
        with pytest.raises(ValueError):
            ensure_rng(-1)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnSeeds:
    def test_returns_requested_count(self):
        assert len(spawn_seeds(0, 5)) == 5

    def test_deterministic(self):
        assert spawn_seeds(7, 3) == spawn_seeds(7, 3)

    def test_children_are_distinct(self):
        seeds = spawn_seeds(0, 10)
        assert len(set(seeds)) == 10

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, 0)


class TestValidation:
    def test_check_1d_accepts_lists(self):
        assert check_1d([1, 2, 3]).shape == (3,)

    def test_check_1d_rejects_2d(self):
        with pytest.raises(ValueError):
            check_1d(np.zeros((2, 2)))

    def test_check_2d_rejects_nan(self):
        with pytest.raises(ValueError):
            check_2d(np.array([[1.0, np.nan]]))

    def test_check_2d_rejects_empty(self):
        with pytest.raises(ValueError):
            check_2d(np.empty((0, 3)))

    def test_check_consistent_length(self):
        check_consistent_length([1, 2], [3, 4])
        with pytest.raises(ValueError):
            check_consistent_length([1, 2], [3])

    def test_check_labels_accepts_valid(self):
        labels = check_labels([0, 1, 1], n_classes=2)
        assert labels.dtype.kind == "i"

    def test_check_labels_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_labels([0, 3], n_classes=2)

    def test_check_labels_rejects_negative(self):
        with pytest.raises(ValueError):
            check_labels([-1, 0])

    def test_check_labels_rejects_non_integer(self):
        with pytest.raises(ValueError):
            check_labels([0.5, 1.0])

    def test_check_probability_matrix_valid(self):
        check_probability_matrix(np.array([[0.3, 0.7], [0.5, 0.5]]))

    def test_check_probability_matrix_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.array([[0.3, 0.3]]))
        with pytest.raises(ValueError):
            check_probability_matrix(np.array([[1.2, -0.2]]))


@given(st.integers(0, 2**31 - 1), st.integers(1, 20))
def test_spawn_seeds_property(base_seed, n):
    """Spawned seeds are deterministic, non-negative and of the right count."""
    seeds = spawn_seeds(base_seed, n)
    assert len(seeds) == n
    assert all(seed >= 0 for seed in seeds)
    assert seeds == spawn_seeds(base_seed, n)
