"""Tests for the train/validation/test split utility."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.models import train_valid_test_split


class TestTrainValidTestSplit:
    def test_partitions_every_index_exactly_once(self):
        train, valid, test = train_valid_test_split(100, random_state=0)
        combined = np.concatenate([train, valid, test])
        assert sorted(combined.tolist()) == list(range(100))

    def test_split_sizes_follow_fractions(self):
        train, valid, test = train_valid_test_split(1000, 0.1, 0.1, random_state=0)
        assert len(valid) == 100
        assert len(test) == 100
        assert len(train) == 800

    def test_reproducible_with_same_seed(self):
        first = train_valid_test_split(50, random_state=42)
        second = train_valid_test_split(50, random_state=42)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        first = train_valid_test_split(200, random_state=1)
        second = train_valid_test_split(200, random_state=2)
        assert not np.array_equal(first[0], second[0])

    def test_stratified_split_preserves_class_ratio(self, rng):
        labels = np.array([0] * 80 + [1] * 20)
        train, valid, test = train_valid_test_split(
            100, 0.2, 0.2, stratify=labels, random_state=0
        )
        for split in (train, valid, test):
            ratio = np.mean(labels[split] == 1)
            assert 0.1 <= ratio <= 0.3

    def test_invalid_fractions_raise(self):
        with pytest.raises(ValueError):
            train_valid_test_split(10, 0.6, 0.6)

    def test_zero_samples_raise(self):
        with pytest.raises(ValueError):
            train_valid_test_split(0)

    def test_stratify_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            train_valid_test_split(10, stratify=np.zeros(5))


@given(st.integers(10, 300), st.integers(0, 2**31 - 1))
def test_split_is_a_partition_property(n_samples, seed):
    """Splits are disjoint and their union is the full index range."""
    train, valid, test = train_valid_test_split(n_samples, random_state=seed)
    all_indices = np.concatenate([train, valid, test])
    assert len(all_indices) == n_samples
    assert len(np.unique(all_indices)) == n_samples
