"""Tests for the StandardScaler."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.models import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.standard_normal((200, 3)) * 5 + 10
        transformed = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(transformed.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_not_divided_by_zero(self):
        X = np.column_stack([np.full(10, 7.0), np.arange(10, dtype=float)])
        transformed = StandardScaler().fit_transform(X)
        assert np.isfinite(transformed).all()
        np.testing.assert_allclose(transformed[:, 0], 0.0)

    def test_transform_uses_training_statistics(self, rng):
        X_train = rng.standard_normal((100, 2))
        X_test = rng.standard_normal((20, 2)) + 5.0
        scaler = StandardScaler().fit(X_train)
        transformed = scaler.transform(X_test)
        # Test data mean stays far from zero because train stats are reused.
        assert transformed.mean() > 2.0

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(rng.standard_normal((3, 2)))

    def test_feature_count_mismatch_raises(self, rng):
        scaler = StandardScaler().fit(rng.standard_normal((10, 3)))
        with pytest.raises(ValueError):
            scaler.transform(rng.standard_normal((5, 4)))

    def test_with_mean_false_keeps_offset(self, rng):
        X = rng.standard_normal((50, 2)) + 100.0
        transformed = StandardScaler(with_mean=False).fit_transform(X)
        assert transformed.mean() > 10.0


@given(
    arrays(
        dtype=float,
        shape=st.tuples(st.integers(5, 30), st.integers(1, 5)),
        elements=st.floats(-1e3, 1e3, allow_nan=False),
    )
)
def test_transform_is_affine_invertible_property(X):
    """x == inverse(standardise(x)) up to floating error (affine invertibility)."""
    scaler = StandardScaler().fit(X)
    transformed = scaler.transform(X)
    recovered = transformed * scaler.scale_ + scaler.mean_
    np.testing.assert_allclose(recovered, X, atol=1e-6)
