"""Tests for classification metrics (including abstain handling)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.models.metrics import (
    accuracy_score,
    confusion_matrix,
    coverage_score,
    f1_score,
    log_loss,
    precision_score,
    recall_score,
)


class TestAccuracyScore:
    def test_perfect_predictions(self):
        assert accuracy_score([0, 1, 1, 0], [0, 1, 1, 0]) == 1.0

    def test_all_wrong(self):
        assert accuracy_score([0, 1], [1, 0]) == 0.0

    def test_partial(self):
        assert accuracy_score([0, 1, 1, 0], [0, 1, 0, 1]) == 0.5

    def test_abstain_counts_as_error_by_default(self):
        assert accuracy_score([0, 1], [0, -1]) == 0.5

    def test_abstain_ignored_when_requested(self):
        assert accuracy_score([0, 1, 1], [0, -1, -1], ignore_abstain=True) == 1.0

    def test_all_abstain_with_ignore_returns_zero(self):
        assert accuracy_score([0, 1], [-1, -1], ignore_abstain=True) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])


class TestCoverageScore:
    def test_full_coverage(self):
        assert coverage_score([0, 1, 1]) == 1.0

    def test_partial_coverage(self):
        assert coverage_score([0, -1, 1, -1]) == 0.5

    def test_empty_input(self):
        assert coverage_score(np.array([])) == 0.0


class TestPrecisionRecallF1:
    def test_precision_simple(self):
        # Two predicted positive, one of them correct.
        assert precision_score([1, 0, 1, 0], [1, 1, 0, 0]) == 0.5

    def test_recall_simple(self):
        # Two actual positives, one recovered.
        assert recall_score([1, 0, 1, 0], [1, 1, 0, 0]) == 0.5

    def test_precision_no_predictions_is_zero(self):
        assert precision_score([1, 1], [0, 0]) == 0.0

    def test_recall_no_positives_is_zero(self):
        assert recall_score([0, 0], [1, 1]) == 0.0

    def test_f1_harmonic_mean(self):
        y_true = [1, 0, 1, 0]
        y_pred = [1, 1, 0, 0]
        precision = precision_score(y_true, y_pred)
        recall = recall_score(y_true, y_pred)
        expected = 2 * precision * recall / (precision + recall)
        assert f1_score(y_true, y_pred) == pytest.approx(expected)

    def test_f1_zero_when_no_overlap(self):
        assert f1_score([1, 1], [0, 0]) == 0.0


class TestConfusionMatrix:
    def test_shape_and_counts(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] == 1
        assert matrix[0, 1] == 1
        assert matrix[1, 1] == 2
        assert matrix[1, 0] == 0

    def test_abstain_excluded(self):
        matrix = confusion_matrix([0, 1], [-1, 1], n_classes=2)
        assert matrix.sum() == 1

    def test_explicit_n_classes(self):
        matrix = confusion_matrix([0, 1], [0, 1], n_classes=4)
        assert matrix.shape == (4, 4)


class TestLogLoss:
    def test_confident_correct_is_small(self):
        proba = np.array([[0.99, 0.01], [0.01, 0.99]])
        assert log_loss([0, 1], proba) < 0.02

    def test_confident_wrong_is_large(self):
        proba = np.array([[0.01, 0.99]])
        assert log_loss([0], proba) > 4.0

    def test_uniform_equals_log_c(self):
        proba = np.full((10, 2), 0.5)
        assert log_loss(np.zeros(10, dtype=int), proba) == pytest.approx(np.log(2))

    def test_rejects_1d_proba(self):
        with pytest.raises(ValueError):
            log_loss([0, 1], [0.5, 0.5])


@given(
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50),
    st.lists(st.integers(min_value=-1, max_value=3), min_size=1, max_size=50),
)
def test_accuracy_is_bounded_property(y_true, y_pred):
    """Accuracy always lies in [0, 1] for equal-length inputs."""
    size = min(len(y_true), len(y_pred))
    score = accuracy_score(y_true[:size], y_pred[:size])
    assert 0.0 <= score <= 1.0


@given(st.lists(st.integers(min_value=-1, max_value=3), min_size=1, max_size=50))
def test_coverage_matches_manual_count_property(y_pred):
    """Coverage equals the fraction of non-abstain entries."""
    expected = sum(1 for value in y_pred if value != -1) / len(y_pred)
    assert coverage_score(y_pred) == pytest.approx(expected)
