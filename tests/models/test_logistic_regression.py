"""Tests for the L-BFGS multinomial logistic regression."""

import numpy as np
import pytest

from repro.models import LogisticRegression


def _separable_data(rng, n=200, n_features=5):
    X = rng.standard_normal((n, n_features))
    weights = np.zeros(n_features)
    weights[0] = 3.0
    y = (X @ weights + 0.1 * rng.standard_normal(n) > 0).astype(int)
    return X, y


class TestBinaryClassification:
    def test_learns_separable_problem(self, rng):
        X, y = _separable_data(rng)
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_predict_proba_rows_sum_to_one(self, rng):
        X, y = _separable_data(rng)
        proba = LogisticRegression().fit(X, y).predict_proba(X)
        assert proba.shape == (len(X), 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_predict_matches_argmax_of_proba(self, rng):
        X, y = _separable_data(rng)
        model = LogisticRegression().fit(X, y)
        np.testing.assert_array_equal(
            model.predict(X), np.argmax(model.predict_proba(X), axis=1)
        )

    def test_regularisation_shrinks_weights(self, rng):
        X, y = _separable_data(rng)
        strong = LogisticRegression(C=0.01).fit(X, y)
        weak = LogisticRegression(C=100.0).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_sample_weight_changes_fit(self, rng):
        X, y = _separable_data(rng, n=100)
        weights = np.where(y == 1, 10.0, 0.1)
        weighted = LogisticRegression().fit(X, y, sample_weight=weights)
        unweighted = LogisticRegression().fit(X, y)
        # Upweighting the positive class must increase predicted positives.
        assert weighted.predict(X).sum() >= unweighted.predict(X).sum()


class TestMulticlass:
    def test_three_class_problem(self, rng):
        n = 300
        X = rng.standard_normal((n, 2))
        y = np.zeros(n, dtype=int)
        y[X[:, 0] > 0.5] = 1
        y[X[:, 0] < -0.5] = 2
        model = LogisticRegression().fit(X, y)
        assert model.n_classes_ == 3
        assert model.score(X, y) > 0.85

    def test_explicit_class_count_stabilises_shape(self, rng):
        X = rng.standard_normal((20, 3))
        y = np.zeros(20, dtype=int)
        y[:5] = 1
        model = LogisticRegression(n_classes=4).fit(X, y)
        assert model.predict_proba(X).shape == (20, 4)


class TestDegenerateInputs:
    def test_single_class_training_set(self, rng):
        X = rng.standard_normal((10, 3))
        y = np.ones(10, dtype=int)
        model = LogisticRegression(n_classes=2).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (10, 2)
        assert np.all(model.predict(X) == 1)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_unfitted_predict_raises(self, rng):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(rng.standard_normal((3, 2)))

    def test_feature_mismatch_raises(self, rng):
        X, y = _separable_data(rng, n=50)
        model = LogisticRegression().fit(X, y)
        with pytest.raises(ValueError):
            model.predict_proba(rng.standard_normal((3, X.shape[1] + 1)))

    def test_invalid_C_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression(C=0.0)

    def test_negative_labels_raise(self, rng):
        X = rng.standard_normal((5, 2))
        with pytest.raises(ValueError):
            LogisticRegression().fit(X, [-1, 0, 1, 0, 1])

    def test_nan_features_raise(self):
        X = np.array([[np.nan, 1.0], [0.0, 1.0]])
        with pytest.raises(ValueError):
            LogisticRegression().fit(X, [0, 1])


class TestWarmStart:
    def test_warm_probas_match_cold_within_tolerance(self, rng):
        """The objective is convex: the initialiser must not move the optimum."""
        X, y = _separable_data(rng)
        cold = LogisticRegression().fit(X, y)
        warm = LogisticRegression().fit(
            X, y, coef_init=cold.coef_, intercept_init=cold.intercept_
        )
        assert warm.warm_started_
        np.testing.assert_allclose(
            warm.predict_proba(X), cold.predict_proba(X), atol=1e-4
        )

    def test_warm_start_from_earlier_fit_on_grown_data(self, rng):
        """The ActiveDP pattern: refit on a grown pseudo-labelled set."""
        X, y = _separable_data(rng, n=300)
        early = LogisticRegression().fit(X[:150], y[:150])
        warm = LogisticRegression().fit(
            X, y, coef_init=early.coef_, intercept_init=early.intercept_
        )
        cold = LogisticRegression().fit(X, y)
        assert warm.warm_started_
        np.testing.assert_allclose(
            warm.predict_proba(X), cold.predict_proba(X), atol=1e-4
        )

    def test_mismatched_coef_shape_degrades_to_cold(self, rng):
        X, y = _separable_data(rng)
        warm = LogisticRegression().fit(X, y, coef_init=np.zeros((2, 3)))
        cold = LogisticRegression().fit(X, y)
        assert not warm.warm_started_
        np.testing.assert_array_equal(warm.coef_, cold.coef_)

    def test_non_finite_coef_init_degrades_to_cold(self, rng):
        X, y = _separable_data(rng)
        bad = np.full((2, X.shape[1]), np.nan)
        warm = LogisticRegression().fit(X, y, coef_init=bad)
        assert not warm.warm_started_

    def test_single_class_fit_ignores_init(self, rng):
        X = rng.standard_normal((10, 3))
        model = LogisticRegression(n_classes=2).fit(
            X, np.zeros(10, dtype=int), coef_init=np.ones((2, 3))
        )
        assert not model.warm_started_
        np.testing.assert_array_equal(model.coef_, 0.0)

    def test_no_init_reports_cold(self, rng):
        X, y = _separable_data(rng)
        assert not LogisticRegression().fit(X, y).warm_started_
