"""Tests for the Gaussian naive Bayes classifier."""

import numpy as np
import pytest

from repro.models import GaussianNaiveBayes


class TestGaussianNaiveBayes:
    def test_learns_shifted_gaussians(self, rng):
        n = 300
        y = rng.integers(0, 2, n)
        X = rng.standard_normal((n, 3)) + 3.0 * y[:, None]
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_proba_rows_sum_to_one(self, rng):
        X = rng.standard_normal((50, 2))
        y = rng.integers(0, 2, 50)
        proba = GaussianNaiveBayes().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_respects_fixed_class_count(self, rng):
        X = rng.standard_normal((30, 2))
        y = np.zeros(30, dtype=int)
        y[:10] = 1
        model = GaussianNaiveBayes(n_classes=3).fit(X, y)
        assert model.predict_proba(X).shape == (30, 3)

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            GaussianNaiveBayes().predict_proba(rng.standard_normal((3, 2)))

    def test_sample_weights_shift_decision(self, rng):
        n = 200
        y = rng.integers(0, 2, n)
        X = rng.standard_normal((n, 2)) + 1.0 * y[:, None]
        heavy_on_one = np.where(y == 1, 5.0, 1.0)
        weighted = GaussianNaiveBayes().fit(X, y, sample_weight=heavy_on_one)
        assert weighted.class_prior_[1] > 0.5

    def test_constant_feature_does_not_crash(self, rng):
        X = np.column_stack([np.ones(40), rng.standard_normal(40)])
        y = (X[:, 1] > 0).astype(int)
        model = GaussianNaiveBayes().fit(X, y)
        assert np.isfinite(model.predict_proba(X)).all()
