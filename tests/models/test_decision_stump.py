"""Tests for the decision-stump classifier."""

import numpy as np
import pytest

from repro.models import DecisionStump


class TestDecisionStump:
    def test_finds_informative_feature(self, rng):
        n = 300
        y = rng.integers(0, 2, n)
        X = rng.standard_normal((n, 4))
        X[:, 2] += 4.0 * y  # only feature 2 carries signal
        stump = DecisionStump().fit(X, y)
        assert stump.feature_ == 2
        assert stump.score(X, y) > 0.9

    def test_proba_rows_sum_to_one(self, rng):
        X = rng.standard_normal((60, 2))
        y = (X[:, 0] > 0).astype(int)
        proba = DecisionStump().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_sample_weights_respected(self, rng):
        # Feature 0 separates a heavy group, feature 1 a light group.
        n = 200
        y = rng.integers(0, 2, n)
        X = rng.standard_normal((n, 2))
        X[:, 0] += 2.0 * y
        X[:, 1] += 2.0 * (1 - y)
        weights = np.ones(n)
        stump = DecisionStump().fit(X, y, sample_weight=weights)
        assert stump.feature_ in (0, 1)

    def test_invalid_threshold_count_raises(self):
        with pytest.raises(ValueError):
            DecisionStump(n_thresholds=0)

    def test_fixed_class_count(self, rng):
        X = rng.standard_normal((30, 2))
        y = (X[:, 0] > 0).astype(int)
        stump = DecisionStump(n_classes=3).fit(X, y)
        assert stump.predict_proba(X).shape == (30, 3)
