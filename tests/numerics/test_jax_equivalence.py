"""Numpy-vs-JAX backend equivalence (skipped cleanly when jax is absent).

Every test here pins the contract stated in ``docs/numerics.md``: the JAX
backend computes in float64 (``jax_enable_x64`` is enabled on construction)
and agrees with the numpy reference to float64 tolerances on the label-model
EM fits, the graphical-lasso sweeps, LabelPick's scoring reductions and an
end-to-end framework run.
"""

import importlib.util

import numpy as np
import pytest

from repro.graphical.glasso import graphical_lasso
from repro.label_models import GenerativeLabelModel, MeTaLLabelModel
from repro.labeling.lf import ABSTAIN
from repro.numerics import get_backend
from repro.numerics.scores import labelpick_score_fn

HAS_JAX = importlib.util.find_spec("jax") is not None

pytestmark = pytest.mark.skipif(
    not HAS_JAX, reason="jax not installed (the numpy reference needs nothing)"
)

RTOL = 1e-7
ATOL = 1e-9

MODELS = {"generative": GenerativeLabelModel, "metal": MeTaLLabelModel}


def _matrix(n=200, k=9, n_classes=2, seed=11):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_classes, size=n)
    fired = rng.random((n, k)) < rng.uniform(0.25, 0.6, size=k)
    correct = rng.random((n, k)) < rng.uniform(0.6, 0.9, size=k)
    offsets = rng.integers(1, n_classes, size=(n, k), endpoint=True)
    votes = np.where(correct, labels[:, None], (labels[:, None] + offsets) % n_classes)
    return np.where(fired, votes, ABSTAIN), labels


class TestBackendContract:
    def test_jax_backend_enables_float64(self):
        backend = get_backend("jax")
        assert backend.jit_enabled
        assert backend.to_numpy(backend.asarray([1.5])).dtype == np.float64

    def test_set_at_is_functional(self):
        backend = get_backend("jax")
        array = backend.asarray([0.0, 0.0])
        out = backend.set_at(array, 1, 3.0)
        np.testing.assert_array_equal(backend.to_numpy(out), [0.0, 3.0])
        np.testing.assert_array_equal(backend.to_numpy(array), [0.0, 0.0])


class TestLabelModelEquivalence:
    @pytest.mark.parametrize("name", sorted(MODELS))
    @pytest.mark.parametrize("early_stop", [False, True])
    def test_fit_and_posteriors_agree(self, name, early_stop):
        matrix, _ = _matrix()
        fits = {
            backend: MODELS[name](
                n_classes=2, backend=backend, early_stop=early_stop
            ).fit(matrix)
            for backend in ("numpy", "jax")
        }
        np.testing.assert_allclose(
            fits["jax"].predict_proba(matrix),
            fits["numpy"].predict_proba(matrix),
            rtol=RTOL,
            atol=ATOL,
        )
        assert fits["jax"].n_iter_ == fits["numpy"].n_iter_
        assert fits["jax"].converged_ == fits["numpy"].converged_

    def test_generative_cpts_agree(self):
        matrix, _ = _matrix()
        numpy_fit = GenerativeLabelModel(backend="numpy").fit(matrix)
        jax_fit = GenerativeLabelModel(backend="jax").fit(matrix)
        np.testing.assert_allclose(jax_fit.cpts_, numpy_fit.cpts_, rtol=RTOL, atol=ATOL)

    def test_metal_parameters_agree(self):
        matrix, _ = _matrix()
        numpy_fit = MeTaLLabelModel(backend="numpy").fit(matrix)
        jax_fit = MeTaLLabelModel(backend="jax").fit(matrix)
        np.testing.assert_allclose(
            jax_fit.accuracies_, numpy_fit.accuracies_, rtol=RTOL, atol=ATOL
        )
        np.testing.assert_allclose(
            jax_fit.propensities_, numpy_fit.propensities_, rtol=RTOL, atol=ATOL
        )

    def test_warm_started_refit_agrees(self):
        matrix, _ = _matrix(k=10)
        for name, cls in MODELS.items():
            seed = cls(n_classes=2).fit(matrix[:, :-1])
            warm = seed.export_warm_start(list(range(9)) + [-1])
            numpy_fit = cls(n_classes=2, backend="numpy").fit(matrix, warm_start=warm)
            jax_fit = cls(n_classes=2, backend="jax").fit(matrix, warm_start=warm)
            np.testing.assert_allclose(
                jax_fit.predict_proba(matrix),
                numpy_fit.predict_proba(matrix),
                rtol=RTOL,
                atol=ATOL,
                err_msg=name,
            )


class TestGlassoEquivalence:
    def test_precisions_agree(self):
        rng = np.random.default_rng(2)
        data = rng.multivariate_normal(
            np.zeros(6), np.eye(6) + 0.3, size=400
        )
        numpy_result = graphical_lasso(data, alpha=0.05, backend="numpy")
        jax_result = graphical_lasso(data, alpha=0.05, backend="jax")
        np.testing.assert_allclose(
            jax_result.precision, numpy_result.precision, rtol=1e-6, atol=1e-8
        )
        assert jax_result.n_iter == numpy_result.n_iter
        assert jax_result.converged == numpy_result.converged


class TestScoreEquivalence:
    def test_labelpick_scores_agree(self):
        matrix, labels = _matrix()
        numpy_backend = get_backend("numpy")
        jax_backend = get_backend("jax")
        ref_fired, ref_acc = labelpick_score_fn(numpy_backend)(matrix, labels, ABSTAIN)
        jit_fired, jit_acc = labelpick_score_fn(jax_backend)(
            jax_backend.asarray(matrix, dtype=int),
            jax_backend.asarray(labels, dtype=int),
            ABSTAIN,
        )
        np.testing.assert_array_equal(jax_backend.to_numpy(jit_fired), ref_fired)
        np.testing.assert_allclose(
            jax_backend.to_numpy(jit_acc), ref_acc, rtol=RTOL, atol=ATOL
        )


class TestFrameworkEquivalence:
    def test_end_to_end_run_agrees_on_headline_metrics(self, tiny_text_split):
        """A full interactive run on the JAX backend matches numpy closely."""
        from repro.core import ActiveDP, ActiveDPConfig
        from repro.simulation import SimulatedUser

        qualities = {}
        for backend in ("numpy", "jax"):
            config = ActiveDPConfig.for_dataset_kind(
                "text", min_labelpick_queries=5, backend=backend
            )
            framework = ActiveDP(
                tiny_text_split.train, tiny_text_split.valid, config, random_state=0
            )
            user = SimulatedUser(tiny_text_split.train, random_state=0)
            framework.run(user, 20)
            qualities[backend] = framework.label_quality()
        assert qualities["jax"]["accuracy"] == pytest.approx(
            qualities["numpy"]["accuracy"], abs=1e-6
        )
        assert qualities["jax"]["coverage"] == pytest.approx(
            qualities["numpy"]["coverage"], abs=1e-6
        )
