"""Tests for the backend-pure EM steps, padding, scoring and stopping rules."""

import numpy as np
import pytest

from repro.label_models import GenerativeLabelModel, MeTaLLabelModel
from repro.labeling.lf import ABSTAIN
from repro.numerics import RelativeLossStop, get_backend, relative_change
from repro.numerics.em import (
    MIN_COLUMN_BUCKET,
    column_bucket,
    generative_masks,
    generative_posterior,
    generative_step_fn,
    metal_masks,
    metal_posterior,
    metal_step_fn,
    pad_columns,
)
from repro.numerics.scores import labelpick_score_fn

N_CLASSES = 2


@pytest.fixture()
def matrix():
    rng = np.random.default_rng(3)
    labels = rng.integers(0, N_CLASSES, size=60)
    fired = rng.random((60, 7)) < 0.5
    correct = rng.random((60, 7)) < 0.75
    votes = np.where(correct, labels[:, None], 1 - labels[:, None])
    return np.where(fired, votes, ABSTAIN)


class TestBucketsAndPadding:
    def test_column_bucket_is_next_power_of_two_with_floor(self):
        assert column_bucket(1) == MIN_COLUMN_BUCKET
        assert column_bucket(8) == 8
        assert column_bucket(9) == 16
        assert column_bucket(40) == 64
        assert column_bucket(64) == 64

    def test_pad_columns_zero_pads_trailing_axis_only(self):
        array = np.ones((3, 4, 5))
        padded = pad_columns(array, 8)
        assert padded.shape == (3, 4, 8)
        np.testing.assert_array_equal(padded[..., :5], array)
        np.testing.assert_array_equal(padded[..., 5:], 0.0)

    def test_pad_columns_noop_when_already_wide_enough(self):
        array = np.ones((2, 5))
        assert pad_columns(array, 5) is array
        assert pad_columns(array, 3) is array

    def test_padded_generative_step_matches_unpadded_after_slice(self, matrix):
        """All-zero padded columns must not perturb either EM step."""
        model = GenerativeLabelModel(n_classes=N_CLASSES)
        outcomes = np.where(matrix == ABSTAIN, 0, matrix + 1)
        masks = generative_masks(outcomes, N_CLASSES + 1)
        resp = np.full((matrix.shape[0], N_CLASSES), 0.5)
        log_priors = np.log(np.full(N_CLASSES, 0.5))
        step = generative_step_fn(get_backend("numpy"), N_CLASSES + 1)

        cpts, out_resp, loss = step(masks, resp, log_priors, 1.0)
        padded_cpts, padded_resp, padded_loss = step(
            pad_columns(masks, 16), resp, log_priors, 1.0
        )
        np.testing.assert_allclose(padded_cpts[: matrix.shape[1]], cpts, atol=1e-15)
        np.testing.assert_allclose(padded_resp, out_resp, atol=1e-15)
        assert padded_loss == pytest.approx(loss, abs=1e-12)

    def test_padded_metal_step_matches_unpadded_after_slice(self, matrix):
        n, k = matrix.shape
        fired, not_fired, vote_masks, vote_index = metal_masks(
            matrix, N_CLASSES, ABSTAIN
        )
        never_fired = ~(matrix != ABSTAIN).any(axis=0)
        resp = np.full((n, N_CLASSES), 0.5)
        log_priors = np.log(np.full(N_CLASSES, 0.5))
        step = metal_step_fn(get_backend("numpy"), N_CLASSES)
        args = dict(smoothing=1.0, prior_accuracy=0.7, low=0.55, high=0.98)

        acc, prop, out_resp, loss = step(
            fired, not_fired, vote_masks, vote_index, never_fired,
            resp, log_priors, args["smoothing"], args["prior_accuracy"],
            args["low"], args["high"],
        )
        bucket = 16
        p_acc, p_prop, p_resp, p_loss = step(
            pad_columns(fired, bucket),
            pad_columns(not_fired, bucket),
            pad_columns(vote_masks, bucket),
            pad_columns(vote_index, bucket),
            np.pad(never_fired, (0, bucket - k), constant_values=True),
            resp, log_priors, args["smoothing"], args["prior_accuracy"],
            args["low"], args["high"],
        )
        np.testing.assert_allclose(p_acc[:k], acc, atol=1e-15)
        np.testing.assert_allclose(p_prop[:k], prop, atol=1e-15)
        np.testing.assert_allclose(p_resp, out_resp, atol=1e-15)
        assert p_loss == pytest.approx(loss, abs=1e-12)
        # Padded columns carry the prior accuracy (never fired) and no votes.
        np.testing.assert_array_equal(p_acc[k:], args["prior_accuracy"])


class TestStepsMatchModels:
    """The shared step functions and the model internals must agree exactly."""

    def test_generative_posterior_matches_model_e_step(self, matrix):
        model = GenerativeLabelModel(n_classes=N_CLASSES).fit(matrix)
        outcomes = np.where(matrix == ABSTAIN, 0, matrix + 1)
        np.testing.assert_array_equal(
            generative_posterior(outcomes, model.cpts_, model.class_priors_),
            model._posterior(outcomes, model.cpts_),
        )

    def test_generative_step_composes_m_then_e(self, matrix):
        model = GenerativeLabelModel(n_classes=N_CLASSES).fit(matrix)
        outcomes = np.where(matrix == ABSTAIN, 0, matrix + 1)
        resp = model._posterior(outcomes, model.cpts_)
        step = generative_step_fn(get_backend("numpy"), N_CLASSES + 1)
        log_priors = np.log(np.clip(model.class_priors_, 1e-12, 1.0))

        cpts, new_resp, _ = step(
            generative_masks(outcomes, N_CLASSES + 1), resp, log_priors, model.smoothing
        )
        expected_cpts = model._m_step(outcomes, resp)
        np.testing.assert_allclose(cpts, expected_cpts, atol=1e-15)
        np.testing.assert_allclose(
            new_resp, model._posterior(outcomes, expected_cpts), atol=1e-15
        )

    def test_metal_posterior_matches_model_e_step(self, matrix):
        model = MeTaLLabelModel(n_classes=N_CLASSES).fit(matrix)
        np.testing.assert_array_equal(
            metal_posterior(
                matrix, ABSTAIN, model.accuracies_, model.propensities_,
                model.class_priors_, model.n_classes,
            ),
            model._posterior(matrix),
        )

    def test_metal_step_composes_m_then_e(self, matrix):
        model = MeTaLLabelModel(n_classes=N_CLASSES).fit(matrix)
        resp = model._posterior(matrix)
        fired, not_fired, vote_masks, vote_index = metal_masks(
            matrix, N_CLASSES, ABSTAIN
        )
        never_fired = ~(matrix != ABSTAIN).any(axis=0)
        step = metal_step_fn(get_backend("numpy"), N_CLASSES)
        low, high = model.accuracy_bounds

        acc, prop, new_resp, _ = step(
            fired, not_fired, vote_masks, vote_index, never_fired,
            resp, np.log(np.clip(model.class_priors_, 1e-12, 1.0)),
            model.smoothing, model.prior_accuracy, low, high,
        )
        reference = MeTaLLabelModel(n_classes=N_CLASSES)
        reference.class_priors_ = model.class_priors_
        reference._m_step(matrix, resp)
        np.testing.assert_allclose(acc, reference.accuracies_, atol=1e-15)
        np.testing.assert_allclose(prop, reference.propensities_, atol=1e-15)
        np.testing.assert_allclose(new_resp, reference._posterior(matrix), atol=1e-15)


class TestLabelPickScores:
    def test_scores_match_reference_reductions(self, matrix):
        labels = np.random.default_rng(5).integers(0, N_CLASSES, size=matrix.shape[0])
        backend = get_backend("numpy")
        n_fired, accuracy = labelpick_score_fn(backend)(matrix, labels, ABSTAIN)

        fired = matrix != ABSTAIN
        expected_fired = fired.sum(axis=0)
        expected_correct = (fired & (matrix == labels[:, None])).sum(axis=0)
        np.testing.assert_array_equal(n_fired, expected_fired)
        np.testing.assert_array_equal(
            accuracy, expected_correct / np.maximum(expected_fired, 1)
        )

    def test_score_fn_cached_per_backend(self):
        backend = get_backend("numpy")
        assert labelpick_score_fn(backend) is labelpick_score_fn(backend)


class TestRelativeLossStop:
    def test_first_update_never_stops(self):
        stopper = RelativeLossStop(rtol=1e-3)
        assert not stopper.update(10.0)

    def test_stops_on_small_relative_change(self):
        stopper = RelativeLossStop(rtol=1e-3)
        stopper.update(10.0)
        assert not stopper.update(9.0)
        assert stopper.update(9.0005)

    def test_criterion_is_scale_invariant(self):
        for scale in (1e-6, 1.0, 1e6):
            stopper = RelativeLossStop(rtol=1e-3)
            stopper.update(10.0 * scale)
            assert stopper.update(10.0001 * scale)

    def test_relative_change_guards_zero_previous(self):
        assert relative_change(1.0, 0.0) == 1e12
        assert relative_change(5.0, 10.0) == pytest.approx(0.5)
