"""Tests for the array-backend seam: resolution, registry, capabilities."""

import importlib.util

import numpy as np
import pytest

from repro.core import ActiveDPConfig
from repro.numerics import (
    BACKEND_ENV_VAR,
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
)

HAS_JAX = importlib.util.find_spec("jax") is not None


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend_name() == "numpy"
        assert get_backend().name == "numpy"

    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "jax")
        assert resolve_backend_name("numpy") == "numpy"
        assert get_backend("numpy").name == "numpy"

    def test_env_var_consulted_when_no_name(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend_name() == "numpy"

    def test_names_are_case_insensitive(self):
        assert resolve_backend_name("NumPy") == "numpy"

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            get_backend("tensorflow")

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    @pytest.mark.skipif(HAS_JAX, reason="jax installed; unavailability untestable")
    def test_jax_without_dependency_raises_actionable_error(self):
        with pytest.raises(BackendUnavailableError, match="pip install jax"):
            get_backend("jax")


class TestNumpyBackend:
    def test_reference_capabilities(self):
        backend = get_backend("numpy")
        assert isinstance(backend, NumpyBackend)
        assert backend.xp is np
        assert not backend.jit_enabled

    def test_jit_is_identity(self):
        backend = get_backend("numpy")

        def fn(x):
            return x + 1

        assert backend.jit(fn) is fn

    def test_set_at_mutates_in_place_and_returns(self):
        backend = get_backend("numpy")
        array = np.zeros(3)
        out = backend.set_at(array, 1, 5.0)
        assert out is array
        np.testing.assert_array_equal(array, [0.0, 5.0, 0.0])

    def test_asarray_and_to_numpy_round_trip(self):
        backend = get_backend("numpy")
        out = backend.to_numpy(backend.asarray([1, 2, 3]))
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])


class TestRegistry:
    def test_register_backend_injects_and_replaces(self):
        class Double(NumpyBackend):
            name = "double"

        try:
            register_backend("double", Double)
            assert get_backend("double").name == "double"
            assert "double" in available_backends()
        finally:
            # Drop the test double so other tests never resolve it.
            from repro.numerics import backend as backend_module

            backend_module._FACTORIES.pop("double", None)
            backend_module._INSTANCES.pop("double", None)

    def test_available_backends_lists_numpy_first(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert ("jax" in names) == HAS_JAX

    def test_array_backend_is_abstract(self):
        with pytest.raises(TypeError):
            ArrayBackend()


class TestConfigValidation:
    def test_known_backend_accepted(self):
        assert ActiveDPConfig(backend="numpy").backend == "numpy"
        assert ActiveDPConfig(backend="jax").backend == "jax"
        assert ActiveDPConfig().backend is None

    def test_unknown_backend_rejected_fast(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ActiveDPConfig(backend="tensorflow")
