"""Shared fixtures: small synthetic datasets and label matrices.

Dataset fixtures are session-scoped because generation (and especially
TF-IDF fitting) dominates test runtime; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.datasets.synthetic_tabular import SyntheticTabularConfig, generate_tabular_dataset
from repro.datasets.synthetic_text import SyntheticTextConfig, generate_text_dataset


@pytest.fixture(scope="session")
def text_split():
    """Small text DataSplit (youtube profile) used across test modules."""
    return load_dataset("youtube", scale=0.3, random_state=7)


@pytest.fixture(scope="session")
def tabular_split():
    """Small tabular DataSplit (occupancy profile) used across test modules."""
    return load_dataset("occupancy", scale=0.3, random_state=7)


@pytest.fixture(scope="session")
def tiny_text_split():
    """Very small custom text split for fast framework tests."""
    config = SyntheticTextConfig(
        name="tiny-text",
        n_documents=150,
        signal_words={0: ["good", "great"], 1: ["bad", "awful"]},
        n_signal_words=10,
        signal_strength=0.4,
        noise_strength=0.02,
        n_background_words=60,
        background_words_per_doc=6.0,
    )
    return generate_text_dataset(config, random_state=11)


@pytest.fixture(scope="session")
def tiny_tabular_split():
    """Very small custom tabular split for fast framework tests."""
    config = SyntheticTabularConfig(
        name="tiny-tabular",
        n_samples=150,
        n_informative=3,
        n_noise=1,
        separation=2.5,
    )
    return generate_tabular_dataset(config, random_state=11)


@pytest.fixture()
def rng():
    """Fresh seeded generator per test."""
    return np.random.default_rng(123)


@pytest.fixture()
def simple_label_matrix(rng):
    """Label matrix from 6 conditionally independent LFs plus ground truth.

    Returns ``(matrix, y)`` with accuracies around 0.8 and coverages around
    0.5, suitable for testing label models.
    """
    n = 400
    y = rng.integers(0, 2, n)
    matrix = np.full((n, 6), -1)
    for j in range(6):
        fire = rng.random(n) < 0.5
        correct = rng.random(n) < 0.8
        matrix[fire & correct, j] = y[fire & correct]
        matrix[fire & ~correct, j] = 1 - y[fire & ~correct]
    return matrix, y
