"""Meta-test: the shipped source tree passes its own static analysis.

This is the tier-1 enforcement of the checker suite — the CI job runs the
same CLI, but this test is what makes `pytest` alone catch a violation
introduced by any future PR.
"""

from __future__ import annotations

import json
import subprocess
import sys

from repro.tools.check import all_checkers, default_root, main, run_checks


class TestRepoIsClean:
    def test_full_suite_has_no_unsuppressed_findings(self):
        report = run_checks()
        assert report.findings == [], report.to_text()

    def test_all_five_rule_families_were_enabled(self):
        report = run_checks()
        families = {rule[: len("REPROx")] for rule in report.rules}
        assert {"REPRO1", "REPRO2", "REPRO3", "REPRO4", "REPRO5"} <= families

    def test_cli_exits_zero_on_the_real_tree(self, capsys):
        assert main([]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_module_invocation_works(self):
        # The CI job's exact entry point: `python -m repro.tools.check`.
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(default_root().parent), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools.check", "--format", "json"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["n_findings"] == 0

    def test_every_suppression_in_tree_carries_a_reason(self):
        # Pragmas must say *why*: `# repro: noqa[RULE] -- reason`.  An
        # unreasoned pragma is exactly the reviewer-vigilance hole this
        # subsystem exists to close.
        import re

        root = default_root()
        pragma = re.compile(r"#\s*repro:\s*noqa(?:-file)?\[[A-Z0-9,\s]+\]")
        unreasoned = []
        for path in sorted(root.rglob("*.py")):
            for lineno, line in enumerate(path.read_text().splitlines(), start=1):
                match = pragma.search(line)
                if match and "--" not in line[match.end() :]:
                    unreasoned.append(f"{path.relative_to(root)}:{lineno}")
        assert unreasoned == []

    def test_rule_ids_are_unique_across_families(self):
        seen: dict[str, str] = {}
        for checker in all_checkers():
            for rule in checker.rules:
                assert rule not in seen, (
                    f"{rule} declared by both {seen[rule]} and {checker.name}"
                )
                seen[rule] = checker.name
        assert len(seen) == 13
