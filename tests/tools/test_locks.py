"""Lock-discipline checker (REPRO401/REPRO402): positive and negative fixtures."""

from __future__ import annotations

from repro.tools.check import run_checks
from repro.tools.locks import LockDisciplineChecker


def check(root):
    report = run_checks(root=root, checkers=[LockDisciplineChecker()])
    return [(f.rule, f.path, f.line) for f in report.findings]


class TestGuardedAccess:
    def test_unguarded_read_fires_at_line(self, make_tree):
        root = make_tree(
            {
                "serving/svc.py": """\
                import threading

                class Service:
                    _GUARDED_BY_LOCK = ("_count",)

                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def peek(self):
                        return self._count
                """
            }
        )
        assert check(root) == [("REPRO401", "serving/svc.py", 11)]

    def test_unguarded_write_fires(self, make_tree):
        root = make_tree(
            {
                "serving/svc.py": """\
                import threading

                class Service:
                    _GUARDED_BY_LOCK = ("_count",)

                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        self._count += 1
                """
            }
        )
        assert check(root) == [("REPRO401", "serving/svc.py", 11)]

    def test_access_under_with_lock_is_legal(self, make_tree):
        root = make_tree(
            {
                "serving/svc.py": """\
                import threading

                class Service:
                    _GUARDED_BY_LOCK = ("_count",)

                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1
                            return self._count
                """
            }
        )
        assert check(root) == []

    def test_init_is_exempt(self, make_tree):
        root = make_tree(
            {
                "serving/svc.py": """\
                import threading

                class Service:
                    _GUARDED_BY_LOCK = ("_count",)

                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0
                        self._count += 1
                """
            }
        )
        assert check(root) == []

    def test_locked_marker_opts_method_out(self, make_tree):
        root = make_tree(
            {
                "serving/svc.py": """\
                import threading

                class Service:
                    _GUARDED_BY_LOCK = ("_count",)

                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def _bump_locked(self):  # repro: locked
                        self._count += 1

                    def bump(self):
                        with self._lock:
                            self._bump_locked()
                """
            }
        )
        assert check(root) == []

    def test_declared_lock_context_counts_as_locked(self, make_tree):
        root = make_tree(
            {
                "serving/svc.py": """\
                import threading
                from contextlib import contextmanager

                class Store:
                    _GUARDED_BY_LOCK = ("_conn",)
                    _LOCK_CONTEXTS = ("_tx",)

                    def __init__(self):
                        self._lock = threading.RLock()
                        self._conn = None

                    @contextmanager
                    def _tx(self):  # repro: locked
                        with self._lock:
                            yield self._conn

                    def write(self):
                        with self._tx() as conn:
                            self._conn = conn
                """
            }
        )
        assert check(root) == []

    def test_undeclared_context_does_not_count(self, make_tree):
        root = make_tree(
            {
                "serving/svc.py": """\
                import threading

                class Store:
                    _GUARDED_BY_LOCK = ("_conn",)

                    def __init__(self):
                        self._lock = threading.RLock()
                        self._conn = None

                    def write(self):
                        with self._session() as conn:
                            self._conn = conn
                """
            }
        )
        assert check(root) == [("REPRO401", "serving/svc.py", 12)]

    def test_code_after_with_block_is_unlocked_again(self, make_tree):
        root = make_tree(
            {
                "serving/svc.py": """\
                import threading

                class Service:
                    _GUARDED_BY_LOCK = ("_count",)

                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1
                        return self._count
                """
            }
        )
        assert check(root) == [("REPRO401", "serving/svc.py", 13)]

    def test_other_objects_attributes_are_not_tracked(self, make_tree):
        root = make_tree(
            {
                "serving/svc.py": """\
                import threading

                class Service:
                    _GUARDED_BY_LOCK = ("_count",)

                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def merge(self, other):
                        with self._lock:
                            self._count += other._count
                """
            }
        )
        assert check(root) == []


class TestInventoryCompleteness:
    def test_lock_without_inventory_fires(self, make_tree):
        root = make_tree(
            {
                "serving/svc.py": """\
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                """
            }
        )
        assert check(root) == [("REPRO402", "serving/svc.py", 5)]

    def test_lock_with_inventory_is_legal(self, make_tree):
        root = make_tree(
            {
                "serving/svc.py": """\
                import threading

                class Service:
                    _GUARDED_BY_LOCK = ("_count",)

                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0
                """
            }
        )
        assert check(root) == []

    def test_empty_inventory_is_an_explicit_declaration(self, make_tree):
        # Declaring an empty tuple says "this lock guards no attributes"
        # (e.g. it only serialises an external resource) — allowed, unlike
        # declaring nothing at all.
        root = make_tree(
            {
                "serving/svc.py": """\
                import threading

                class Gate:
                    _GUARDED_BY_LOCK = ()

                    def __init__(self):
                        self._lock = threading.Lock()
                """
            }
        )
        assert check(root) == []

    def test_class_without_lock_needs_no_inventory(self, make_tree):
        root = make_tree(
            {
                "serving/svc.py": """\
                class Plain:
                    def __init__(self):
                        self._count = 0
                """
            }
        )
        assert check(root) == []
