"""Protocol-conformance checker (REPRO501/REPRO502): fixtures and real seams."""

from __future__ import annotations

from repro.tools.check import default_root, run_checks
from repro.tools.protocols import ProtocolConformanceChecker


BASE = """\
import abc

class Broker(abc.ABC):
    @abc.abstractmethod
    def enqueue(self, spec, force: bool = False):
        ...

    @abc.abstractmethod
    def lease_batch(self, worker_id, limit, *, shards=None):
        ...

    @property
    @abc.abstractmethod
    def location(self):
        ...
"""

SURFACES = (("brokers/base.py", "Broker", ("brokers/*.py",)),)


def check(root):
    checker = ProtocolConformanceChecker(surfaces=SURFACES)
    report = run_checks(root=root, checkers=[checker])
    return [(f.rule, f.path, f.line) for f in report.findings]


class TestMissingMembers:
    def test_missing_abstract_method_fires_at_class_line(self, make_tree):
        root = make_tree(
            {
                "brokers/base.py": BASE,
                "brokers/impl.py": """\
                from brokers.base import Broker

                class PartialBroker(Broker):
                    def enqueue(self, spec, force: bool = False):
                        return True

                    @property
                    def location(self):
                        return "x"
                """,
            }
        )
        assert check(root) == [("REPRO501", "brokers/impl.py", 3)]

    def test_full_implementation_is_clean(self, make_tree):
        root = make_tree(
            {
                "brokers/base.py": BASE,
                "brokers/impl.py": """\
                from brokers.base import Broker

                class FullBroker(Broker):
                    def enqueue(self, spec, force: bool = False):
                        return True

                    def lease_batch(self, worker_id, limit, *, shards=None):
                        return []

                    @property
                    def location(self):
                        return "x"
                """,
            }
        )
        assert check(root) == []

    def test_intermediate_abstract_class_is_skipped(self, make_tree):
        root = make_tree(
            {
                "brokers/base.py": BASE,
                "brokers/impl.py": """\
                import abc
                from brokers.base import Broker

                class StillAbstract(Broker):
                    @abc.abstractmethod
                    def flavor(self):
                        ...
                """,
            }
        )
        assert check(root) == []


class TestSignatureDrift:
    def test_renamed_positional_parameter_fires(self, make_tree):
        root = make_tree(
            {
                "brokers/base.py": BASE,
                "brokers/impl.py": """\
                from brokers.base import Broker

                class DriftBroker(Broker):
                    def enqueue(self, task, force: bool = False):
                        return True

                    def lease_batch(self, worker_id, limit, *, shards=None):
                        return []

                    @property
                    def location(self):
                        return "x"
                """,
            }
        )
        assert check(root) == [("REPRO502", "brokers/impl.py", 4)]

    def test_lost_default_fires(self, make_tree):
        root = make_tree(
            {
                "brokers/base.py": BASE,
                "brokers/impl.py": """\
                from brokers.base import Broker

                class DriftBroker(Broker):
                    def enqueue(self, spec, force):
                        return True

                    def lease_batch(self, worker_id, limit, *, shards=None):
                        return []

                    @property
                    def location(self):
                        return "x"
                """,
            }
        )
        assert check(root) == [("REPRO502", "brokers/impl.py", 4)]

    def test_added_required_parameter_fires(self, make_tree):
        root = make_tree(
            {
                "brokers/base.py": BASE,
                "brokers/impl.py": """\
                from brokers.base import Broker

                class DriftBroker(Broker):
                    def enqueue(self, spec, force: bool = False, priority=None):
                        return True

                    def lease_batch(self, worker_id, limit, *, shards=None, timeout):
                        return []

                    @property
                    def location(self):
                        return "x"
                """,
            }
        )
        assert check(root) == [("REPRO502", "brokers/impl.py", 7)]

    def test_extra_defaulted_parameters_are_legal(self, make_tree):
        root = make_tree(
            {
                "brokers/base.py": BASE,
                "brokers/impl.py": """\
                from brokers.base import Broker

                class ExtendedBroker(Broker):
                    def enqueue(self, spec, force: bool = False, priority=0):
                        return True

                    def lease_batch(self, worker_id, limit, *, shards=None, jitter=0.0):
                        return []

                    @property
                    def location(self):
                        return "x"
                """,
            }
        )
        assert check(root) == []

    def test_missing_keyword_only_parameter_fires(self, make_tree):
        root = make_tree(
            {
                "brokers/base.py": BASE,
                "brokers/impl.py": """\
                from brokers.base import Broker

                class DriftBroker(Broker):
                    def enqueue(self, spec, force: bool = False):
                        return True

                    def lease_batch(self, worker_id, limit):
                        return []

                    @property
                    def location(self):
                        return "x"
                """,
            }
        )
        assert check(root) == [("REPRO502", "brokers/impl.py", 7)]


class TestRealSeams:
    def test_all_registered_backends_conform(self):
        # Spool/sqlite brokers, pickle/indexed stores and numpy/jax array
        # backends all hold their protocol surfaces with no suppressions.
        report = run_checks(
            root=default_root(), checkers=[ProtocolConformanceChecker()]
        )
        assert report.findings == []
        assert report.suppressed == []

    def test_real_seams_actually_resolve_implementations(self):
        # Guard against the checker silently checking nothing (e.g. a
        # moved base file): force a missing method into a scratch copy of
        # the real brokers and require REPRO501 to fire.
        import shutil
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as scratch:
            root = Path(scratch) / "repro"
            src = default_root()
            for rel in ("runner/brokers", "runner/results", "numerics"):
                shutil.copytree(src / rel, root / rel)
            sqlite_path = root / "runner/brokers/sqlite.py"
            text = sqlite_path.read_text()
            assert "def counts(" in text
            sqlite_path.write_text(text.replace("def counts(", "def counts_gone("))
            checker = ProtocolConformanceChecker()
            report = run_checks(root=root, checkers=[checker])
            assert any(
                f.rule == "REPRO501" and "counts" in f.message
                for f in report.findings
            )
