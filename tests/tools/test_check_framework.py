"""The checker framework itself: pragmas, selection, output, exit codes.

The rule families get their own test modules; this one pins the shared
machinery — suppression-pragma semantics, ``--rules`` selection, the
``--format json`` report schema (stable: CI parses it) and the CLI's
exit-code contract.
"""

from __future__ import annotations

import ast
import json

import pytest

from repro.tools.check import (
    REPORT_FORMAT_VERSION,
    Checker,
    Finding,
    main,
    run_checks,
    select_rules,
    suppressions_for,
)

def findings_of(report):
    """``(rule, path, line)`` triples of a report, for compact assertions."""
    return [(f.rule, f.path, f.line) for f in report.findings]


class _StubChecker(Checker):
    """Fires REPROX01 on every line containing ``BAD`` in scoped files."""

    name = "stub"
    rules = {"REPROX01": "test rule", "REPROX02": "other test rule"}
    scope = ("stub/*.py",)

    def check_file(self, relpath, tree, source):
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "BAD" in text:
                yield Finding("REPROX01", relpath, lineno, "bad line")


class TestFinding:
    def test_location_is_clickable_path_line(self):
        finding = Finding("REPRO101", "runner/spec.py", 42, "message")
        assert finding.location == "runner/spec.py:42"

    def test_json_row_shape(self):
        finding = Finding("REPRO101", "runner/spec.py", 42, "message")
        assert finding.to_json() == {
            "rule": "REPRO101",
            "path": "runner/spec.py",
            "line": 42,
            "message": "message",
        }


class TestSuppressionPragmas:
    def test_inline_pragma_silences_its_line_only(self, make_tree):
        root = make_tree(
            {
                "stub/mod.py": """\
                x = "BAD"  # repro: noqa[REPROX01] -- fixture-sanctioned
                y = "BAD"
                """
            }
        )
        report = run_checks(root=root, checkers=[_StubChecker()])
        assert findings_of(report) == [("REPROX01", "stub/mod.py", 2)]
        assert [(f.rule, f.line) for f in report.suppressed] == [("REPROX01", 1)]

    def test_inline_pragma_for_other_rule_does_not_silence(self, make_tree):
        root = make_tree(
            {"stub/mod.py": 'x = "BAD"  # repro: noqa[REPROX02] -- wrong id\n'}
        )
        report = run_checks(root=root, checkers=[_StubChecker()])
        assert findings_of(report) == [("REPROX01", "stub/mod.py", 1)]

    def test_file_pragma_silences_whole_file(self, make_tree):
        root = make_tree(
            {
                "stub/mod.py": """\
                # repro: noqa-file[REPROX01] -- whole module exempt
                x = "BAD"
                y = "BAD"
                """
            }
        )
        report = run_checks(root=root, checkers=[_StubChecker()])
        assert report.clean
        assert len(report.suppressed) == 2

    def test_pragma_requires_rule_id_no_blanket_form(self):
        file_rules, by_line = suppressions_for(
            "x = 1  # repro: noqa[]\ny = 2  # repro: noqa\n"
        )
        assert file_rules == set()
        assert by_line == {}

    def test_pragma_accepts_comma_separated_ids(self):
        _file_rules, by_line = suppressions_for(
            "x = 1  # repro: noqa[REPROX01, REPROX02] -- both\n"
        )
        assert by_line == {1: {"REPROX01", "REPROX02"}}


class TestRuleSelection:
    def test_family_name_selects_all_family_rules(self):
        selected = select_rules([_StubChecker()], ["stub"])
        assert set(selected) == {"REPROX01", "REPROX02"}

    def test_exact_id_and_prefix(self):
        assert set(select_rules([_StubChecker()], ["REPROX01"])) == {"REPROX01"}
        assert set(select_rules([_StubChecker()], ["REPROX"])) == {
            "REPROX01",
            "REPROX02",
        }

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="unknown rule selector"):
            select_rules([_StubChecker()], ["REPRO999"])

    def test_unselected_rules_filtered_from_report(self, make_tree):
        root = make_tree({"stub/mod.py": 'x = "BAD"\n'})
        report = run_checks(root=root, rules=["REPROX02"], checkers=[_StubChecker()])
        assert report.clean  # REPROX01 fired but was not selected


class TestReportOutput:
    def test_json_schema_is_stable(self, make_tree):
        root = make_tree({"stub/mod.py": 'x = "BAD"\n'})
        report = run_checks(root=root, checkers=[_StubChecker()])
        payload = report.to_json()
        # The JSON surface is a contract with the CI job: exactly these
        # keys, exactly these finding-row keys.
        assert sorted(payload) == [
            "findings",
            "n_findings",
            "n_suppressed",
            "root",
            "rules",
            "version",
        ]
        assert payload["version"] == REPORT_FORMAT_VERSION
        assert payload["n_findings"] == 1
        assert sorted(payload["findings"][0]) == ["line", "message", "path", "rule"]
        json.dumps(payload)  # round-trippable

    def test_text_report_rows_and_summary(self, make_tree):
        root = make_tree({"stub/mod.py": 'x = "BAD"\n'})
        report = run_checks(root=root, checkers=[_StubChecker()])
        text = report.to_text()
        assert "stub/mod.py:1: REPROX01 bad line" in text
        assert "1 finding(s), 0 suppressed" in text

    def test_findings_sorted_by_path_line_rule(self, make_tree):
        root = make_tree(
            {
                "stub/b.py": 'x = "BAD"\ny = "BAD"\n',
                "stub/a.py": 'x = "BAD"\n',
            }
        )
        report = run_checks(root=root, checkers=[_StubChecker()])
        assert [f.location for f in report.findings] == [
            "stub/a.py:1",
            "stub/b.py:1",
            "stub/b.py:2",
        ]


class TestCli:
    def test_exit_zero_on_clean_tree(self, make_tree, capsys):
        root = make_tree({"runner/spec.py": "CACHE_FORMAT_VERSION = 4\n"})
        code = main(["--root", str(root), "--rules", "determinism"])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, make_tree, capsys):
        root = make_tree({"runner/spec.py": "import time\nnow = time.time()\n"})
        code = main(["--root", str(root), "--rules", "determinism"])
        assert code == 1
        assert "REPRO101" in capsys.readouterr().out

    def test_exit_two_on_unknown_selector(self, make_tree, capsys):
        root = make_tree({"runner/spec.py": "x = 1\n"})
        code = main(["--root", str(root), "--rules", "NOPE999"])
        assert code == 2
        assert "unknown rule selector" in capsys.readouterr().err

    def test_json_format_emits_parseable_report(self, make_tree, capsys):
        root = make_tree({"runner/spec.py": "import time\nnow = time.time()\n"})
        code = main(
            ["--root", str(root), "--rules", "determinism", "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == REPORT_FORMAT_VERSION
        assert payload["findings"][0]["rule"] == "REPRO101"

    def test_list_rules_covers_all_five_families(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("determinism", "purity", "schema", "locks", "protocols"):
            assert f"[{family}]" in out
        for rule in ("REPRO101", "REPRO201", "REPRO301", "REPRO401", "REPRO501"):
            assert rule in out


class TestCheckerBase:
    def test_scope_files_sorted_and_deduplicated(self, make_tree):
        root = make_tree({"stub/b.py": "", "stub/a.py": ""})

        class TwoPatterns(_StubChecker):
            scope = ("stub/*.py", "stub/a.py")

        files = TwoPatterns().files(root)
        assert [p.name for p in files] == ["a.py", "b.py"]

    def test_default_check_file_yields_nothing(self, make_tree):
        root = make_tree({"stub/mod.py": 'x = "BAD"\n'})

        class Passive(Checker):
            name = "passive"
            rules = {"REPROX09": "never fires"}
            scope = ("stub/*.py",)

        assert run_checks(root=root, checkers=[Passive()]).clean

    def test_check_file_receives_parsed_tree(self, make_tree):
        seen = {}

        class Probe(Checker):
            name = "probe"
            rules = {"REPROX08": "probe"}
            scope = ("stub/*.py",)

            def check_file(self, relpath, tree, source):
                seen[relpath] = type(tree)
                return iter(())

        root = make_tree({"stub/mod.py": "x = 1\n"})
        run_checks(root=root, checkers=[Probe()])
        assert seen == {"stub/mod.py": ast.Module}
