"""Determinism lint (REPRO101–REPRO105): positive and negative fixtures.

Each rule gets a minimal fixture module that violates it at a known line —
asserting the exact ``(rule, path, line)`` — and a matching negative
showing the sanctioned form stays silent.
"""

from __future__ import annotations

from repro.tools.check import run_checks
from repro.tools.determinism import DeterminismChecker


def check(root):
    report = run_checks(root=root, checkers=[DeterminismChecker()])
    return [(f.rule, f.path, f.line) for f in report.findings]


class TestWallClock:
    def test_time_time_fires_at_line(self, make_tree):
        root = make_tree(
            {
                "runner/spec.py": """\
                import time
                stamp = time.time()
                """
            }
        )
        assert check(root) == [("REPRO101", "runner/spec.py", 2)]

    def test_datetime_now_fires(self, make_tree):
        root = make_tree(
            {
                "serving/schemas.py": """\
                import datetime
                stamp = datetime.datetime.now()
                """
            }
        )
        assert check(root) == [("REPRO101", "serving/schemas.py", 2)]

    def test_monotonic_and_sleep_are_legal(self, make_tree):
        root = make_tree(
            {
                "runner/spec.py": """\
                import time
                start = time.monotonic()
                time.sleep(0.1)
                """
            }
        )
        assert check(root) == []


class TestModuleRandomness:
    def test_random_module_call_fires(self, make_tree):
        root = make_tree(
            {
                "labeling/wire.py": """\
                import random
                pick = random.choice([1, 2, 3])
                """
            }
        )
        assert check(root) == [("REPRO102", "labeling/wire.py", 2)]

    def test_np_random_global_state_fires(self, make_tree):
        root = make_tree(
            {
                "runner/spec.py": """\
                import numpy as np
                noise = np.random.normal(size=3)
                """
            }
        )
        assert check(root) == [("REPRO102", "runner/spec.py", 2)]

    def test_seeded_instances_are_legal(self, make_tree):
        root = make_tree(
            {
                "runner/spec.py": """\
                import random
                import numpy as np
                rng = random.Random(7)
                pick = rng.choice([1, 2, 3])
                gen = np.random_thing if False else None  # not np.random.*
                arr = np.asarray([1.0])
                """
            }
        )
        assert check(root) == []


class TestFilesystemOrder:
    def test_bare_glob_iteration_fires(self, make_tree):
        root = make_tree(
            {
                "runner/brokers/custom.py": """\
                from pathlib import Path
                for path in Path(".").glob("*.task"):
                    print(path)
                """
            }
        )
        assert check(root) == [("REPRO103", "runner/brokers/custom.py", 2)]

    def test_os_listdir_assignment_fires(self, make_tree):
        root = make_tree(
            {
                "runner/brokers/custom.py": """\
                import os
                names = os.listdir(".")
                """
            }
        )
        assert check(root) == [("REPRO103", "runner/brokers/custom.py", 2)]

    def test_sorted_wrapper_is_legal(self, make_tree):
        root = make_tree(
            {
                "runner/brokers/custom.py": """\
                import os
                from pathlib import Path
                names = sorted(os.listdir("."))
                count = sum(1 for _ in Path(".").glob("*.task"))
                present = any(True for _ in Path(".").iterdir())
                unique = {p.name for p in Path(".").glob("*.task")}
                """
            }
        )
        assert check(root) == []


class TestCanonicalJson:
    def test_dumps_without_sort_keys_fires(self, make_tree):
        root = make_tree(
            {
                "serving/schemas.py": """\
                import json
                body = json.dumps({"b": 1, "a": 2})
                """
            }
        )
        assert check(root) == [("REPRO104", "serving/schemas.py", 2)]

    def test_dumps_sort_keys_false_fires(self, make_tree):
        root = make_tree(
            {
                "serving/schemas.py": """\
                import json
                body = json.dumps({"a": 2}, sort_keys=False)
                """
            }
        )
        assert check(root) == [("REPRO104", "serving/schemas.py", 2)]

    def test_dumps_sort_keys_true_is_legal(self, make_tree):
        root = make_tree(
            {
                "serving/schemas.py": """\
                import json
                body = json.dumps({"a": 2}, sort_keys=True)
                """
            }
        )
        assert check(root) == []


class TestSetIteration:
    def test_for_over_set_literal_fires(self, make_tree):
        root = make_tree(
            {
                "labeling/wire.py": """\
                out = []
                for item in {"b", "a"}:
                    out.append(item)
                """
            }
        )
        assert check(root) == [("REPRO105", "labeling/wire.py", 2)]

    def test_comprehension_over_set_call_fires(self, make_tree):
        root = make_tree(
            {
                "labeling/wire.py": """\
                rows = [item for item in set(["b", "a"])]
                """
            }
        )
        assert check(root) == [("REPRO105", "labeling/wire.py", 1)]

    def test_sorted_set_is_legal(self, make_tree):
        root = make_tree(
            {
                "labeling/wire.py": """\
                rows = [item for item in sorted({"b", "a"})]
                for item in sorted(set(["b", "a"])):
                    pass
                """
            }
        )
        assert check(root) == []


class TestScope:
    def test_files_outside_scope_are_not_checked(self, make_tree):
        root = make_tree(
            {
                "core/results.py": """\
                import time
                stamp = time.time()
                """
            }
        )
        assert check(root) == []
