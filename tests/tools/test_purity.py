"""Backend-purity checker (REPRO201/REPRO202): positive and negative fixtures."""

from __future__ import annotations

from repro.tools.check import run_checks
from repro.tools.purity import BackendPurityChecker


def check(root, **kwargs):
    report = run_checks(root=root, checkers=[BackendPurityChecker(**kwargs)])
    return [(f.rule, f.path, f.line) for f in report.findings]


class TestDirectNumpyCalls:
    def test_np_call_in_backend_function_fires(self, make_tree):
        root = make_tree(
            {
                "numerics/kernel.py": """\
                import numpy as np

                def solve(backend, matrix):
                    return np.linalg.inv(matrix)
                """
            }
        )
        assert check(root) == [("REPRO201", "numerics/kernel.py", 4)]

    def test_np_call_in_xp_function_fires(self, make_tree):
        root = make_tree(
            {
                "numerics/kernel.py": """\
                import numpy as np

                def e_step(xp, proba):
                    return np.clip(proba, 0.0, 1.0)
                """
            }
        )
        assert check(root) == [("REPRO201", "numerics/kernel.py", 4)]

    def test_np_call_inside_nested_closure_fires(self, make_tree):
        # The jit-compiled `step` closures are part of the kernel even
        # though the closure itself has no backend parameter.
        root = make_tree(
            {
                "numerics/kernel.py": """\
                import numpy as np

                def step_fn(backend):
                    def step(values):
                        return np.exp(values)
                    return backend.jit(step)
                """
            }
        )
        assert check(root) == [("REPRO201", "numerics/kernel.py", 5)]

    def test_host_side_helper_without_seam_param_is_unchecked(self, make_tree):
        root = make_tree(
            {
                "numerics/kernel.py": """\
                import numpy as np

                def build_masks(matrix, n_classes):
                    return np.stack([(matrix == c) for c in range(n_classes)])
                """
            }
        )
        assert check(root) == []

    def test_allowlisted_index_helpers_are_legal(self, make_tree):
        root = make_tree(
            {
                "numerics/kernel.py": """\
                import numpy as np

                def sweeps(backend, p):
                    return [np.delete(np.arange(p), j) for j in range(p)]
                """
            }
        )
        assert check(root) == []

    def test_allowlist_is_configurable(self, make_tree):
        root = make_tree(
            {
                "numerics/kernel.py": """\
                import numpy as np

                def sweeps(backend, p):
                    return np.arange(p)
                """
            }
        )
        assert check(root, allowlist=frozenset()) == [
            ("REPRO201", "numerics/kernel.py", 4)
        ]

    def test_xp_and_backend_calls_are_legal(self, make_tree):
        root = make_tree(
            {
                "numerics/kernel.py": """\
                def solve(backend, matrix):
                    xp = backend.xp
                    inv = xp.linalg.inv(backend.asarray(matrix))
                    return backend.set_at(inv, 0, 0.0)
                """
            }
        )
        assert check(root) == []

    def test_annotations_may_say_np_ndarray(self, make_tree):
        root = make_tree(
            {
                "numerics/kernel.py": """\
                import numpy as np

                def solve(backend, matrix: np.ndarray) -> np.ndarray:
                    result: np.ndarray = backend.asarray(matrix)
                    return result
                """
            }
        )
        assert check(root) == []


class TestBareModuleUse:
    def test_passing_np_as_value_fires(self, make_tree):
        root = make_tree(
            {
                "numerics/kernel.py": """\
                import numpy as np

                def solve(backend, matrix):
                    return _inner(np, matrix)
                """
            }
        )
        assert check(root) == [("REPRO202", "numerics/kernel.py", 4)]

    def test_np_as_attribute_base_is_not_a_bare_use(self, make_tree):
        # np.delete(...) is judged by REPRO201 (here: allowlisted), not
        # double-reported as a bare-module use.
        root = make_tree(
            {
                "numerics/kernel.py": """\
                import numpy as np

                def sweeps(backend, p):
                    return np.delete(np.arange(p), 0)
                """
            }
        )
        assert check(root) == []

    def test_host_side_caller_may_pass_np(self, make_tree):
        root = make_tree(
            {
                "numerics/kernel.py": """\
                import numpy as np

                def posterior(matrix):
                    return _e_step(np, matrix)
                """
            }
        )
        assert check(root) == []


class TestRealTreeScope:
    def test_real_numerics_package_is_clean(self):
        # The shipped kernels (em/glasso/scores) hold the purity contract
        # with no suppressions at all.
        from repro.tools.check import default_root

        report = run_checks(root=default_root(), checkers=[BackendPurityChecker()])
        assert report.findings == []
        assert report.suppressed == []
