"""Shared fixture helpers for the static-analysis checker tests.

Checker tests build tiny scratch trees that mirror the real package layout
(the checkers address files by root-relative path), point a single checker
at them and assert on the ``(rule, path, line)`` triples that come back.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest


@pytest.fixture
def make_tree(tmp_path):
    """Write ``{relpath: source}`` under a scratch root and return the root.

    Sources are dedented so fixture modules can be written inline as
    indented triple-quoted strings.
    """

    def _make(files: dict[str, str]) -> Path:
        root = tmp_path / "repro"
        for relpath, source in files.items():
            path = root / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return root

    return _make
