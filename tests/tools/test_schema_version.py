"""Schema-version guard (REPRO301/REPRO302) and the fingerprint workflow.

These tests work on scratch copies of the real payload-surface files —
the guard is AST-based precisely so that mutating a copied
``runner/spec.py`` (without importing it) exercises the real drift
detection end to end, which is the issue's acceptance scenario.
"""

from __future__ import annotations

import shutil

import pytest

from repro.tools.check import default_root, main, run_checks
from repro.tools.schema_version import (
    FINGERPRINT_RELPATH,
    PAYLOAD_SURFACES,
    SchemaVersionChecker,
    extract_surface,
    read_cache_version,
    surface_digest,
    update_fingerprint,
)

#: Every file the payload surface (and the committed fingerprint) lives in.
_SURFACE_FILES = sorted(
    {relpath for relpath, _, _ in PAYLOAD_SURFACES} | {FINGERPRINT_RELPATH}
)


@pytest.fixture
def scratch_root(tmp_path):
    """A scratch copy of the real payload-surface files + fingerprint."""
    root = tmp_path / "repro"
    src = default_root()
    for relpath in _SURFACE_FILES:
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(src / relpath, target)
    return root


def check(root):
    report = run_checks(root=root, checkers=[SchemaVersionChecker()])
    return [(f.rule, f.path) for f in report.findings]


def mutate_trialspec(root):
    """Add a pickled-payload field to the scratch copy's TrialSpec."""
    spec_path = root / "runner/spec.py"
    text = spec_path.read_text()
    anchor = "    group: str | None = None"
    assert anchor in text
    spec_path.write_text(
        text.replace(anchor, anchor + "\n    priority: int = 0", 1)
    )


def bump_version(root):
    spec_path = root / "runner/spec.py"
    version, _line = read_cache_version(root)
    text = spec_path.read_text()
    old = f"CACHE_FORMAT_VERSION = {version}"
    assert old in text
    spec_path.write_text(text.replace(old, f"CACHE_FORMAT_VERSION = {version + 1}", 1))


class TestDriftDetection:
    def test_unmutated_scratch_copy_is_clean(self, scratch_root):
        assert check(scratch_root) == []

    def test_field_added_without_bump_fails(self, scratch_root):
        # The acceptance scenario: a new TrialSpec field changes the bytes
        # every pickled spec produces, so an unbumped CACHE_FORMAT_VERSION
        # would let old caches be misread as current.
        mutate_trialspec(scratch_root)
        findings = run_checks(
            root=scratch_root, checkers=[SchemaVersionChecker()]
        ).findings
        assert [(f.rule, f.path) for f in findings] == [
            ("REPRO301", "runner/spec.py")
        ]
        _version, version_line = read_cache_version(scratch_root)
        assert findings[0].line == version_line

    def test_field_added_with_bump_wants_fingerprint_update(self, scratch_root):
        mutate_trialspec(scratch_root)
        bump_version(scratch_root)
        assert check(scratch_root) == [("REPRO302", FINGERPRINT_RELPATH)]

    def test_bump_without_payload_change_wants_fingerprint_update(self, scratch_root):
        bump_version(scratch_root)
        assert check(scratch_root) == [("REPRO302", FINGERPRINT_RELPATH)]

    def test_missing_fingerprint_fails(self, scratch_root):
        (scratch_root / FINGERPRINT_RELPATH).unlink()
        assert check(scratch_root) == [("REPRO302", FINGERPRINT_RELPATH)]

    def test_session_meta_keys_are_part_of_the_surface(self, scratch_root):
        # The suspended-session pickle envelope is rebuilt from meta's
        # keys; renaming one is as breaking as a dataclass field change.
        sessions = scratch_root / "serving/sessions.py"
        text = sessions.read_text()
        assert '"end_model_C": self.end_model_C,' in text
        sessions.write_text(
            text.replace(
                '"end_model_C": self.end_model_C,',
                '"end_model_c": self.end_model_C,',
                1,
            )
        )
        assert check(scratch_root) == [("REPRO301", "runner/spec.py")]

    def test_removed_field_is_drift_too(self, scratch_root):
        spec_path = scratch_root / "runner/spec.py"
        text = spec_path.read_text()
        assert "    group: str | None = None\n" in text
        spec_path.write_text(text.replace("    group: str | None = None\n", "", 1))
        assert check(scratch_root) == [("REPRO301", "runner/spec.py")]


class TestUpdateWorkflow:
    def test_update_refused_without_version_bump(self, scratch_root):
        mutate_trialspec(scratch_root)
        before = (scratch_root / FINGERPRINT_RELPATH).read_text()
        ok, message = update_fingerprint(scratch_root)
        assert not ok
        assert "bump it" in message
        # The refused update must not have touched the committed file.
        assert (scratch_root / FINGERPRINT_RELPATH).read_text() == before

    def test_update_succeeds_after_bump_and_clears_findings(self, scratch_root):
        mutate_trialspec(scratch_root)
        bump_version(scratch_root)
        ok, message = update_fingerprint(scratch_root)
        assert ok
        assert "wrote" in message
        assert check(scratch_root) == []

    def test_update_is_idempotent_on_clean_tree(self, scratch_root):
        ok, _message = update_fingerprint(scratch_root)
        assert ok
        assert check(scratch_root) == []

    def test_cli_update_fingerprint_exit_codes(self, scratch_root, capsys):
        mutate_trialspec(scratch_root)
        assert main(["--root", str(scratch_root), "--update-fingerprint"]) == 1
        assert "refusing" in capsys.readouterr().out
        bump_version(scratch_root)
        assert main(["--root", str(scratch_root), "--update-fingerprint"]) == 0
        assert "wrote" in capsys.readouterr().out


class TestSurfaceExtraction:
    def test_digest_is_version_independent(self, scratch_root):
        before = surface_digest(extract_surface(scratch_root))
        bump_version(scratch_root)
        assert surface_digest(extract_surface(scratch_root)) == before

    def test_surface_records_fields_with_defaults(self, scratch_root):
        surface = extract_surface(scratch_root)
        spec = surface["runner/spec.py::TrialSpec"]
        by_name = {field["name"]: field for field in spec["fields"]}
        assert by_name["framework"]["has_default"] is False
        assert by_name["group"]["has_default"] is True

    def test_missing_surface_file_changes_the_digest(self, scratch_root):
        before = surface_digest(extract_surface(scratch_root))
        (scratch_root / "core/state.py").unlink()
        assert surface_digest(extract_surface(scratch_root)) != before

    def test_committed_fingerprint_matches_the_real_tree(self):
        # The repo-level invariant CI asserts: the committed fingerprint
        # is current for the shipped sources.
        assert (
            run_checks(
                root=default_root(), checkers=[SchemaVersionChecker()]
            ).findings
            == []
        )
