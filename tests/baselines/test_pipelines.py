"""Tests for the baseline interactive pipelines and the common interface."""

import numpy as np
import pytest

from repro.baselines import (
    ActiveDPPipeline,
    IWSPipeline,
    NemoPipeline,
    RevisingLFPipeline,
    UncertaintySamplingPipeline,
    get_pipeline,
    pipeline_names,
)
from repro.labeling import ABSTAIN

ALL_PIPELINES = pipeline_names()


class TestRegistry:
    def test_pipeline_names(self):
        assert set(ALL_PIPELINES) == {"activedp", "nemo", "iws", "revising_lf", "uncertainty"}

    def test_get_pipeline_aliases(self, tiny_text_split):
        assert isinstance(get_pipeline("us", tiny_text_split), UncertaintySamplingPipeline)
        assert isinstance(get_pipeline("rlf", tiny_text_split), RevisingLFPipeline)

    def test_unknown_pipeline_raises(self, tiny_text_split):
        with pytest.raises(ValueError):
            get_pipeline("snorkel", tiny_text_split)


@pytest.mark.parametrize("name", ALL_PIPELINES)
class TestCommonContract:
    def test_step_and_generate_labels(self, name, tiny_text_split):
        pipeline = get_pipeline(name, tiny_text_split, random_state=0)
        pipeline.run(8)
        indices, labels = pipeline.generate_labels()
        assert len(indices) == len(labels)
        if len(indices):
            assert indices.min() >= 0
            assert indices.max() < len(tiny_text_split.train)
            assert set(np.unique(labels)) <= {0, 1}
            assert ABSTAIN not in labels

    def test_evaluate_end_model_returns_probability(self, name, tiny_text_split):
        pipeline = get_pipeline(name, tiny_text_split, random_state=0)
        pipeline.run(6)
        accuracy = pipeline.evaluate_end_model()
        assert 0.0 <= accuracy <= 1.0

    def test_label_quality_bounds(self, name, tiny_text_split):
        pipeline = get_pipeline(name, tiny_text_split, random_state=0)
        pipeline.run(6)
        quality = pipeline.label_quality()
        assert 0.0 <= quality["coverage"] <= 1.0
        assert 0.0 <= quality["accuracy"] <= 1.0


class TestActiveDPPipeline:
    def test_noise_rate_builds_noisy_user(self, tiny_text_split):
        from repro.simulation import NoisySimulatedUser
        pipeline = ActiveDPPipeline(tiny_text_split, random_state=0, noise_rate=0.1)
        assert isinstance(pipeline.user, NoisySimulatedUser)

    def test_config_override(self, tiny_text_split):
        from repro.core import ActiveDPConfig
        config = ActiveDPConfig.for_dataset_kind("text", sampler="passive")
        pipeline = ActiveDPPipeline(tiny_text_split, random_state=0, config=config)
        assert pipeline.framework.sampler.name == "passive"

    def test_tabular_defaults_use_high_alpha(self, tiny_tabular_split):
        pipeline = ActiveDPPipeline(tiny_tabular_split, random_state=0)
        assert pipeline.config.alpha == 0.99

    def test_config_overrides_replace_single_fields(self, tiny_text_split):
        pipeline = ActiveDPPipeline(
            tiny_text_split,
            random_state=0,
            config_overrides={"warm_start_label_model": False, "retrain_every": 3},
        )
        # Overrides land on top of the per-kind defaults.
        assert pipeline.config.alpha == 0.5
        assert not pipeline.config.warm_start_label_model
        assert pipeline.config.retrain_every == 3

    def test_config_overrides_compose_with_explicit_config(self, tiny_text_split):
        from repro.core import ActiveDPConfig
        config = ActiveDPConfig.for_dataset_kind("text", sampler="passive")
        pipeline = ActiveDPPipeline(
            tiny_text_split,
            random_state=0,
            config=config,
            config_overrides={"warm_start_label_model": False},
        )
        assert pipeline.framework.sampler.name == "passive"
        assert not pipeline.config.warm_start_label_model
        # The caller's config object is not mutated.
        assert config.warm_start_label_model

    def test_accumulates_labels_over_iterations(self, tiny_text_split):
        pipeline = ActiveDPPipeline(tiny_text_split, random_state=0)
        pipeline.run(4)
        early = len(pipeline.generate_labels()[0])
        pipeline.run(12)
        late = len(pipeline.generate_labels()[0])
        assert late >= early


class TestUncertaintySamplingPipeline:
    def test_labels_are_ground_truth(self, tiny_text_split):
        pipeline = UncertaintySamplingPipeline(tiny_text_split, random_state=0)
        pipeline.run(10)
        indices, labels = pipeline.generate_labels()
        np.testing.assert_array_equal(labels, tiny_text_split.train.labels[indices])

    def test_one_label_per_iteration(self, tiny_text_split):
        pipeline = UncertaintySamplingPipeline(tiny_text_split, random_state=0)
        pipeline.run(7)
        indices, _ = pipeline.generate_labels()
        assert len(indices) == 7
        assert len(np.unique(indices)) == 7


class TestNemoPipeline:
    def test_collects_lfs_and_covers_instances(self, tiny_text_split):
        pipeline = NemoPipeline(tiny_text_split, random_state=0)
        pipeline.run(10)
        assert len(pipeline.lfs) > 0
        indices, _ = pipeline.generate_labels()
        assert len(indices) > 0

    def test_no_duplicate_lfs(self, tiny_text_split):
        pipeline = NemoPipeline(tiny_text_split, random_state=0)
        pipeline.run(12)
        assert len(pipeline.lfs) == len(set(pipeline.lfs))


class TestIWSPipeline:
    def test_accepted_lfs_pass_user_verification(self, tiny_text_split):
        pipeline = IWSPipeline(tiny_text_split, random_state=0)
        pipeline.run(12)
        for lf in pipeline.accepted:
            assert pipeline.user.verify_lf(lf)

    def test_proposals_are_not_repeated(self, tiny_text_split):
        pipeline = IWSPipeline(tiny_text_split, random_state=0, max_candidates=20)
        pipeline.run(15)
        assert len(pipeline.proposed) == len(set(pipeline.proposed))

    def test_works_on_tabular_data(self, tiny_tabular_split):
        pipeline = IWSPipeline(tiny_tabular_split, random_state=0, max_candidates=50)
        pipeline.run(8)
        assert 0.0 <= pipeline.evaluate_end_model() <= 1.0


class TestRevisingLFPipeline:
    def test_revised_instances_keep_oracle_labels(self, tiny_text_split):
        pipeline = RevisingLFPipeline(tiny_text_split, random_state=0)
        pipeline.run(10)
        indices, labels = pipeline.generate_labels()
        label_map = dict(zip(indices.tolist(), labels.tolist()))
        for revised_index, revised_label in pipeline.revised.items():
            assert label_map[revised_index] == revised_label
            assert revised_label == tiny_text_split.train.labels[revised_index]

    def test_lf_outputs_corrected_on_revised_instances(self, tiny_text_split):
        pipeline = RevisingLFPipeline(tiny_text_split, random_state=0)
        pipeline.run(10)
        matrix = pipeline._matrix
        for index, label in pipeline.revised.items():
            fired = matrix[index] != ABSTAIN
            assert np.all(matrix[index, fired] == label)
