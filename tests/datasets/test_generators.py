"""Tests for the synthetic text and tabular dataset generators."""

import numpy as np
import pytest

from repro.datasets.synthetic_tabular import SyntheticTabularConfig, generate_tabular_dataset
from repro.datasets.synthetic_text import SyntheticTextConfig, generate_text_dataset
from repro.models import LogisticRegression


class TestTextGenerator:
    def test_split_fractions(self):
        config = SyntheticTextConfig(n_documents=200)
        split = generate_text_dataset(config, random_state=0)
        n_train, n_valid, n_test = split.sizes()
        assert n_train + n_valid + n_test == 200
        assert abs(n_valid - 20) <= 2 and abs(n_test - 20) <= 2

    def test_reproducible_with_same_seed(self):
        config = SyntheticTextConfig(n_documents=100)
        first = generate_text_dataset(config, random_state=5)
        second = generate_text_dataset(config, random_state=5)
        assert first.train.texts == second.train.texts
        np.testing.assert_array_equal(first.train.labels, second.train.labels)

    def test_different_seeds_differ(self):
        config = SyntheticTextConfig(n_documents=100)
        first = generate_text_dataset(config, random_state=1)
        second = generate_text_dataset(config, random_state=2)
        assert first.train.texts != second.train.texts

    def test_signal_words_are_class_correlated(self):
        config = SyntheticTextConfig(
            n_documents=400,
            signal_words={0: ["alpha"], 1: ["omega"]},
            signal_strength=0.5,
            noise_strength=0.02,
        )
        split = generate_text_dataset(config, random_state=0)
        train = split.train
        contains_alpha = np.array(["alpha" in tokens for tokens in train.token_sets])
        if contains_alpha.any():
            # Documents containing the class-0 keyword are mostly class 0.
            assert np.mean(train.labels[contains_alpha] == 0) > 0.75

    def test_generated_tokens_survive_tokenisation(self):
        config = SyntheticTextConfig(n_documents=100, n_signal_words=20)
        split = generate_text_dataset(config, random_state=0)
        signal_words = split.metadata["signal_words"]
        all_tokens = set()
        for tokens in split.train.token_sets:
            all_tokens |= tokens
        generated = [w for words in signal_words.values() for w in words if w.startswith("sig")]
        present = sum(1 for w in generated if w in all_tokens)
        assert present > len(generated) * 0.5

    def test_dataset_is_learnable(self):
        config = SyntheticTextConfig(n_documents=400)
        split = generate_text_dataset(config, random_state=0)
        model = LogisticRegression().fit(split.train.features, split.train.labels)
        assert model.score(split.test.features, split.test.labels) > 0.7

    def test_class_balance_respected(self):
        config = SyntheticTextConfig(n_documents=600, class_balance=(0.8, 0.2))
        split = generate_text_dataset(config, random_state=0)
        balance = split.train.class_balance()
        assert balance[0] > 0.7

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_documents": 5},
            {"signal_strength": 0.0},
            {"noise_strength": 0.9, "signal_strength": 0.5},
            {"class_balance": (1.0,)},
        ],
    )
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticTextConfig(**kwargs)


class TestTabularGenerator:
    def test_split_sizes(self):
        config = SyntheticTabularConfig(n_samples=300)
        split = generate_tabular_dataset(config, random_state=0)
        assert sum(split.sizes()) == 300

    def test_reproducibility(self):
        config = SyntheticTabularConfig(n_samples=100)
        first = generate_tabular_dataset(config, random_state=3)
        second = generate_tabular_dataset(config, random_state=3)
        np.testing.assert_array_equal(first.train.raw_features, second.train.raw_features)

    def test_informative_features_separate_classes(self):
        config = SyntheticTabularConfig(n_samples=600, separation=3.0, n_informative=2, n_noise=1)
        split = generate_tabular_dataset(config, random_state=0)
        train = split.train
        means_0 = train.raw_features[train.labels == 0, 0].mean()
        means_1 = train.raw_features[train.labels == 1, 0].mean()
        assert abs(means_0 - means_1) > 0.5

    def test_scaled_features_standardised_on_train(self):
        config = SyntheticTabularConfig(n_samples=400)
        split = generate_tabular_dataset(config, random_state=0)
        np.testing.assert_allclose(split.train.features.mean(axis=0), 0.0, atol=0.1)

    def test_dataset_is_learnable(self):
        config = SyntheticTabularConfig(n_samples=500, separation=2.5)
        split = generate_tabular_dataset(config, random_state=0)
        model = LogisticRegression().fit(split.train.features, split.train.labels)
        assert model.score(split.test.features, split.test.labels) > 0.75

    def test_feature_names_propagated(self):
        config = SyntheticTabularConfig(
            n_samples=100, n_informative=2, n_noise=1,
            feature_names=["temp", "light", "noise"],
        )
        split = generate_tabular_dataset(config, random_state=0)
        assert split.train.feature_names == ["temp", "light", "noise"]

    @pytest.mark.parametrize(
        "kwargs",
        [{"n_samples": 5}, {"n_informative": 0}, {"n_noise": -1}, {"separation": 0.0}],
    )
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticTabularConfig(**kwargs)
