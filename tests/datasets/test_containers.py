"""Tests for dataset containers (Dataset, TextDataset, TabularDataset, DataSplit)."""

import numpy as np
import pytest

from repro.datasets import Dataset, TabularDataset, TextDataset


class TestDataset:
    def test_basic_properties(self, rng):
        features = rng.standard_normal((20, 4))
        labels = rng.integers(0, 2, 20)
        dataset = Dataset(features, labels, n_classes=2, name="demo")
        assert len(dataset) == 20
        assert dataset.n_features == 4
        balance = dataset.class_balance()
        assert balance.shape == (2,)
        assert balance.sum() == pytest.approx(1.0)

    def test_subset_preserves_alignment(self, rng):
        features = rng.standard_normal((10, 2))
        labels = np.arange(10) % 2
        dataset = Dataset(features, labels, n_classes=2)
        subset = dataset.subset(np.array([1, 3, 5]))
        np.testing.assert_array_equal(subset.labels, labels[[1, 3, 5]])
        np.testing.assert_array_equal(subset.features, features[[1, 3, 5]])

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            Dataset(rng.standard_normal((5, 2)), np.zeros(4, dtype=int), 2)

    def test_labels_out_of_range_raise(self, rng):
        with pytest.raises(ValueError):
            Dataset(rng.standard_normal((3, 2)), np.array([0, 1, 5]), 2)

    def test_invalid_n_classes_raises(self, rng):
        with pytest.raises(ValueError):
            Dataset(rng.standard_normal((3, 2)), np.zeros(3, dtype=int), 1)


class TestTextDataset:
    def test_token_sets_align_with_texts(self, tiny_text_split):
        train = tiny_text_split.train
        assert isinstance(train, TextDataset)
        assert len(train.texts) == len(train.token_sets) == len(train)
        assert train.instances is train.texts or train.instances == train.texts

    def test_subset_slices_all_fields(self, tiny_text_split):
        train = tiny_text_split.train
        subset = train.subset(np.array([0, 2, 4]))
        assert subset.texts[1] == train.texts[2]
        assert subset.token_sets[2] == train.token_sets[4]
        np.testing.assert_array_equal(subset.labels, train.labels[[0, 2, 4]])

    def test_mismatched_lengths_raise(self, rng):
        with pytest.raises(ValueError):
            TextDataset(["a"], [frozenset()], rng.standard_normal((2, 3)),
                        np.array([0, 1]), 2)


class TestTabularDataset:
    def test_raw_and_scaled_features_align(self, tiny_tabular_split):
        train = tiny_tabular_split.train
        assert isinstance(train, TabularDataset)
        assert train.raw_features.shape[0] == train.features.shape[0]
        assert len(train.feature_names) == train.raw_features.shape[1]

    def test_subset_slices_raw_features(self, tiny_tabular_split):
        train = tiny_tabular_split.train
        subset = train.subset(np.array([1, 3]))
        np.testing.assert_array_equal(subset.raw_features, train.raw_features[[1, 3]])

    def test_feature_name_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            TabularDataset(
                rng.standard_normal((4, 3)), rng.standard_normal((4, 3)),
                np.zeros(4, dtype=int), 2, feature_names=["a"],
            )


class TestDataSplit:
    def test_sizes_and_classes(self, tiny_text_split):
        n_train, n_valid, n_test = tiny_text_split.sizes()
        assert n_train > n_valid and n_train > n_test
        assert tiny_text_split.n_classes == 2
