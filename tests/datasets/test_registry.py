"""Tests for the benchmark dataset registry."""

import pytest

from repro.datasets import (
    DATASET_PROFILES,
    dataset_names,
    dataset_summary,
    load_dataset,
)


class TestRegistry:
    def test_all_eight_paper_datasets_present(self):
        names = dataset_names()
        assert len(names) == 8
        for expected in ["youtube", "imdb", "yelp", "amazon", "bios-pt", "bios-jp",
                         "occupancy", "census"]:
            assert expected in names

    def test_kind_filter(self):
        assert len(dataset_names("text")) == 6
        assert len(dataset_names("tabular")) == 2
        with pytest.raises(ValueError):
            dataset_names("audio")

    def test_load_unknown_dataset_raises(self):
        with pytest.raises(ValueError):
            load_dataset("mnist")

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            load_dataset("youtube", scale=0.0)

    def test_load_is_case_insensitive(self):
        split = load_dataset("YouTube", scale=0.2, random_state=0)
        assert split.name == "youtube"

    def test_scale_changes_size(self):
        small = load_dataset("youtube", scale=0.2, random_state=0)
        large = load_dataset("youtube", scale=0.4, random_state=0)
        assert sum(large.sizes()) > sum(small.sizes())

    def test_profiles_record_paper_sizes(self):
        profile = DATASET_PROFILES["youtube"]
        assert profile.paper_train == 1566
        assert profile.paper_valid == 195
        assert profile.paper_test == 195
        census = DATASET_PROFILES["census"]
        assert census.paper_train == 25541

    def test_text_split_has_token_sets(self, text_split):
        assert hasattr(text_split.train, "token_sets")
        assert text_split.kind == "text"

    def test_tabular_split_has_raw_features(self, tabular_split):
        assert hasattr(tabular_split.train, "raw_features")
        assert tabular_split.kind == "tabular"

    def test_summary_includes_paper_and_generated_sizes(self, text_split):
        summary = dataset_summary(text_split)
        assert summary["task"] == "Spam classification"
        assert summary["paper_train"] == 1566
        assert summary["n_train"] == len(text_split.train)
        assert summary["n_classes"] == 2

    def test_reproducible_generation(self):
        first = load_dataset("census", scale=0.2, random_state=9)
        second = load_dataset("census", scale=0.2, random_state=9)
        assert first.sizes() == second.sizes()
        assert (first.train.labels == second.train.labels).all()
