"""Integration tests: the complete ActiveDP workflow on text and tabular data.

These tests exercise the headline claims of the paper at miniature scale:
ActiveDP produces labels with both high accuracy and coverage, improves with
more labelling budget, beats the label-model-only ablation, and degrades
gracefully under label noise.
"""

import numpy as np
import pytest

from repro import ActiveDP, ActiveDPConfig
from repro.baselines import ActiveDPPipeline, get_pipeline
from repro.simulation import NoisySimulatedUser, SimulatedUser


class TestActiveDPEndToEndText:
    def test_label_quality_and_downstream_accuracy(self, tiny_text_split):
        config = ActiveDPConfig.for_dataset_kind("text")
        framework = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        framework.run(user, 30)

        quality = framework.label_quality()
        assert quality["coverage"] > 0.5
        assert quality["accuracy"] > 0.8
        assert framework.evaluate_end_model(tiny_text_split.test) > 0.7

    def test_accuracy_improves_with_budget(self, tiny_text_split):
        config = ActiveDPConfig.for_dataset_kind("text")
        framework = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)
        user = SimulatedUser(tiny_text_split.train, random_state=0)

        framework.run(user, 6)
        early = framework.evaluate_end_model(tiny_text_split.test)
        framework.run(user, 24)
        late = framework.evaluate_end_model(tiny_text_split.test)
        # More budget keeps performance high (the tiny corpus saturates early,
        # so we only require no substantial regression and a strong final score).
        assert late >= early - 0.1
        assert late > 0.8

    def test_confusion_beats_label_model_only(self, tiny_text_split):
        """ConFusion aggregation should stay competitive with the LM-only baseline.

        On the miniature fixture both variants saturate, so this only guards
        against ConFusion being badly broken; the paper-shaped comparison runs
        at larger scale in the Table 3 benchmark.
        """
        scores = {}
        for use_confusion in (False, True):
            config = ActiveDPConfig.for_dataset_kind("text", use_confusion=use_confusion)
            pipeline = ActiveDPPipeline(tiny_text_split, random_state=1, config=config)
            pipeline.run(25)
            scores[use_confusion] = pipeline.evaluate_end_model()
        assert scores[True] >= scores[False] - 0.15
        assert scores[True] > 0.75


class TestActiveDPEndToEndTabular:
    def test_tabular_workflow(self, tiny_tabular_split):
        config = ActiveDPConfig.for_dataset_kind("tabular")
        framework = ActiveDP(
            tiny_tabular_split.train, tiny_tabular_split.valid, config, random_state=0
        )
        user = SimulatedUser(tiny_tabular_split.train, random_state=0)
        framework.run(user, 25)
        assert framework.label_quality()["accuracy"] > 0.75
        assert framework.evaluate_end_model(tiny_tabular_split.test) > 0.7


class TestLabelNoiseRobustness:
    def test_noise_degrades_but_does_not_break(self, tiny_text_split):
        """Label quality survives moderate noise; pseudo-labels do get corrupted.

        The monotone degradation of downstream accuracy with the noise rate is
        a population-level claim the Table 5 benchmark checks at larger scale;
        on this miniature fixture we assert the mechanism (noisy pseudo-labels)
        and a sane absolute floor.
        """
        config = ActiveDPConfig.for_dataset_kind("text")
        clean = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=2)
        clean.run(SimulatedUser(tiny_text_split.train, random_state=2), 25)
        noisy = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=2)
        noisy_user = NoisySimulatedUser(tiny_text_split.train, noise_rate=0.3, random_state=2)
        noisy.run(noisy_user, 25)

        assert clean.pseudo.accuracy(tiny_text_split.train) == 1.0
        assert noisy.pseudo.accuracy(tiny_text_split.train) < 1.0
        assert noisy_user.n_noisy_responses > 0
        assert noisy.label_quality()["accuracy"] > 0.5


class TestFrameworkComparison:
    def test_activedp_competitive_with_uncertainty_sampling(self, tiny_text_split):
        """At a small budget, ActiveDP should not lose badly to pure AL (Figure 3 shape)."""
        results = {}
        for name in ("activedp", "uncertainty"):
            pipeline = get_pipeline(name, tiny_text_split, random_state=3)
            pipeline.run(20)
            results[name] = pipeline.evaluate_end_model()
        assert results["activedp"] >= results["uncertainty"] - 0.1
