"""Tests for the warm-start refit contract and the vectorised EM loops."""

import numpy as np
import pytest

from repro.labeling import ABSTAIN
from repro.label_models import (
    GenerativeLabelModel,
    LabelModelWarmStart,
    MajorityVoteLabelModel,
    MeTaLLabelModel,
)

EM_MODELS = [GenerativeLabelModel, MeTaLLabelModel]


def _make_matrix(rng, n=1200, n_lfs=8, coverage=0.5):
    y = rng.integers(0, 2, n)
    matrix = np.full((n, n_lfs), ABSTAIN)
    for j in range(n_lfs):
        fire = rng.random(n) < coverage
        correct = rng.random(n) < 0.6 + 0.3 * rng.random()
        matrix[fire & correct, j] = y[fire & correct]
        matrix[fire & ~correct, j] = 1 - y[fire & ~correct]
    return matrix, y


@pytest.mark.parametrize("cls", EM_MODELS)
class TestWarmStartContract:
    def test_same_matrix_warm_fit_converges_fast_and_matches(self, cls, rng):
        matrix, _ = _make_matrix(rng)
        cold = cls(n_classes=2).fit(matrix)
        warm = cls(n_classes=2).fit(matrix, warm_start=cold.export_warm_start())
        assert warm.warm_started_
        # Refitting a converged model is (nearly) a no-op: one EM iteration.
        assert warm.n_iter_ < cold.n_iter_
        np.testing.assert_allclose(
            warm.predict_proba(matrix), cold.predict_proba(matrix), atol=1e-3
        )

    def test_superset_warm_fit_saves_iterations_within_tol(self, cls, rng):
        matrix, _ = _make_matrix(rng, n_lfs=10)
        base = cls(n_classes=2).fit(matrix[:, :8])
        column_map = list(range(8)) + [-1, -1]
        cold = cls(n_classes=2).fit(matrix)
        warm = cls(n_classes=2).fit(
            matrix, warm_start=base.export_warm_start(column_map=column_map)
        )
        assert warm.warm_started_
        assert warm.n_iter_ <= cold.n_iter_
        np.testing.assert_allclose(
            warm.predict_proba(matrix), cold.predict_proba(matrix), atol=5e-2
        )
        # Both reach (close to) the same accuracies for the shared columns.
        np.testing.assert_allclose(warm.accuracies_, cold.accuracies_, atol=5e-2)

    def test_inapplicable_payload_falls_back_to_cold_bitwise(self, cls, rng):
        matrix, _ = _make_matrix(rng)
        cold = cls(n_classes=2).fit(matrix)
        for payload in (
            None,
            LabelModelWarmStart(model="SomethingElse", n_classes=2, params={"x": np.ones(8)}),
            LabelModelWarmStart(model=cls.__name__, n_classes=3, params={"x": np.ones(8)}),
        ):
            refit = cls(n_classes=2).fit(matrix, warm_start=payload)
            assert not refit.warm_started_
            # Cold fits are deterministic, so the fallback is bit-identical.
            np.testing.assert_array_equal(
                refit.predict_proba(matrix), cold.predict_proba(matrix)
            )

    def test_wrong_length_column_map_is_ignored(self, cls, rng):
        matrix, _ = _make_matrix(rng)
        base = cls(n_classes=2).fit(matrix)
        payload = base.export_warm_start(column_map=[0, 1])  # wrong length
        refit = cls(n_classes=2).fit(matrix, warm_start=payload)
        assert not refit.warm_started_

    def test_out_of_range_column_map_is_ignored(self, cls, rng):
        matrix, _ = _make_matrix(rng)
        base = cls(n_classes=2).fit(matrix[:, :4])
        payload = base.export_warm_start(column_map=[0, 1, 2, 3, 99, -1, -1, -1])
        refit = cls(n_classes=2).fit(matrix, warm_start=payload)
        assert not refit.warm_started_

    def test_all_new_columns_map_is_ignored(self, cls, rng):
        matrix, _ = _make_matrix(rng)
        base = cls(n_classes=2).fit(matrix)
        payload = base.export_warm_start(column_map=[-1] * matrix.shape[1])
        refit = cls(n_classes=2).fit(matrix, warm_start=payload)
        assert not refit.warm_started_

    def test_unfitted_model_exports_none(self, cls):
        assert cls(n_classes=2).export_warm_start() is None

    def test_empty_fit_exports_none(self, cls):
        model = cls(n_classes=2).fit(np.empty((4, 0), dtype=int))
        assert model.export_warm_start() is None


@pytest.mark.parametrize("cls", EM_MODELS)
class TestIntersectionMappedWarmStart:
    """Partial-overlap maps (the LabelPick-churn case): drops + adds at once."""

    def test_intersection_map_matches_cold_within_tol(self, cls, rng):
        matrix, _ = _make_matrix(rng, n_lfs=10)
        base = cls(n_classes=2).fit(matrix[:, :6])
        # New selection: columns [2..9] — drops 0-1, keeps 2-5, adds 6-9.
        new = matrix[:, 2:]
        column_map = [2, 3, 4, 5, -1, -1, -1, -1]
        cold = cls(n_classes=2).fit(new)
        warm = cls(n_classes=2).fit(
            new, warm_start=base.export_warm_start(column_map=column_map)
        )
        assert warm.warm_started_
        assert warm.n_iter_ <= cold.n_iter_
        np.testing.assert_allclose(
            warm.predict_proba(new), cold.predict_proba(new), atol=5e-2
        )

    def test_subset_map_matches_cold_within_tol(self, cls, rng):
        """The new selection is strictly smaller than the previous fit's."""
        matrix, _ = _make_matrix(rng, n_lfs=8)
        base = cls(n_classes=2).fit(matrix)
        new = matrix[:, [1, 3, 6]]
        cold = cls(n_classes=2).fit(new)
        warm = cls(n_classes=2).fit(
            new, warm_start=base.export_warm_start(column_map=[1, 3, 6])
        )
        assert warm.warm_started_
        np.testing.assert_allclose(
            warm.predict_proba(new), cold.predict_proba(new), atol=5e-2
        )

    def test_many_seeds_agreement(self, cls, rng):
        """Hypothesis-style sweep: random overlaps never break agreement."""
        for seed in range(5):
            local = np.random.default_rng(seed)
            matrix, _ = _make_matrix(local, n=600, n_lfs=9)
            previous_cols = sorted(
                local.choice(9, size=local.integers(2, 8), replace=False).tolist()
            )
            new_cols = sorted(
                local.choice(9, size=local.integers(2, 9), replace=False).tolist()
            )
            base = cls(n_classes=2).fit(matrix[:, previous_cols])
            position = {col: i for i, col in enumerate(previous_cols)}
            column_map = [position.get(col, -1) for col in new_cols]
            new = matrix[:, new_cols]
            warm = cls(n_classes=2).fit(
                new, warm_start=base.export_warm_start(column_map=column_map)
            )
            cold = cls(n_classes=2).fit(new)
            if not any(entry >= 0 for entry in column_map):
                assert not warm.warm_started_
                continue
            assert warm.warm_started_
            np.testing.assert_allclose(
                warm.predict_proba(new), cold.predict_proba(new), atol=5e-2
            )


class TestMajorityVoteWarmStart:
    def test_stateless_model_ignores_warm_start(self, rng):
        matrix, _ = _make_matrix(rng, n_lfs=3)
        model = MajorityVoteLabelModel(n_classes=2)
        model.fit(matrix, warm_start=None)
        assert model.export_warm_start() is None


@pytest.mark.parametrize("cls", EM_MODELS)
class TestPriorConsistentFallback:
    def test_uncovered_rows_get_class_balance(self, cls, rng):
        matrix, _ = _make_matrix(rng, n_lfs=4)
        extended = np.vstack([matrix, np.full((3, 4), ABSTAIN)])
        balance = np.array([0.8, 0.2])
        model = cls(n_classes=2, class_balance=balance).fit(extended)
        proba = model.predict_proba(extended)
        np.testing.assert_allclose(proba[-3:], np.tile(balance, (3, 1)), atol=1e-8)

    def test_zero_lf_fit_predicts_class_balance(self, cls):
        balance = np.array([0.7, 0.3])
        matrix = np.empty((5, 0), dtype=int)
        proba = cls(n_classes=2, class_balance=balance).fit(matrix).predict_proba(matrix)
        np.testing.assert_allclose(proba, np.tile(balance, (5, 1)))


class TestVectorizedEMEquivalence:
    """The batched EM updates must match the original per-LF Python loops."""

    @staticmethod
    def _generative_m_step_reference(model, outcomes, responsibilities):
        n_lfs = outcomes.shape[1]
        n_outcomes = model.n_classes + 1
        cpts = np.zeros((n_lfs, model.n_classes, n_outcomes))
        for j in range(n_lfs):
            for outcome in range(n_outcomes):
                mask = outcomes[:, j] == outcome
                cpts[j, :, outcome] = responsibilities[mask].sum(axis=0)
        cpts += model.smoothing
        cpts /= cpts.sum(axis=2, keepdims=True)
        return cpts

    @staticmethod
    def _generative_e_step_reference(model, outcomes, cpts):
        n_instances, n_lfs = outcomes.shape
        log_proba = np.tile(
            np.log(np.clip(model.class_priors_, 1e-12, 1.0)), (n_instances, 1)
        )
        log_cpts = np.log(np.clip(cpts, 1e-12, 1.0))
        for j in range(n_lfs):
            log_proba += log_cpts[j, :, outcomes[:, j]]
        log_proba -= log_proba.max(axis=1, keepdims=True)
        proba = np.exp(log_proba)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba

    def test_generative_steps_match_reference(self, rng):
        matrix, _ = _make_matrix(rng, n=500, n_lfs=5)
        model = GenerativeLabelModel(n_classes=2).fit(matrix)
        outcomes = model._encode(matrix)
        responsibilities = model._posterior(outcomes, model.cpts_)

        reference_cpts = self._generative_m_step_reference(model, outcomes, responsibilities)
        np.testing.assert_allclose(
            model._m_step(outcomes, responsibilities), reference_cpts, atol=1e-12
        )
        np.testing.assert_allclose(
            model._posterior(outcomes, model.cpts_),
            self._generative_e_step_reference(model, outcomes, model.cpts_),
            atol=1e-12,
        )

    @staticmethod
    def _metal_posterior_reference(model, matrix):
        n_instances, n_lfs = matrix.shape
        wrong_share = 1.0 / max(model.n_classes - 1, 1)
        log_proba = np.tile(
            np.log(np.clip(model.class_priors_, 1e-12, 1.0)), (n_instances, 1)
        )
        for j in range(n_lfs):
            acc = float(np.clip(model.accuracies_[j], 1e-6, 1 - 1e-6))
            votes = matrix[:, j]
            fired = votes != ABSTAIN
            for cls in range(model.n_classes):
                propensity = float(np.clip(model.propensities_[j, cls], 1e-6, 1 - 1e-6))
                agree = fired & (votes == cls)
                disagree = fired & (votes != cls)
                log_proba[~fired, cls] += np.log(1.0 - propensity)
                log_proba[agree, cls] += np.log(propensity * acc)
                log_proba[disagree, cls] += np.log(propensity * (1.0 - acc) * wrong_share)
        log_proba -= log_proba.max(axis=1, keepdims=True)
        proba = np.exp(log_proba)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba

    @staticmethod
    def _metal_m_step_reference(model, matrix, responsibilities):
        n_instances, n_lfs = matrix.shape
        low, high = model.accuracy_bounds
        accuracies = np.empty(n_lfs)
        propensities = np.empty((n_lfs, model.n_classes))
        class_mass = responsibilities.sum(axis=0) + 1e-12
        for j in range(n_lfs):
            votes = matrix[:, j]
            fired = votes != ABSTAIN
            fired_mass = responsibilities[fired].sum(axis=0)
            propensities[j] = np.clip(
                (fired_mass + model.smoothing * 0.1) / (class_mass + model.smoothing * 0.2),
                1e-4,
                1.0 - 1e-4,
            )
            if not np.any(fired):
                accuracies[j] = model.prior_accuracy
                continue
            agree_weight = responsibilities[np.arange(n_instances), np.clip(votes, 0, None)]
            expected_correct = float(np.sum(agree_weight[fired]))
            total = float(np.sum(responsibilities[fired]))
            accuracy = (expected_correct + model.smoothing * model.prior_accuracy) / (
                total + model.smoothing
            )
            accuracies[j] = float(np.clip(accuracy, low, high))
        return accuracies, propensities

    def test_metal_steps_match_reference(self, rng):
        matrix, _ = _make_matrix(rng, n=500, n_lfs=5)
        # Include a never-firing LF to cover the prior-accuracy branch.
        matrix = np.column_stack([matrix, np.full(matrix.shape[0], ABSTAIN)])
        model = MeTaLLabelModel(n_classes=2).fit(matrix)
        responsibilities = model._posterior(matrix)

        np.testing.assert_allclose(
            model._posterior(matrix),
            self._metal_posterior_reference(model, matrix),
            atol=1e-12,
        )
        ref_acc, ref_prop = self._metal_m_step_reference(model, matrix, responsibilities)
        model._m_step(matrix, responsibilities)
        np.testing.assert_allclose(model.accuracies_, ref_acc, atol=1e-12)
        np.testing.assert_allclose(model.propensities_, ref_prop, atol=1e-12)
