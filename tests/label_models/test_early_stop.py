"""Tests for adaptive early stopping of the EM label models.

Three guarantees are pinned here:

* ``early_stop=False`` (the knob's off position) reproduces the historical
  fixed-budget fit *bit for bit* — an inline reimplementation of the legacy
  EM loop is the reference;
* ``early_stop=True`` certifies convergence (``converged_``), agrees with
  the fixed-budget fit on predictions, and stops exactly where the
  relative-loss criterion says it should — the loss change at the stopping
  point is below ``early_stop_rtol`` and the change one step earlier was
  not;
* the per-fit diagnostics (``n_iter_``, ``converged_``, ``final_loss_``)
  behave sensibly on both paths, including the empty-matrix edge case.
"""

import numpy as np
import pytest

from repro.label_models import GenerativeLabelModel, MeTaLLabelModel
from repro.labeling.lf import ABSTAIN
from repro.numerics import relative_change
from repro.utils.rng import ensure_rng

N_CLASSES = 2

MODELS = {"generative": GenerativeLabelModel, "metal": MeTaLLabelModel}


@pytest.fixture()
def matrix():
    rng = np.random.default_rng(17)
    labels = rng.integers(0, N_CLASSES, size=120)
    fired = rng.random((120, 8)) < 0.45
    correct = rng.random((120, 8)) < 0.78
    votes = np.where(correct, labels[:, None], 1 - labels[:, None])
    return np.where(fired, votes, ABSTAIN)


def _legacy_generative_cpts(matrix, max_iter=100, tol=1e-5, smoothing=1.0):
    """The pre-seam cold EM loop, op for op (M-step, E-step, abs-change stop)."""
    model = GenerativeLabelModel(
        n_classes=N_CLASSES, max_iter=max_iter, tol=tol, smoothing=smoothing
    )
    model.class_priors_ = np.full(N_CLASSES, 1.0 / N_CLASSES)
    outcomes = np.where(matrix == ABSTAIN, 0, matrix + 1)
    responsibilities = model._initial_responsibilities(matrix, ensure_rng(0))
    previous = None
    cpts = None
    for _ in range(max_iter):
        cpts = model._m_step(outcomes, responsibilities)
        responsibilities = model._posterior(outcomes, cpts)
        if previous is not None and float(
            np.mean(np.abs(responsibilities - previous))
        ) < tol:
            break
        previous = responsibilities
    return cpts


class TestKnobOffPreservesLegacySemantics:
    def test_generative_fit_is_bit_identical_to_legacy_loop(self, matrix):
        fitted = GenerativeLabelModel(n_classes=N_CLASSES).fit(matrix)
        np.testing.assert_array_equal(fitted.cpts_, _legacy_generative_cpts(matrix))

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_default_constructor_keeps_knob_off(self, name):
        model = MODELS[name]()
        assert model.early_stop is False

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_fixed_budget_with_zero_tol_exhausts_max_iter(self, matrix, name):
        model = MODELS[name](n_classes=N_CLASSES, tol=0.0, max_iter=7).fit(matrix)
        assert model.n_iter_ == 7
        assert model.converged_ is False


class TestEarlyStop:
    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_certifies_convergence_and_matches_fixed_budget(self, matrix, name):
        fixed = MODELS[name](n_classes=N_CLASSES, tol=0.0).fit(matrix)
        early = MODELS[name](
            n_classes=N_CLASSES, early_stop=True, early_stop_rtol=1e-8
        ).fit(matrix)
        assert early.converged_ is True
        assert early.n_iter_ < fixed.n_iter_
        np.testing.assert_allclose(
            early.predict_proba(matrix), fixed.predict_proba(matrix), atol=1e-3
        )
        default = MODELS[name](n_classes=N_CLASSES, early_stop=True).fit(matrix)
        agree = np.mean(
            np.argmax(default.predict_proba(matrix), axis=1)
            == np.argmax(fixed.predict_proba(matrix), axis=1)
        )
        assert agree == 1.0

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_stops_exactly_where_the_criterion_fires(self, matrix, name):
        """Replay the deterministic trajectory: the loss change at the
        stopping point is below rtol, and one step earlier it was not."""
        rtol = 1e-5
        early = MODELS[name](
            n_classes=N_CLASSES, early_stop=True, early_stop_rtol=rtol
        ).fit(matrix)
        n = early.n_iter_
        assert n >= 3  # the trajectory replay below needs two earlier points

        def loss_after(iterations):
            # tol=0.0 can never trigger the legacy criterion, so the fit
            # retraces the identical trajectory and stops at max_iter.
            return (
                MODELS[name](n_classes=N_CLASSES, tol=0.0, max_iter=iterations)
                .fit(matrix)
                .final_loss_
            )

        assert relative_change(early.final_loss_, loss_after(n - 1)) <= rtol
        assert relative_change(loss_after(n - 1), loss_after(n - 2)) > rtol

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_warm_refit_converges_early(self, matrix, name):
        seed_model = MODELS[name](n_classes=N_CLASSES).fit(matrix[:, :-1])
        warm = seed_model.export_warm_start(
            list(range(matrix.shape[1] - 1)) + [-1]
        )
        refit = MODELS[name](n_classes=N_CLASSES, early_stop=True).fit(
            matrix, warm_start=warm
        )
        assert refit.warm_started_
        assert refit.converged_
        assert refit.n_iter_ < refit.max_iter

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_tighter_rtol_runs_longer(self, matrix, name):
        loose = MODELS[name](
            n_classes=N_CLASSES, early_stop=True, early_stop_rtol=1e-2
        ).fit(matrix)
        tight = MODELS[name](
            n_classes=N_CLASSES, early_stop=True, early_stop_rtol=1e-9
        ).fit(matrix)
        assert tight.n_iter_ >= loose.n_iter_


class TestDiagnostics:
    @pytest.mark.parametrize("name", sorted(MODELS))
    @pytest.mark.parametrize("early_stop", [False, True])
    def test_final_loss_is_finite_after_fit(self, matrix, name, early_stop):
        model = MODELS[name](n_classes=N_CLASSES, early_stop=early_stop).fit(matrix)
        assert model.final_loss_ is not None
        assert np.isfinite(model.final_loss_)
        assert model.n_iter_ >= 1

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_empty_matrix_reports_trivial_convergence(self, name):
        model = MODELS[name](n_classes=N_CLASSES).fit(
            np.empty((0, 0), dtype=int)
        )
        assert model.n_iter_ == 0
        assert model.converged_ is True
        assert model.final_loss_ is None
