"""Tests for the three label models (majority vote, generative EM, MeTaL-style)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.labeling import ABSTAIN
from repro.label_models import (
    GenerativeLabelModel,
    MajorityVoteLabelModel,
    MeTaLLabelModel,
    get_label_model,
)

ALL_MODELS = [
    ("majority_vote", MajorityVoteLabelModel),
    ("generative", GenerativeLabelModel),
    ("metal", MeTaLLabelModel),
]


class TestRegistry:
    @pytest.mark.parametrize("name, cls", ALL_MODELS)
    def test_get_label_model_returns_correct_class(self, name, cls):
        assert isinstance(get_label_model(name, n_classes=2), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_label_model("nonexistent")


@pytest.mark.parametrize("name, cls", ALL_MODELS)
class TestCommonBehaviour:
    def test_proba_rows_sum_to_one(self, name, cls, simple_label_matrix):
        matrix, _ = simple_label_matrix
        proba = cls(n_classes=2).fit(matrix).predict_proba(matrix)
        assert proba.shape == (len(matrix), 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-8)
        assert proba.min() >= 0.0

    def test_beats_random_on_covered_instances(self, name, cls, simple_label_matrix):
        matrix, y = simple_label_matrix
        model = cls(n_classes=2).fit(matrix)
        predictions = model.predict(matrix)
        covered = np.any(matrix != ABSTAIN, axis=1)
        accuracy = np.mean(predictions[covered] == y[covered])
        assert accuracy > 0.7

    def test_uncovered_rows_get_uniform_probability(self, name, cls, simple_label_matrix):
        matrix, _ = simple_label_matrix
        extended = np.vstack([matrix, np.full((3, matrix.shape[1]), ABSTAIN)])
        proba = cls(n_classes=2).fit(extended).predict_proba(extended)
        np.testing.assert_allclose(proba[-3:], 0.5, atol=1e-8)

    def test_predict_with_abstain_on_uncovered(self, name, cls, simple_label_matrix):
        matrix, _ = simple_label_matrix
        extended = np.vstack([matrix, np.full((2, matrix.shape[1]), ABSTAIN)])
        model = cls(n_classes=2).fit(extended)
        labels = model.predict(extended, abstain_uncovered=True)
        assert np.all(labels[-2:] == ABSTAIN)

    def test_invalid_labels_raise(self, name, cls):
        bad = np.array([[0, 5], [1, 0]])
        with pytest.raises(ValueError):
            cls(n_classes=2).fit(bad)

    def test_invalid_n_classes_raises(self, name, cls):
        with pytest.raises(ValueError):
            cls(n_classes=1)


class TestMajorityVote:
    def test_simple_majority(self):
        matrix = np.array([[0, 0, 1], [1, 1, ABSTAIN]])
        labels = MajorityVoteLabelModel(n_classes=2).fit(matrix).predict(matrix)
        np.testing.assert_array_equal(labels, [0, 1])

    def test_more_votes_increase_confidence(self):
        matrix = np.array([[1, ABSTAIN, ABSTAIN], [1, 1, 1]])
        proba = MajorityVoteLabelModel(n_classes=2).fit(matrix).predict_proba(matrix)
        assert proba[1, 1] > proba[0, 1]


class TestParametricModels:
    @pytest.mark.parametrize("cls", [GenerativeLabelModel, MeTaLLabelModel])
    def test_recovers_lf_accuracy_ordering(self, cls, rng):
        # Three LFs are needed for the accuracies to be identifiable
        # (classic Dawid-Skene requirement); the clearly-worse third LF must
        # receive a lower estimated accuracy than the two good ones.
        n = 2000
        y = rng.integers(0, 2, n)
        true_accs = [0.92, 0.9, 0.6]
        matrix = np.full((n, 3), ABSTAIN)
        for j, acc in enumerate(true_accs):
            fire = rng.random(n) < 0.6
            correct = rng.random(n) < acc
            matrix[fire & correct, j] = y[fire & correct]
            matrix[fire & ~correct, j] = 1 - y[fire & ~correct]
        model = cls(n_classes=2).fit(matrix)
        assert model.accuracies_[2] < model.accuracies_[0]
        assert model.accuracies_[2] < model.accuracies_[1]

    @pytest.mark.parametrize("cls", [GenerativeLabelModel, MeTaLLabelModel])
    def test_handles_unipolar_keyword_style_lfs(self, cls, rng):
        """One-sided LFs must not trigger the 'one class explains all' collapse."""
        n = 1500
        y = rng.integers(0, 2, n)
        matrix = np.full((n, 6), ABSTAIN)
        for j in range(6):
            lf_class = j % 2
            fire_proba = np.where(y == lf_class, 0.5, 0.08)
            fire = rng.random(n) < fire_proba
            matrix[fire, j] = lf_class
        model = cls(n_classes=2).fit(matrix)
        predictions = model.predict(matrix)
        covered = np.any(matrix != ABSTAIN, axis=1)
        accuracy = np.mean(predictions[covered] == y[covered])
        assert accuracy > 0.8
        # Both classes must actually be predicted.
        assert len(np.unique(predictions[covered])) == 2

    @pytest.mark.parametrize("cls", [GenerativeLabelModel, MeTaLLabelModel])
    def test_respects_provided_class_balance(self, cls):
        matrix = np.full((10, 1), ABSTAIN)
        model = cls(n_classes=2, class_balance=np.array([0.8, 0.2])).fit(matrix)
        np.testing.assert_allclose(model.class_priors_, [0.8, 0.2])

    def test_zero_lf_matrix_predicts_uniform(self):
        matrix = np.empty((4, 0), dtype=int)
        for cls in (GenerativeLabelModel, MeTaLLabelModel):
            proba = cls(n_classes=2).fit(matrix).predict_proba(matrix)
            np.testing.assert_allclose(proba, 0.5)

    def test_column_count_mismatch_raises(self, simple_label_matrix):
        matrix, _ = simple_label_matrix
        model = MeTaLLabelModel(n_classes=2).fit(matrix)
        with pytest.raises(ValueError):
            model.predict_proba(matrix[:, :3])

    def test_metal_accuracies_within_bounds(self, simple_label_matrix):
        matrix, _ = simple_label_matrix
        model = MeTaLLabelModel(n_classes=2).fit(matrix)
        low, high = model.accuracy_bounds
        assert np.all(model.accuracies_ >= low - 1e-9)
        assert np.all(model.accuracies_ <= high + 1e-9)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=20, max_value=60),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_label_model_probabilities_valid_property(n_lfs, n_instances, seed):
    """For random matrices, all models produce valid probability rows."""
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-1, 2, size=(n_instances, n_lfs))
    for name, _ in ALL_MODELS:
        model = get_label_model(name, n_classes=2)
        proba = model.fit(matrix).predict_proba(matrix)
        assert proba.shape == (n_instances, 2)
        assert np.all(proba >= -1e-9)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-6)
