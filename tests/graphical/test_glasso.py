"""Tests for the graphical lasso estimator."""

import numpy as np
import pytest

from repro.graphical import empirical_covariance, graphical_lasso


def _chain_precision(p=5, off=0.4):
    """Tridiagonal (chain-graph) precision matrix."""
    precision = np.eye(p)
    for i in range(p - 1):
        precision[i, i + 1] = off
        precision[i + 1, i] = off
    return precision


class TestGraphicalLasso:
    def test_precision_is_symmetric(self, rng):
        X = rng.standard_normal((200, 4))
        result = graphical_lasso(X, alpha=0.05)
        np.testing.assert_allclose(result.precision, result.precision.T, atol=1e-8)

    def test_recovers_chain_structure(self, rng):
        true_precision = _chain_precision()
        covariance = np.linalg.inv(true_precision)
        X = rng.multivariate_normal(np.zeros(5), covariance, size=3000)
        result = graphical_lasso(X, alpha=0.05, shrinkage=0.0)
        estimated = result.precision
        # Direct neighbours must carry clearly larger weight than the
        # (conditionally independent) distant pair (0, 4).
        assert abs(estimated[0, 1]) > abs(estimated[0, 4]) + 0.05
        assert abs(estimated[2, 3]) > abs(estimated[0, 3]) + 0.05

    def test_large_alpha_gives_diagonal_precision(self, rng):
        X = rng.standard_normal((300, 4))
        result = graphical_lasso(X, alpha=5.0)
        off_diag = result.precision - np.diag(np.diag(result.precision))
        np.testing.assert_allclose(off_diag, 0.0, atol=1e-4)

    def test_accepts_precomputed_covariance(self, rng):
        X = rng.standard_normal((100, 3))
        cov = empirical_covariance(X)
        result = graphical_lasso(cov, alpha=0.1, from_covariance=True)
        assert result.precision.shape == (3, 3)

    def test_single_variable(self):
        result = graphical_lasso(np.array([[2.0]]), alpha=0.1, from_covariance=True)
        assert result.precision[0, 0] == pytest.approx(0.5)

    def test_negative_alpha_raises(self, rng):
        with pytest.raises(ValueError):
            graphical_lasso(rng.standard_normal((10, 3)), alpha=-0.1)

    def test_non_square_covariance_raises(self, rng):
        with pytest.raises(ValueError):
            graphical_lasso(rng.standard_normal((3, 4)), alpha=0.1, from_covariance=True)

    def test_precision_positive_diagonal(self, rng):
        X = rng.standard_normal((150, 5))
        result = graphical_lasso(X, alpha=0.05)
        assert np.all(np.diag(result.precision) > 0)


class TestEmpiricalCovariance:
    def test_matches_numpy_cov(self, rng):
        X = rng.standard_normal((500, 3))
        ours = empirical_covariance(X)
        reference = np.cov(X, rowvar=False, bias=True)
        np.testing.assert_allclose(ours, reference, atol=1e-10)

    def test_shrinkage_moves_toward_identity_scale(self, rng):
        X = rng.standard_normal((100, 3)) @ np.diag([1.0, 5.0, 10.0])
        raw = empirical_covariance(X, shrinkage=0.0)
        shrunk = empirical_covariance(X, shrinkage=1.0)
        # Full shrinkage yields an isotropic matrix.
        np.testing.assert_allclose(shrunk, np.eye(3) * np.trace(raw) / 3, atol=1e-8)

    def test_invalid_shrinkage_raises(self, rng):
        with pytest.raises(ValueError):
            empirical_covariance(rng.standard_normal((10, 2)), shrinkage=2.0)
